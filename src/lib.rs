//! Facade crate for the Banshee reproduction workspace.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! downstream users can depend on a single crate:
//!
//! ```rust
//! use banshee_repro::prelude::*;
//! ```
//!
//! See the `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory.

pub use banshee as core;
pub use banshee_bench as bench;
pub use banshee_common as common;
pub use banshee_dcache as dcache;
pub use banshee_dram as dram;
pub use banshee_exec as exec;
pub use banshee_memhier as memhier;
pub use banshee_sim as sim;
pub use banshee_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use banshee::{BansheeConfig, BansheeController};
    pub use banshee_common::{Addr, DramKind, MemSize, PageNum, TrafficClass};
    pub use banshee_dcache::{DramCacheController, DramCacheDesign};
    pub use banshee_exec::{JobPool, ResultStore};
    pub use banshee_sim::{SimConfig, SimResult, System};
    pub use banshee_workloads::{Workload, WorkloadKind};
}
