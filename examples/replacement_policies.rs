//! Where Banshee's benefit comes from: a policy-level walkthrough of the
//! bandwidth-aware, sampled frequency-based replacement (Figure 7 in
//! miniature), driving the controllers directly rather than through the
//! full-system simulator.
//!
//! The example feeds the same synthetic access stream — a hot working set
//! plus a cold streaming sweep — to four controllers (Banshee, its LRU and
//! no-sampling ablations, and Alloy Cache) and prints how many bytes each
//! moved per DRAM and per traffic class.
//!
//! ```text
//! cargo run --release --example replacement_policies
//! ```

use banshee_repro::common::{Addr, DramKind, MemSize, TrafficClass, XorShiftRng, ZipfSampler};
use banshee_repro::core::{BansheeConfig, BansheeController, BansheeVariant};
use banshee_repro::dcache::{
    alloy::AlloyCache, DCacheConfig, DramCacheController, MemRequest, PlanSink,
};

/// Generate the access stream: 70% of accesses go to a Zipf-distributed hot
/// set of pages, 30% stream through a large cold region.
fn stream(n: usize) -> Vec<(Addr, bool)> {
    let mut rng = XorShiftRng::new(99);
    let hot = ZipfSampler::new(2_000, 1.0);
    let mut out = Vec::with_capacity(n);
    let mut cold_cursor: u64 = 0;
    for i in 0..n {
        let write = i % 5 == 0;
        if rng.chance(0.7) {
            let page = hot.sample(&mut rng) as u64;
            let line = rng.next_below(64);
            out.push((Addr::new(page * 4096 + line * 64), write));
        } else {
            cold_cursor += 64;
            out.push((Addr::new((1 << 32) + cold_cursor), write));
        }
    }
    out
}

fn drive(name: &str, ctrl: &mut dyn DramCacheController, accesses: &[(Addr, bool)]) {
    let mut in_bytes = [0u64; 6];
    let mut off_total = 0u64;
    // One reused plan sink, as the full-system simulator drives controllers.
    let mut plan = PlanSink::new();
    for (i, &(addr, write)) in accesses.iter().enumerate() {
        let hint = ctrl.current_mapping(addr.page());
        let mut req = MemRequest::demand(addr, 0).with_hint(hint);
        if write {
            req = req.as_store();
        }
        plan.reset();
        ctrl.access(&req, i as u64, &mut plan);
        for op in plan.critical.iter().chain(plan.background.iter()) {
            match op.dram {
                DramKind::InPackage => in_bytes[op.class.index()] += op.bytes,
                DramKind::OffPackage => off_total += op.bytes,
            }
        }
    }
    let per_access = |v: u64| v as f64 / accesses.len() as f64;
    println!(
        "{:<24} miss rate {:>5.1}%  | in-pkg B/access: hit {:>5.1} tag {:>4.1} counter {:>4.1} replace {:>6.1} | off-pkg B/access {:>6.1}",
        name,
        ctrl.miss_rate() * 100.0,
        per_access(in_bytes[TrafficClass::HitData.index()]),
        per_access(in_bytes[TrafficClass::Tag.index()]),
        per_access(in_bytes[TrafficClass::Counter.index()]),
        per_access(in_bytes[TrafficClass::Replacement.index()]),
        per_access(off_total),
    );
}

#[path = "common/mod.rs"]
mod common;

fn main() {
    // Stream length is overridable so CI can smoke-run the example quickly.
    let n = common::smoke_budget().unwrap_or(400_000) as usize;
    let accesses = stream(n);
    let dcfg = DCacheConfig::scaled(MemSize::mib(4));

    println!("access stream: 70% Zipf hot set (2000 pages), 30% cold streaming\n");

    let mut banshee = BansheeController::with_variant(
        BansheeConfig::from_dcache(&dcfg),
        BansheeVariant::Standard,
    );
    drive("Banshee", &mut banshee, &accesses);

    let mut no_sample = BansheeController::with_variant(
        BansheeConfig::from_dcache(&dcfg),
        BansheeVariant::FbrNoSample,
    );
    drive("Banshee FBR no sample", &mut no_sample, &accesses);

    let mut lru =
        BansheeController::with_variant(BansheeConfig::from_dcache(&dcfg), BansheeVariant::Lru);
    drive("Banshee LRU", &mut lru, &accesses);

    let mut alloy = AlloyCache::new(&dcfg, 0.1);
    drive("Alloy 0.1", &mut alloy, &accesses);

    println!();
    println!("Things to notice (the Figure 7 story):");
    println!(" * Banshee LRU replaces on every miss: its replacement bytes dwarf everyone else's.");
    println!(" * FBR without sampling has Banshee's low replacement traffic but pays counter");
    println!("   (metadata) bytes on every access.");
    println!(" * Full Banshee keeps both small; Alloy pays a 32B tag on every single access.");
}
