//! Large (2 MiB) page support (Section 4.3 / 5.4.1).
//!
//! Traditional page-granularity DRAM caches cannot afford large pages: a
//! policy that replaces on every miss would move 2 MiB per miss. Banshee's
//! bandwidth-aware replacement makes them practical — this example runs the
//! same graph workload with 4 KiB and 2 MiB caching granularity and compares
//! IPC, miss rate and replacement traffic.
//!
//! ```text
//! cargo run --release --example large_pages
//! ```

use banshee_repro::common::{DramKind, TrafficClass};
use banshee_repro::dcache::DramCacheDesign;
use banshee_repro::sim::{run_one, SimConfig};
use banshee_repro::workloads::{GraphKernel, Workload, WorkloadKind};

#[path = "common/mod.rs"]
mod common;

fn main() {
    let budget = common::smoke_budget();
    // The full-size machine, shrunk for CI smoke runs.
    let capacity = common::example_capacity(budget);
    let workload = Workload::new(
        WorkloadKind::Graph(GraphKernel::PageRank),
        4 * capacity.as_bytes(),
        11,
    );

    println!("workload: pagerank, DRAM cache {capacity}, footprint 4x\n");
    println!(
        "{:<18} {:>8} {:>11} {:>22}",
        "granularity", "IPC", "miss rate", "replacement B/instr"
    );

    let mut base_ipc = 0.0;
    for (label, large) in [("4 KiB pages", false), ("2 MiB large pages", true)] {
        let mut config = SimConfig::scaled(DramCacheDesign::Banshee, capacity);
        config.total_instructions = budget.unwrap_or(2_000_000);
        config.warmup_instructions = config.total_instructions;
        config.large_pages = large;
        if large {
            // The paper models perfect TLBs for this study so that only the
            // DRAM-subsystem effect shows.
            config.tlb_miss_latency = 0;
        }
        let r = run_one(config, &workload);
        let repl = r.bytes_per_instr(DramKind::InPackage, TrafficClass::Replacement)
            + r.bytes_per_instr(DramKind::OffPackage, TrafficClass::Replacement);
        println!(
            "{:<18} {:>8.3} {:>10.1}% {:>22.2}",
            label,
            r.ipc(),
            r.dram_cache_miss_rate() * 100.0,
            repl
        );
        if !large {
            base_ipc = r.ipc();
        } else if base_ipc > 0.0 {
            println!(
                "\nlarge-page speedup over 4 KiB pages: {:.2}x (paper reports ~1.04x on average)",
                r.ipc() / base_ipc
            );
        }
    }

    println!("\nThe sampling coefficient drops to 0.001 in large-page mode so that the");
    println!("5-bit frequency counters do not saturate on 32768-line pages, and the");
    println!("replacement threshold scales with the page size (Section 4.3).");
}
