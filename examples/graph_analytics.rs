//! Graph analytics on a DRAM cache: the workload class the paper targets
//! (Section 5.1.2 — pagerank, triangle counting, graph500, SGD, LSH).
//!
//! This example runs every graph kernel over a shared synthetic power-law
//! graph under three designs (NoCache, Alloy 0.1, Banshee) and reports the
//! speedups and DRAM traffic, i.e. a miniature version of Figures 4–6
//! restricted to the graph suite.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use banshee_repro::common::DramKind;
use banshee_repro::dcache::DramCacheDesign;
use banshee_repro::sim::{run_one, SimConfig};
use banshee_repro::workloads::{GraphKernel, Workload, WorkloadKind};

#[path = "common/mod.rs"]
mod common;

fn main() {
    let budget = common::smoke_budget();
    // The full-size machine, shrunk for CI smoke runs.
    let capacity = common::example_capacity(budget);
    let designs = [
        DramCacheDesign::NoCache,
        DramCacheDesign::Alloy {
            fill_probability: 0.1,
        },
        DramCacheDesign::Banshee,
    ];

    println!(
        "{:<12} {:<12} {:>9} {:>10} {:>14} {:>15}",
        "kernel", "design", "speedup", "MPKI", "in-pkg B/instr", "off-pkg B/instr"
    );

    for kernel in GraphKernel::ALL {
        let workload = Workload::new(WorkloadKind::Graph(kernel), 4 * capacity.as_bytes(), 7);
        let mut baseline = None;
        for design in designs {
            let mut config = SimConfig::scaled(design, capacity);
            config.total_instructions = budget.unwrap_or(2_000_000);
            config.warmup_instructions = config.total_instructions;
            let r = run_one(config, &workload);
            let speedup = match &baseline {
                None => {
                    baseline = Some(r.clone());
                    1.0
                }
                Some(b) => r.speedup_over(b),
            };
            println!(
                "{:<12} {:<12} {:>8.2}x {:>10.2} {:>14.2} {:>15.2}",
                kernel.name(),
                r.design,
                speedup,
                r.mpki(),
                r.total_bytes_per_instr(DramKind::InPackage),
                r.total_bytes_per_instr(DramKind::OffPackage),
            );
        }
        println!();
    }
    println!("Banshee's win on graph codes comes from cutting tag and replacement");
    println!("traffic on the in-package DRAM while keeping off-package traffic low");
    println!("(compare the two traffic columns across designs).");
}
