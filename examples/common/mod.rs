//! Helpers shared by the examples (included via `#[path]`, not an example
//! itself: Cargo only treats `examples/*.rs` files and directories with a
//! `main.rs` as example targets).

use banshee_repro::common::MemSize;

/// CI smoke override: instruction budget (or stream length) per run, taken
/// from `BANSHEE_EXAMPLE_INSTRUCTIONS` when set. See `tests/examples_smoke.rs`.
#[allow(dead_code)]
pub fn smoke_budget() -> Option<u64> {
    std::env::var("BANSHEE_EXAMPLE_INSTRUCTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// DRAM-cache capacity for an example machine: the full-size machine
/// normally, shrunk for smoke runs because workload construction cost
/// scales with the footprint (4x capacity).
#[allow(dead_code)]
pub fn example_capacity(budget: Option<u64>) -> MemSize {
    if budget.is_some() {
        MemSize::mib(2)
    } else {
        MemSize::mib(32)
    }
}
