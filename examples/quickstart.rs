//! Quickstart: simulate Banshee and the NoCache baseline on one workload and
//! print the headline numbers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use banshee_repro::prelude::*;
use banshee_repro::workloads::SpecProgram;

#[path = "common/mod.rs"]
mod common;

fn main() {
    let budget = common::smoke_budget();
    // A scaled-down machine: 32 MiB of in-package DRAM used as a cache, the
    // paper's 4-way page-granularity geometry, 16 cores (shrunk for CI
    // smoke runs).
    let capacity = common::example_capacity(budget);

    // The workload: every core runs a copy of an mcf-like pointer-chasing
    // program whose total footprint is 4x the DRAM cache.
    let workload = banshee_repro::workloads::Workload::new(
        WorkloadKind::Spec(SpecProgram::Mcf),
        4 * capacity.as_bytes(),
        42,
    );

    println!(
        "workload: {} (footprint 4x the DRAM cache)",
        workload.name()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12}",
        "design", "IPC", "miss rate", "in-pkg B/instr", "off-pkg B/instr"
    );

    let mut baseline_ipc = None;
    for design in [
        banshee_repro::dcache::DramCacheDesign::NoCache,
        banshee_repro::dcache::DramCacheDesign::Alloy {
            fill_probability: 0.1,
        },
        banshee_repro::dcache::DramCacheDesign::Banshee,
        banshee_repro::dcache::DramCacheDesign::CacheOnly,
    ] {
        let mut config = SimConfig::scaled(design, capacity);
        config.total_instructions = budget.unwrap_or(3_000_000);
        config.warmup_instructions = config.total_instructions * 2 / 3;
        let result = banshee_repro::sim::run_one(config, &workload);
        let ipc = result.ipc();
        if design == banshee_repro::dcache::DramCacheDesign::NoCache {
            baseline_ipc = Some(ipc);
        }
        println!(
            "{:<12} {:>8.3} {:>9.1}% {:>14.2} {:>15.2}",
            result.design,
            ipc,
            result.dram_cache_miss_rate() * 100.0,
            result.total_bytes_per_instr(DramKind::InPackage),
            result.total_bytes_per_instr(DramKind::OffPackage),
        );
        if let Some(base) = baseline_ipc {
            if base > 0.0 && result.design != "NoCache" {
                println!("{:<12} speedup over NoCache: {:.2}x", "", ipc / base);
            }
        }
    }

    println!();
    println!("Next steps:");
    println!("  cargo run --release -p banshee_bench --bin experiments -- all --quick");
    println!("  (regenerates every table and figure of the paper; see EXPERIMENTS.md)");
}
