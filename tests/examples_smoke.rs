//! Smoke tests running every example at a CI-sized scale, so the examples
//! can't silently rot as the library evolves.
//!
//! Each example honours `BANSHEE_EXAMPLE_INSTRUCTIONS`, which shrinks its
//! instruction budget (or access-stream length) from the millions used for
//! real output down to a few tens of thousands, keeping each run to seconds
//! even in debug builds.

use std::process::Command;

/// Run one example via the same `cargo` that is running this test and assert
/// it exits successfully.
fn run_example(name: &str) {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--offline", "--example", name])
        .current_dir(manifest_dir)
        .env("BANSHEE_EXAMPLE_INSTRUCTIONS", "20000")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` exited 0 but printed nothing"
    );
}

#[test]
fn example_quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn example_replacement_policies_runs() {
    run_example("replacement_policies");
}

#[test]
fn example_graph_analytics_runs() {
    run_example("graph_analytics");
}

#[test]
fn example_large_pages_runs() {
    run_example("large_pages");
}
