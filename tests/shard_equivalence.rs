//! Property-based shard-equivalence suite: for *any* combination of
//! design, workload, trace seed and shard count, the sharded simulator
//! produces a `SimResult` byte-identical to the sequential path.
//!
//! This is the acceptance bar of the sharded execution engine (see the
//! shard-architecture section of `DESIGN.md`): `--shards N` is a pure
//! wall-clock knob. The full-system simulator is orders of magnitude
//! slower than the controller-level property tests in `properties.rs`, so
//! the runs here are tiny (tens of thousands of instructions) and the case
//! count is small — coverage comes from the dimensions swept, not the
//! volume. Deeper per-design checks live in `crates/sim`'s unit tests.

use banshee_repro::dcache::DramCacheDesign;
use banshee_repro::sim::{run_one, SimConfig, System};
use banshee_repro::workloads::{GraphKernel, SpecMix, SpecProgram, Workload, WorkloadKind};
use proptest::prelude::*;

/// Designs spanning every plan shape the coordinator can issue: pure
/// off-package (NoCache), pure in-package (CacheOnly), tag probes on the
/// critical path (Alloy/Unison), idealized remapping (TDC), epoch-stalled
/// migration (HMA) and Banshee's background fills + PTE side effects.
const DESIGNS: [DramCacheDesign; 8] = [
    DramCacheDesign::NoCache,
    DramCacheDesign::CacheOnly,
    DramCacheDesign::Alloy {
        fill_probability: 0.1,
    },
    DramCacheDesign::Unison,
    DramCacheDesign::Tdc,
    DramCacheDesign::Hma,
    DramCacheDesign::Banshee,
    DramCacheDesign::BansheeLru,
];

/// Workloads from each trace-generator family (SPEC loop, graph kernel,
/// heterogeneous mix) — the families differ in how cores share pages,
/// which shapes the cross-channel interleaving the shards must preserve.
const WORKLOADS: [WorkloadKind; 5] = [
    WorkloadKind::Spec(SpecProgram::Mcf),
    WorkloadKind::Spec(SpecProgram::Lbm),
    WorkloadKind::Graph(GraphKernel::PageRank),
    WorkloadKind::Graph(GraphKernel::Graph500),
    WorkloadKind::Mix(SpecMix::Mix1),
];

/// A deliberately tiny configuration: enough instructions to cross the
/// warm-up boundary and (for HMA) an epoch boundary, small enough that a
/// proptest case costs well under a second.
fn tiny_config(design: DramCacheDesign, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::test_default(design);
    cfg.warmup_instructions = 20_000;
    cfg.total_instructions = 60_000;
    cfg.epoch_instructions = 25_000;
    cfg.seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Sweep (design, workload, seed, shards in {1, 2, 4}): every shard
    /// count reproduces the sequential (`shards = 1`) result byte for
    /// byte, serialized JSON and all.
    #[test]
    fn any_shard_count_is_byte_identical_to_sequential(
        design_idx in 0usize..DESIGNS.len(),
        workload_idx in 0usize..WORKLOADS.len(),
        seed in 0u64..1_000,
    ) {
        let design = DESIGNS[design_idx];
        let kind = WORKLOADS[workload_idx];
        let workload = Workload::new(kind, 4 << 20, seed);
        let cfg = tiny_config(design, seed);
        let sequential = run_one(cfg.clone(), &workload);
        let reference = serde_json::to_string_pretty(&sequential).unwrap();
        for shards in [2usize, 4] {
            let mut sys = System::new(cfg.clone(), &workload);
            sys.set_shards(shards);
            let sharded = sys.run(&workload.name());
            let json = serde_json::to_string_pretty(&sharded).unwrap();
            prop_assert_eq!(
                &json,
                &reference,
                "{:?} x {:?} (seed {}) diverged at {} shards",
                design,
                kind,
                seed,
                shards
            );
        }
    }
}
