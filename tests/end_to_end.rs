//! Cross-crate integration tests: full-system simulations exercising the
//! workload generators, the SRAM hierarchy, the page table/TLBs, the DRAM
//! model and every DRAM-cache design together.

use banshee_repro::common::{DramKind, TrafficClass};
use banshee_repro::dcache::DramCacheDesign;
use banshee_repro::sim::{run_one, SimConfig, SimResult};
use banshee_repro::workloads::{GraphKernel, SpecProgram, Workload, WorkloadKind};

fn small_config(design: DramCacheDesign) -> SimConfig {
    SimConfig::test_default(design)
}

fn workload(kind: WorkloadKind) -> Workload {
    Workload::new(kind, 16 << 20, 5)
}

fn run(design: DramCacheDesign, kind: WorkloadKind) -> SimResult {
    run_one(small_config(design), &workload(kind))
}

#[test]
fn every_design_completes_on_a_graph_workload() {
    for design in [
        DramCacheDesign::NoCache,
        DramCacheDesign::CacheOnly,
        DramCacheDesign::Alloy {
            fill_probability: 1.0,
        },
        DramCacheDesign::Alloy {
            fill_probability: 0.1,
        },
        DramCacheDesign::Unison,
        DramCacheDesign::Tdc,
        DramCacheDesign::Hma,
        DramCacheDesign::Banshee,
        DramCacheDesign::BansheeLru,
        DramCacheDesign::BansheeFbrNoSample,
    ] {
        let r = run(design, WorkloadKind::Graph(GraphKernel::PageRank));
        assert!(
            r.instructions >= 400_000,
            "{}: too few instructions",
            r.design
        );
        assert!(r.cycles > 0, "{}: no cycles", r.design);
        assert!(r.traffic.grand_total() > 0, "{}: no DRAM traffic", r.design);
    }
}

#[test]
fn speedup_ordering_matches_the_paper_shape() {
    // On a bandwidth-bound pointer-chasing workload the paper's ordering is:
    // NoCache <= page-granularity replace-on-miss designs or Alloy <= Banshee
    // <= CacheOnly (Figure 4). We check the coarse shape: Banshee beats
    // NoCache, and CacheOnly beats NoCache by at least as much as Banshee's
    // floor.
    let kind = WorkloadKind::Spec(SpecProgram::Mcf);
    let nocache = run(DramCacheDesign::NoCache, kind);
    let banshee = run(DramCacheDesign::Banshee, kind);
    let cacheonly = run(DramCacheDesign::CacheOnly, kind);
    let banshee_speedup = banshee.speedup_over(&nocache);
    let cacheonly_speedup = cacheonly.speedup_over(&nocache);
    assert!(
        banshee_speedup > 1.0,
        "Banshee should outperform NoCache (got {banshee_speedup:.2}x)"
    );
    assert!(
        cacheonly_speedup > 1.0,
        "CacheOnly should outperform NoCache (got {cacheonly_speedup:.2}x)"
    );
}

#[test]
fn banshee_moves_fewer_in_package_bytes_than_alloy_and_unison() {
    // The headline of Figure 5: Banshee's in-package traffic is far below
    // the tag-based designs because hits are 64 B and misses cost nothing
    // in-package.
    let kind = WorkloadKind::Graph(GraphKernel::Graph500);
    let banshee = run(DramCacheDesign::Banshee, kind);
    let alloy = run(
        DramCacheDesign::Alloy {
            fill_probability: 0.1,
        },
        kind,
    );
    let unison = run(DramCacheDesign::Unison, kind);
    let bpi = |r: &SimResult| r.total_bytes_per_instr(DramKind::InPackage);
    assert!(
        bpi(&banshee) < bpi(&alloy),
        "Banshee {:.2} should be below Alloy {:.2}",
        bpi(&banshee),
        bpi(&alloy)
    );
    assert!(
        bpi(&banshee) < bpi(&unison),
        "Banshee {:.2} should be below Unison {:.2}",
        bpi(&banshee),
        bpi(&unison)
    );
}

#[test]
fn banshee_has_no_tag_traffic_on_the_demand_path() {
    let r = run(
        DramCacheDesign::Banshee,
        WorkloadKind::Spec(SpecProgram::Omnetpp),
    );
    let tag = r.bytes_per_instr(DramKind::InPackage, TrafficClass::Tag);
    let hit = r.bytes_per_instr(DramKind::InPackage, TrafficClass::HitData);
    // Tag probes only happen for hint-less dirty evictions that miss the tag
    // buffer, so tag bytes must be a small fraction of hit bytes.
    assert!(
        tag < hit * 0.5 + 0.5,
        "unexpectedly high tag traffic: tag {tag:.3} vs hit {hit:.3}"
    );
}

#[test]
fn streaming_workload_punishes_replace_on_every_miss() {
    // lbm-like streaming: Unison/TDC replace on every miss and move far more
    // replacement bytes than Banshee (which declines to cache cold pages).
    let kind = WorkloadKind::Spec(SpecProgram::Lbm);
    let banshee = run(DramCacheDesign::Banshee, kind);
    let unison = run(DramCacheDesign::Unison, kind);
    let repl = |r: &SimResult| {
        r.bytes_per_instr(DramKind::InPackage, TrafficClass::Replacement)
            + r.bytes_per_instr(DramKind::OffPackage, TrafficClass::Replacement)
    };
    assert!(
        repl(&banshee) < repl(&unison),
        "Banshee replacement {:.3} should be below Unison {:.3}",
        repl(&banshee),
        repl(&unison)
    );
}

#[test]
fn mixes_run_all_table4_programs_together() {
    use banshee_repro::workloads::SpecMix;
    for mix in SpecMix::ALL {
        let r = run(DramCacheDesign::Banshee, WorkloadKind::Mix(mix));
        assert!(r.instructions > 0);
        assert!(r.dram_cache_accesses > 0);
    }
}

#[test]
fn lazy_coherence_fires_and_is_cheap() {
    let mut cfg = small_config(DramCacheDesign::Banshee);
    cfg.total_instructions = 1_200_000;
    // A small tag buffer makes the batched coherence rounds frequent enough
    // to observe within a short run (the mechanics are identical to the
    // full-size buffer, the flushes just happen sooner).
    cfg.banshee = Some(banshee_repro::core::BansheeConfig {
        tag_buffer_entries: 64,
        memory_controllers: 1,
        ..banshee_repro::core::BansheeConfig::from_dcache(&cfg.dcache)
    });
    let r = run_one(cfg, &workload(WorkloadKind::Spec(SpecProgram::Mcf)));
    // The tag buffer must have filled at least once on a cache with this
    // much churn, triggering batched PTE updates and a TLB shootdown.
    assert!(r.stats.get("banshee_tag_buffer_flushes") >= 1);
    assert!(r.stats.get("tlb_shootdowns") >= 1);
    assert!(r.stats.get("pte_entries_updated") > 0);
    // And the total OS work is a tiny fraction of the run.
    let os_cycles = r.stats.get("os_work_cycles") + r.stats.get("stall_all_cycles");
    assert!(
        (os_cycles as f64) < 0.2 * r.cycles as f64,
        "lazy coherence should be cheap: {os_cycles} of {} cycles",
        r.cycles
    );
}

#[test]
fn results_are_reproducible_across_runs() {
    let kind = WorkloadKind::Graph(GraphKernel::Sgd);
    let a = run(DramCacheDesign::Banshee, kind);
    let b = run(DramCacheDesign::Banshee, kind);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.dram_cache_misses, b.dram_cache_misses);
    assert_eq!(a.traffic, b.traffic);
}

#[test]
fn batman_keeps_banshee_functional() {
    let mut cfg = small_config(DramCacheDesign::Banshee);
    cfg.use_batman = true;
    let r = run_one(cfg, &workload(WorkloadKind::Graph(GraphKernel::PageRank)));
    assert!(r.design.contains("BATMAN"));
    assert!(r.traffic.grand_total() > 0);
}

#[test]
fn large_pages_reduce_page_table_pressure() {
    let kind = WorkloadKind::Graph(GraphKernel::PageRank);
    let mut small = small_config(DramCacheDesign::Banshee);
    small.total_instructions = 600_000;
    let base = run_one(small, &workload(kind));

    let mut lp = small_config(DramCacheDesign::Banshee);
    lp.total_instructions = 600_000;
    lp.large_pages = true;
    let large = run_one(lp, &workload(kind));

    assert!(
        large.stats.get("tlb_misses") < base.stats.get("tlb_misses"),
        "2 MiB mappings should cut TLB misses: {} vs {}",
        large.stats.get("tlb_misses"),
        base.stats.get("tlb_misses")
    );
}

#[test]
fn traffic_accounting_is_internally_consistent() {
    let r = run(
        DramCacheDesign::Banshee,
        WorkloadKind::Spec(SpecProgram::Soplex),
    );
    // Per-class bytes sum to the device totals.
    for dram in [DramKind::InPackage, DramKind::OffPackage] {
        let sum: u64 = TrafficClass::ALL
            .iter()
            .map(|&c| r.traffic.bytes(dram, c))
            .sum();
        assert_eq!(sum, r.traffic.total(dram));
    }
    // Misses never exceed accesses; MPKI is consistent with the raw counts.
    assert!(r.dram_cache_misses <= r.dram_cache_accesses);
    let expected_mpki = r.dram_cache_misses as f64 * 1000.0 / r.instructions as f64;
    assert!((r.mpki() - expected_mpki).abs() < 1e-9);
}
