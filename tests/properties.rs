//! Cross-crate property-based tests: invariants that must hold for any
//! access stream, checked at the controller level (below the full-system
//! simulator, so they can explore many more cases per second).

use banshee_repro::common::{Addr, DramKind, MemSize, PageNum};
use banshee_repro::core::{BansheeConfig, BansheeController, BansheeVariant};
use banshee_repro::dcache::{
    alloy::AlloyCache, tdc::Tdc, unison::UnisonCache, DCacheConfig, DramCacheController,
    MemRequest, PlanSink,
};
use proptest::prelude::*;

/// Drive a controller with a stream of (page, line, write) accesses using
/// ground-truth mapping hints, and return total bytes per DRAM.
fn drive(ctrl: &mut dyn DramCacheController, stream: &[(u64, u64, bool)]) -> (u64, u64) {
    let mut in_bytes = 0;
    let mut off_bytes = 0;
    let mut plan = PlanSink::new();
    for (i, &(page, line, write)) in stream.iter().enumerate() {
        let addr = Addr::new(page * 4096 + (line % 64) * 64);
        let hint = ctrl.current_mapping(addr.page());
        let mut req = MemRequest::demand(addr, 0).with_hint(hint);
        if write {
            req = req.as_store();
        }
        plan.reset();
        ctrl.access(&req, i as u64, &mut plan);
        in_bytes += plan.bytes_on(DramKind::InPackage);
        off_bytes += plan.bytes_on(DramKind::OffPackage);
        // Occasionally mix in a hint-less dirty eviction, as the LLC would.
        if i % 7 == 3 {
            plan.reset();
            ctrl.access(&MemRequest::writeback(addr, 0), i as u64, &mut plan);
            in_bytes += plan.bytes_on(DramKind::InPackage);
            off_bytes += plan.bytes_on(DramKind::OffPackage);
        }
    }
    (in_bytes, off_bytes)
}

fn access_stream() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    proptest::collection::vec((0u64..200, 0u64..64, any::<bool>()), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Banshee controller's miss-rate accounting is always consistent
    /// and every plan it produces moves a sane number of bytes.
    #[test]
    fn banshee_accounting_consistent(stream in access_stream()) {
        let cfg = BansheeConfig::from_dcache(&DCacheConfig::scaled(MemSize::kib(256)));
        let mut ctrl = BansheeController::with_variant(cfg, BansheeVariant::FbrNoSample);
        drive(&mut ctrl, &stream);
        let (accesses, misses) = ctrl.demand_stats();
        prop_assert_eq!(accesses, stream.len() as u64);
        prop_assert!(misses <= accesses);
        prop_assert!(ctrl.miss_rate() >= 0.0 && ctrl.miss_rate() <= 1.0);
        // The controller never claims more resident pages than the cache
        // can hold.
        prop_assert!(ctrl.resident_pages() as u64 <= ctrl.config().capacity_pages());
    }

    /// Demand misses in Banshee never touch the in-package DRAM on the
    /// critical path (Table 1's "miss traffic: 0B" property).
    #[test]
    fn banshee_misses_skip_in_package_dram(pages in proptest::collection::vec(0u64..10_000, 1..200)) {
        let cfg = BansheeConfig::from_dcache(&DCacheConfig::scaled(MemSize::kib(256)));
        let mut ctrl = BansheeController::new(cfg);
        for (i, page) in pages.iter().enumerate() {
            let addr = Addr::new(page * 4096);
            let hint = ctrl.current_mapping(PageNum::new(*page));
            let plan = ctrl.access_collected(&MemRequest::demand(addr, 0).with_hint(hint), i as u64);
            if !plan.dram_cache_hit {
                let in_critical: u64 = plan
                    .critical
                    .iter()
                    .filter(|op| op.dram == DramKind::InPackage)
                    .map(|op| op.bytes)
                    .sum();
                prop_assert_eq!(in_critical, 0);
            }
        }
    }

    /// Alloy's per-access in-package traffic is always a multiple of the
    /// 32-byte minimum transfer and at least 96 B for demand accesses.
    #[test]
    fn alloy_traffic_granularity(stream in access_stream()) {
        let mut ctrl = AlloyCache::new(&DCacheConfig::scaled(MemSize::kib(256)), 1.0);
        for (i, &(page, line, write)) in stream.iter().enumerate() {
            let addr = Addr::new(page * 4096 + (line % 64) * 64);
            let mut req = MemRequest::demand(addr, 0);
            if write {
                req = req.as_store();
            }
            let plan = ctrl.access_collected(&req, i as u64);
            let in_bytes = plan.bytes_on(DramKind::InPackage);
            prop_assert!(in_bytes >= 96);
            prop_assert_eq!(in_bytes % 32, 0);
        }
    }

    /// TDC never holds more pages than its capacity, no matter the stream.
    #[test]
    fn tdc_capacity_invariant(stream in access_stream()) {
        let cfg = DCacheConfig {
            capacity: MemSize::kib(64),
            ..DCacheConfig::paper_default()
        };
        let mut ctrl = Tdc::new(&cfg);
        for (i, &(page, line, write)) in stream.iter().enumerate() {
            let addr = Addr::new(page * 4096 + (line % 64) * 64);
            let mut req = MemRequest::demand(addr, 0);
            if write {
                req = req.as_store();
            }
            ctrl.access_collected(&req, i as u64);
            prop_assert!(ctrl.resident_pages() as u64 <= cfg.capacity_pages());
        }
    }

    /// Unison and Banshee agree on which accesses are demand accesses (both
    /// count exactly one per demand request, none for writebacks).
    #[test]
    fn demand_counting_is_uniform(stream in access_stream()) {
        let dcfg = DCacheConfig::scaled(MemSize::kib(256));
        let mut unison = UnisonCache::new(&dcfg);
        let mut banshee = BansheeController::from_dcache(&dcfg);
        drive(&mut unison, &stream);
        drive(&mut banshee, &stream);
        prop_assert_eq!(unison.demand_stats().0, stream.len() as u64);
        prop_assert_eq!(banshee.demand_stats().0, stream.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// Warmed-snapshot properties. A full-system image composes every component's
// `Persist` implementation (caches, TLBs, page table, design state, DRAM
// queues, RNG streams, trace cursors), so one system-level round trip
// exercises all of them — across every design in the figure-4 lineup and
// arbitrary seeds — and header/byte-level damage must surface as a typed
// `SnapshotError`, mirroring `trace_file.rs`'s corruption cases.

mod snapshot_props {
    use banshee_repro::dcache::DramCacheDesign;
    use banshee_repro::sim::{SimConfig, System};
    use banshee_repro::workloads::{SpecProgram, Workload, WorkloadKind};
    use proptest::prelude::*;

    fn warmed(design_ix: usize, seed: u64) -> (SimConfig, Workload, Vec<u8>, u64) {
        let designs = DramCacheDesign::figure4_lineup();
        let design = designs[design_ix % designs.len()];
        let mut cfg = SimConfig::test_default(design);
        cfg.warmup_instructions = 20_000;
        cfg.total_instructions = 20_000;
        cfg.seed = seed;
        let w = Workload::new(WorkloadKind::Spec(SpecProgram::Mcf), 8 << 20, seed ^ 1);
        let mut system = System::new(cfg.clone(), &w);
        let executed = system.warm_up().expect("non-zero budget always warms");
        let image = system.warmed_image(&w.name(), executed);
        (cfg, w, image, executed)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// save → restore → save is byte-identical for the whole system.
        #[test]
        fn warmed_image_round_trips(design_ix in 0usize..7, seed in 0u64..1000) {
            let (cfg, w, image, executed) = warmed(design_ix, seed);
            let (resumed, at) =
                System::resume_warmed(cfg, &w, &w.name(), &image).expect("own image resumes");
            prop_assert_eq!(at, executed);
            prop_assert_eq!(resumed.warmed_image(&w.name(), at), image);
        }

        /// Truncation anywhere strictly inside the image, and damage to any
        /// header byte the validator covers, are typed errors; arbitrary
        /// single-byte corruption never panics.
        #[test]
        fn damaged_images_are_typed_errors(
            design_ix in 0usize..7,
            cut_permille in 0usize..1000,
            flip in 0usize..1 << 20,
        ) {
            let (cfg, w, image, _) = warmed(design_ix, 7);
            let cut = image.len() * cut_permille / 1000;
            prop_assert!(
                System::resume_warmed(cfg.clone(), &w, &w.name(), &image[..cut]).is_err(),
                "image truncated to {} of {} bytes resumed", cut, image.len()
            );
            let mut corrupt = image.clone();
            let at = flip % corrupt.len();
            corrupt[at] ^= 0xff;
            // Damage within the validated header prefix (magic, format,
            // revision, key hash) must be rejected; elsewhere the restore
            // may succeed or fail, but must return rather than panic.
            let outcome = System::resume_warmed(cfg, &w, &w.name(), &corrupt);
            if at < 24 {
                prop_assert!(outcome.is_err(), "corrupt header byte {} accepted", at);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Telemetry properties. The recorder is pure observation, so for any design,
// seed and sampling interval (a) the result with the recorder on is
// byte-identical to the recorder-off run, and (b) the measured-phase sample
// windows partition the measured phase: their deltas telescope exactly to
// the final baseline-subtracted instruction and per-class traffic totals.

mod telemetry_props {
    use banshee_repro::common::telemetry::{TelemetryConfig, TelemetryReport, TelemetrySink};
    use banshee_repro::common::{DramKind, TrafficClass};
    use banshee_repro::dcache::DramCacheDesign;
    use banshee_repro::sim::{SimConfig, System};
    use banshee_repro::workloads::{SpecProgram, Workload, WorkloadKind};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn samples_reconcile_with_final_traffic(
            design_ix in 0usize..7,
            seed in 0u64..1000,
            interval in 1_000u64..30_000,
        ) {
            let designs = DramCacheDesign::figure4_lineup();
            let design = designs[design_ix % designs.len()];
            let mut cfg = SimConfig::test_default(design);
            cfg.warmup_instructions = 20_000;
            cfg.total_instructions = 20_000;
            cfg.seed = seed;
            let w = Workload::new(WorkloadKind::Spec(SpecProgram::Mcf), 8 << 20, seed ^ 1);

            let off = System::new(cfg.clone(), &w).run(&w.name());

            let mut system = System::new(cfg, &w);
            system.enable_telemetry(TelemetryConfig {
                interval_instructions: interval,
                ..TelemetryConfig::default()
            });
            let dir = std::env::temp_dir().join(format!(
                "banshee_tel_prop_{}_{}_{}",
                std::process::id(),
                design_ix,
                seed
            ));
            let cell = format!("case_{design_ix}_{seed}_{interval}");
            system.set_telemetry_sink(TelemetrySink::new(&dir, &cell));
            let warmed = system.warm_up();
            let on = system.run_measured(&w.name(), warmed);

            prop_assert_eq!(
                serde_json::to_string_pretty(&off).unwrap(),
                serde_json::to_string_pretty(&on).unwrap()
            );

            let path = dir.join(format!("telemetry_{cell}.json"));
            let text = std::fs::read_to_string(&path).expect("telemetry file exists");
            let parsed: TelemetryReport = serde_json::from_str(&text).expect("report parses");
            let measured: Vec<_> = parsed.samples.iter().filter(|s| !s.warmup).collect();
            prop_assert!(!measured.is_empty());
            let instr: u64 = measured.iter().map(|s| s.delta_instructions).sum();
            prop_assert_eq!(instr, on.instructions);
            for kind in DramKind::ALL {
                for class in TrafficClass::ALL {
                    let sum: u64 =
                        measured.iter().map(|s| s.traffic.bytes(kind, class)).sum();
                    prop_assert_eq!(sum, on.traffic.bytes(kind, class));
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
