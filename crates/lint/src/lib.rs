//! `banshee_tidy` — the workspace's repo-native static-analysis pass.
//!
//! In the spirit of rust-lang's `tidy`: a fast, dependency-free lexical
//! scan that enforces the invariants this simulator's correctness rests on
//! but `rustc` cannot see — determinism (no randomly-seeded hashers, no
//! wall-clock reads in sim state), key-material coverage (every `SimConfig`
//! field keys the result store or is a declared execution knob), an unsafe
//! audit, and model-governance coherence (revision constants, fixtures and
//! the CI guard agree). See the check modules under [`checks`] for the
//! individual rules and the markers (`// tidy: allow(..): why`,
//! `// tidy: exec-knob`, `// SAFETY:`) that grant exceptions.
//!
//! This is deliberately a *lexer*, not a parser: [`lexer::SourceFile`]
//! blanks comments and strings out of a code view, records them in side
//! tables, and marks `#[cfg(test)]` regions — enough to answer every check
//! with zero dependencies and no false positives from prose or test code.

pub mod checks;
pub mod diag;
pub mod lexer;
pub mod walk;

use checks::Tree;
use diag::{CheckId, Diagnostic, Report, ALL_CHECKS};
use std::io;
use std::path::Path;

/// Parse the workspace tree under `root`.
pub fn load_tree(root: &Path) -> io::Result<Tree> {
    let mut files = Vec::new();
    for rel in walk::collect_rust_files(root)? {
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push(lexer::SourceFile::parse(&rel, &text));
    }
    Ok(Tree {
        root: root.to_path_buf(),
        files,
    })
}

/// Run `checks` (all of them when empty) over the workspace at `root`.
pub fn run(root: &Path, only: &[CheckId]) -> io::Result<Report> {
    let tree = load_tree(root)?;
    let selected: Vec<CheckId> = if only.is_empty() {
        ALL_CHECKS.to_vec()
    } else {
        only.to_vec()
    };
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for &check in &selected {
        checks::run_check(check, &tree, &mut diagnostics);
    }
    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.check, &a.message).cmp(&(&b.path, b.line, b.check, &b.message))
    });
    diagnostics.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.check == b.check && a.message == b.message);
    Ok(Report {
        checks_run: selected,
        files_scanned: tree.files.len(),
        diagnostics,
    })
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
