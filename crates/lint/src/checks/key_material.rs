//! Key-material coverage: every `SimConfig` field either flows into the
//! result-store key or is an explicitly marked execution knob.
//!
//! The store key is `cache_key_material()` = `MODEL_REVISION` + the manual
//! `Debug` rendering of `SimConfig`, so a field is key material exactly
//! when the `Debug` impl has a `.field("<name>", ..)` call for it. Fields
//! that deliberately do *not* key the store — knobs that change how a
//! result is computed but never what it is (`shards`, telemetry sinks) —
//! must say so with a `// tidy: exec-knob` comment on or above the field.
//! This turns the PR 8 convention ("shards must never be key material")
//! into a machine-checked property: adding a field without deciding its
//! key-material treatment fails tidy, deleting a `.field(...)` line without
//! marking the field fails tidy, and a typoed `.field` name fails tidy.

use super::{emit, Tree};
use crate::diag::{CheckId, Diagnostic};
use crate::lexer::{is_ident_char, SourceFile};

/// The file that defines `SimConfig`.
pub const CONFIG_PATH: &str = "crates/sim/src/config.rs";

pub fn check(tree: &Tree, diags: &mut Vec<Diagnostic>) {
    let Some(file) = tree.file(CONFIG_PATH) else {
        // Nothing to do on trees without a simulator config (e.g. fixture
        // trees for other checks). The governance check pins the real
        // tree's layout.
        return;
    };

    let Some(struct_span) = brace_span_after(file, "struct SimConfig") else {
        emit(
            diags,
            CheckId::KeyMaterial,
            CONFIG_PATH,
            1,
            "could not find `struct SimConfig { .. }` — if it moved, update \
             the tidy key-material check"
                .to_string(),
        );
        return;
    };
    let fields = struct_fields(file, struct_span);

    let Some(debug_span) = brace_span_after(file, "Debug for SimConfig") else {
        emit(
            diags,
            CheckId::KeyMaterial,
            CONFIG_PATH,
            file.line_of_offset(struct_span.0),
            "SimConfig has no manual `impl Debug` — the Debug rendering is \
             result-store key material and must stay hand-rolled (see \
             cache_key_material)"
                .to_string(),
        );
        return;
    };
    let keyed = debug_field_names(file, debug_span);

    for f in &fields {
        let in_debug = keyed.iter().any(|(name, _)| name == &f.name);
        match (in_debug, f.exec_knob) {
            (true, false) => {} // key material, as most fields should be
            (false, true) => {} // marked execution knob
            (false, false) => emit(
                diags,
                CheckId::KeyMaterial,
                CONFIG_PATH,
                f.line,
                format!(
                    "SimConfig field `{}` neither flows into key material (no \
                     `.field(\"{}\", ..)` in the manual Debug impl) nor carries \
                     `// tidy: exec-knob` — decide: key it, or mark it as an \
                     execution knob that cannot change results",
                    f.name, f.name
                ),
            ),
            (true, true) => emit(
                diags,
                CheckId::KeyMaterial,
                CONFIG_PATH,
                f.line,
                format!(
                    "SimConfig field `{}` is marked `tidy: exec-knob` but still \
                     flows into key material via the Debug impl — an execution \
                     knob must not re-key the result store; drop the marker or \
                     the `.field(..)` call",
                    f.name
                ),
            ),
        }
    }
    for (name, line) in &keyed {
        if !fields.iter().any(|f| &f.name == name) {
            emit(
                diags,
                CheckId::KeyMaterial,
                CONFIG_PATH,
                *line,
                format!(
                    "Debug impl keys `{name}` which is not a SimConfig field — \
                     typo, or a removed field still being rendered"
                ),
            );
        }
    }

    // The coverage argument assumes the key-material functions still exist
    // and still fold in the model revision.
    for func in ["cache_key_material", "warmup_key_material"] {
        if !file.code.contains(&format!("fn {func}")) {
            emit(
                diags,
                CheckId::KeyMaterial,
                CONFIG_PATH,
                1,
                format!(
                    "`SimConfig::{func}` not found — the key-material coverage \
                     check assumes the Debug-based keying scheme; update the \
                     tidy check if the scheme changed"
                ),
            );
        }
    }
    if !file.code.contains("MODEL_REVISION") {
        emit(
            diags,
            CheckId::KeyMaterial,
            CONFIG_PATH,
            1,
            "`MODEL_REVISION` is no longer referenced by the config — key \
             material must fold in the model revision so behaviour changes \
             invalidate persisted results"
                .to_string(),
        );
    }
}

/// One parsed `SimConfig` field.
struct Field {
    name: String,
    line: usize,
    exec_knob: bool,
}

/// Byte span (open `{` offset, close `}` offset) of the brace block that
/// follows the first occurrence of `pattern` in non-test code.
fn brace_span_after(file: &SourceFile, pattern: &str) -> Option<(usize, usize)> {
    let mut search = 0usize;
    loop {
        let pos = search + file.code[search..].find(pattern)?;
        search = pos + pattern.len();
        if file.is_test_line(file.line_of_offset(pos)) {
            continue;
        }
        let open = pos + file.code[pos..].find('{')?;
        let mut depth = 0usize;
        for (off, c) in file.code[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, open + off));
                    }
                }
                _ => {}
            }
        }
        return None;
    }
}

/// Parse the field declarations inside the struct's brace span: lines of
/// the form `pub name: Type,` at nesting depth 1.
fn struct_fields(file: &SourceFile, span: (usize, usize)) -> Vec<Field> {
    let first = file.line_of_offset(span.0) + 1;
    let last = file.line_of_offset(span.1);
    let mut out = Vec::new();
    for line in first..last {
        let code = file.code_line(line).trim();
        let rest = code.strip_prefix("pub ").unwrap_or(code);
        let Some(colon) = rest.find(':') else { continue };
        // `::` is a path, not a field declaration.
        if rest[colon..].starts_with("::") {
            continue;
        }
        let name = rest[..colon].trim();
        if name.is_empty() || !name.chars().all(is_ident_char) {
            continue;
        }
        out.push(Field {
            name: name.to_string(),
            line,
            exec_knob: field_has_exec_knob_marker(file, line),
        });
    }
    out
}

/// `tidy: exec-knob` on the field line or in the contiguous comment /
/// attribute block directly above it.
fn field_has_exec_knob_marker(file: &SourceFile, line: usize) -> bool {
    if file.comment_text(line).contains("tidy: exec-knob") {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if !file.line_is_passive(l) || file.code_line(l).trim().is_empty() && file.comment_text(l).is_empty() {
            break;
        }
        if file.comment_text(l).contains("tidy: exec-knob") {
            return true;
        }
    }
    false
}

/// `.field("name", ..)` call sites inside the Debug impl's span, using the
/// extracted string-literal table (the code view has strings blanked).
fn debug_field_names(file: &SourceFile, span: (usize, usize)) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for lit in &file.strings {
        if lit.offset <= span.0 || lit.offset >= span.1 {
            continue;
        }
        // The literal must be the first argument of a `.field(` call:
        // walking back over whitespace must land on `field(` preceded
        // by `.`.
        let before = file.code[..lit.offset].trim_end();
        if before.ends_with("field(") && before[..before.len() - "field(".len()].trim_end().ends_with('.')
        {
            out.push((lit.text.clone(), lit.line));
        }
    }
    out
}
