//! Wall-clock lint: host time must never flow into simulated state.
//!
//! A `SimResult` must be a pure function of `SimConfig` + workload + seed;
//! one `Instant::now()` read into a decision makes runs non-reproducible
//! and poisons the result store. Wall-clock reads are confined to the
//! allowlisted measurement layers (telemetry, the execution engine, the
//! bench/runner crate); anywhere else needs a
//! `// tidy: allow(wall-clock): <justification>` marker — used exactly once
//! today, for the self-profiling clock helper in `crates/sim/src/system.rs`.

use super::{allow_marker, emit, word_occurrences, Marker, Tree};
use crate::diag::{CheckId, Diagnostic};
use crate::walk::is_test_path;

/// Files and subtrees where wall-clock reads are expected: the telemetry
/// module (self-profiling durations), the job engine (per-job timing), and
/// the whole bench crate (runners, benches, the experiments binary).
const ALLOWLIST_PREFIXES: &[&str] = &["crates/bench/"];
const ALLOWLIST_FILES: &[&str] = &["crates/common/src/telemetry.rs", "crates/exec/src/pool.rs"];

fn allowlisted(rel_path: &str) -> bool {
    ALLOWLIST_FILES.contains(&rel_path)
        || ALLOWLIST_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// Find `Instant :: now` token sequences (whitespace-tolerant) and bare
/// `SystemTime` references.
fn wall_clock_uses(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for pos in word_occurrences(code, "Instant") {
        let rest = code[pos + "Instant".len()..].trim_start();
        if let Some(after) = rest.strip_prefix("::") {
            if after.trim_start().starts_with("now") {
                out.push((pos, "Instant::now"));
            }
        }
    }
    for pos in word_occurrences(code, "SystemTime") {
        out.push((pos, "SystemTime"));
    }
    out.sort_by_key(|&(pos, _)| pos);
    out
}

pub fn check(tree: &Tree, diags: &mut Vec<Diagnostic>) {
    for file in &tree.files {
        if is_test_path(&file.rel_path) || allowlisted(&file.rel_path) {
            continue;
        }
        for (pos, what) in wall_clock_uses(&file.code) {
            let line = file.line_of_offset(pos);
            if file.is_test_line(line) {
                continue;
            }
            match allow_marker(file, line, "wall-clock") {
                Marker::Allowed => {}
                Marker::MissingJustification(mline) => emit(
                    diags,
                    CheckId::WallClock,
                    &file.rel_path,
                    mline,
                    format!(
                        "`tidy: allow(wall-clock)` marker needs a justification: \
                         `// tidy: allow(wall-clock): <why host time cannot reach \
                         simulated state here>` (for `{what}` on this line)"
                    ),
                ),
                Marker::Absent => emit(
                    diags,
                    CheckId::WallClock,
                    &file.rel_path,
                    line,
                    format!(
                        "`{what}` outside the telemetry/runner/bench allowlist: host \
                         time must never influence a SimResult. Move the read into an \
                         allowlisted measurement layer, or justify with \
                         `// tidy: allow(wall-clock): <why>`"
                    ),
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_spaced_and_pathed_calls() {
        let uses = wall_clock_uses("let a = std::time::Instant::now(); let b = Instant :: now();");
        assert_eq!(uses.len(), 2);
        assert!(wall_clock_uses("use std::time::Instant;").is_empty());
        assert_eq!(wall_clock_uses("SystemTime::now()").len(), 1);
    }
}
