//! Model-governance coherence: the revision/format constants, the fixtures
//! that pin them, and the CI guard that enforces bumps must agree.
//!
//! Four invariants, all caught in-tree (a plain `cargo tidy`), not only in
//! CI:
//!
//! 1. **Section-label uniqueness** — within one function, every
//!    `Persist`-style `.section("label", ..)` call must use a distinct
//!    label. Duplicate labels make a framing mismatch undetectable: the
//!    reader would accept the wrong section's tag.
//! 2. **`MODEL_REVISION` coherence** — the committed key-material fixture
//!    must embed the compiled revision (`model-rev=N|…`), and the doc
//!    comment above the constant must have a history entry for `N.` so a
//!    bump always documents what changed.
//! 3. **`SNAPSHOT_FORMAT` coherence** — the doc comment above the constant
//!    must describe the current format (`Format N: …`), so a format bump
//!    without documentation fails.
//! 4. **CI guard wiring** — the workflow's fixture-guard must still
//!    reference `MODEL_REVISION` and both governed fixtures; deleting the
//!    guard (or a fixture path from it) is itself a tidy failure.

use super::{emit, word_occurrences, Tree};
use crate::diag::{CheckId, Diagnostic};
use crate::lexer::SourceFile;
use crate::walk::is_test_path;

/// Where the governed constants live.
const CONFIG_PATH: &str = "crates/sim/src/config.rs";
const PERSIST_PATH: &str = "crates/common/src/persist.rs";
/// The fixture pinning the key material, and the results fixture the CI
/// guard couples to revision bumps.
const KEY_FIXTURE: &str = "crates/sim/tests/fixtures/cache_key_material.txt";
const GOLDEN_FIXTURE: &str = "crates/bench/tests/fixtures/golden_quick.json";
/// The workflow holding the fixture-guard job.
const CI_WORKFLOW: &str = ".github/workflows/ci.yml";

pub fn check(tree: &Tree, diags: &mut Vec<Diagnostic>) {
    section_labels_unique(tree, diags);
    if let Some(config) = tree.file(CONFIG_PATH) {
        model_revision_coherent(tree, config, diags);
        ci_guard_wired(tree, diags);
    }
    if let Some(persist) = tree.file(PERSIST_PATH) {
        snapshot_format_documented(persist, diags);
    }
}

/// Invariant 1: no duplicate `.section("x")` labels within one function.
fn section_labels_unique(tree: &Tree, diags: &mut Vec<Diagnostic>) {
    for file in &tree.files {
        if is_test_path(&file.rel_path) {
            continue;
        }
        let fns = fn_spans(&file.code);
        // (enclosing fn span, label, line) per call site.
        let mut calls: Vec<(usize, String, usize)> = Vec::new();
        for lit in &file.strings {
            let line = lit.line;
            if file.is_test_line(line) {
                continue;
            }
            let before = file.code[..lit.offset].trim_end();
            if !(before.ends_with("section(")
                && before[..before.len() - "section(".len()].trim_end().ends_with('.'))
            {
                continue;
            }
            let span = innermost_span(&fns, lit.offset);
            calls.push((span, lit.text.clone(), line));
        }
        for (i, (span, label, line)) in calls.iter().enumerate() {
            if calls[..i]
                .iter()
                .any(|(s, l, _)| s == span && l == label)
            {
                emit(
                    diags,
                    CheckId::Governance,
                    &file.rel_path,
                    *line,
                    format!(
                        "duplicate snapshot section label \"{label}\" within one \
                         function: section tags must be unique per save/restore \
                         path or a framing mismatch goes undetected"
                    ),
                );
            }
        }
    }
}

/// Invariants 2 + (half of) 4: `MODEL_REVISION`, its fixture and history.
fn model_revision_coherent(tree: &Tree, config: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let Some((revision, line)) = parse_const(config, "MODEL_REVISION") else {
        emit(
            diags,
            CheckId::Governance,
            CONFIG_PATH,
            1,
            "`MODEL_REVISION: u32 = <n>` not found — the governance check \
             needs the literal constant to pin fixtures against"
                .to_string(),
        );
        return;
    };
    if !history_entry_above(config, line, &format!("{revision}.")) {
        emit(
            diags,
            CheckId::Governance,
            CONFIG_PATH,
            line,
            format!(
                "MODEL_REVISION is {revision} but the revision-history doc \
                 comment above it has no `{revision}.` entry — document what \
                 behaviour changed in this revision"
            ),
        );
    }
    match tree.read_text(KEY_FIXTURE) {
        None => emit(
            diags,
            CheckId::Governance,
            KEY_FIXTURE,
            0,
            "key-material fixture missing — regenerate with \
             BANSHEE_UPDATE_KEY_SNAPSHOT=1 cargo test -p banshee_sim --test \
             key_material"
                .to_string(),
        ),
        Some(fixture) => {
            let want = format!("model-rev={revision}|");
            if !fixture.starts_with(&want) {
                let found = fixture.split('|').next().unwrap_or("").trim();
                emit(
                    diags,
                    CheckId::Governance,
                    KEY_FIXTURE,
                    1,
                    format!(
                        "fixture pins `{found}` but the compiled MODEL_REVISION \
                         is {revision} — a revision bump must regenerate the \
                         fixture (BANSHEE_UPDATE_KEY_SNAPSHOT=1), and a fixture \
                         change must come with the bump"
                    ),
                );
            }
        }
    }
}

/// Invariant 3: the snapshot format constant documents its current format.
fn snapshot_format_documented(persist: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let Some((format, line)) = parse_const(persist, "SNAPSHOT_FORMAT") else {
        emit(
            diags,
            CheckId::Governance,
            PERSIST_PATH,
            1,
            "`SNAPSHOT_FORMAT: u32 = <n>` not found — the governance check \
             needs the literal constant"
                .to_string(),
        );
        return;
    };
    if !history_entry_above(persist, line, &format!("Format {format}:")) {
        emit(
            diags,
            CheckId::Governance,
            PERSIST_PATH,
            line,
            format!(
                "SNAPSHOT_FORMAT is {format} but the doc comment above it has \
                 no `Format {format}:` entry — a format bump must document \
                 what changed in the encoding"
            ),
        );
    }
}

/// Invariant 4: the CI fixture-guard still references what it must guard.
fn ci_guard_wired(tree: &Tree, diags: &mut Vec<Diagnostic>) {
    let Some(workflow) = tree.read_text(CI_WORKFLOW) else {
        emit(
            diags,
            CheckId::Governance,
            CI_WORKFLOW,
            0,
            "CI workflow missing — the model-revision fixture-guard job must \
             exist (it rejects fixture diffs without a MODEL_REVISION bump)"
                .to_string(),
        );
        return;
    };
    for needed in ["MODEL_REVISION", KEY_FIXTURE, GOLDEN_FIXTURE] {
        if !workflow.contains(needed) {
            emit(
                diags,
                CheckId::Governance,
                CI_WORKFLOW,
                0,
                format!(
                    "the CI workflow no longer references `{needed}` — the \
                     model-revision fixture-guard must keep watching both \
                     governed fixtures and the MODEL_REVISION constant"
                ),
            );
        }
    }
}

/// Find `NAME: u32 = <n>` in non-test code; returns (value, 1-based line).
fn parse_const(file: &SourceFile, name: &str) -> Option<(u32, usize)> {
    for pos in word_occurrences(&file.code, name) {
        let line = file.line_of_offset(pos);
        if file.is_test_line(line) {
            continue;
        }
        let rest = file.code[pos + name.len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("u32") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('=') else { continue };
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .collect();
        if let Ok(v) = digits.replace('_', "").parse() {
            return Some((v, line));
        }
    }
    None
}

/// Does the contiguous comment block directly above `line` (attribute lines
/// allowed in between) contain `entry`?
fn history_entry_above(file: &SourceFile, line: usize, entry: &str) -> bool {
    let mut l = line;
    while l > 1 {
        l -= 1;
        if !file.line_is_passive(l) {
            break;
        }
        if file.comment_text(l).contains(entry) {
            return true;
        }
        if file.code_line(l).trim().is_empty() && file.comment_text(l).is_empty() {
            break; // blank line ends the block
        }
    }
    false
}

/// Byte spans of every `fn` body `{ .. }` in the code view.
fn fn_spans(code: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for pos in word_occurrences(code, "fn") {
        // Scan forward for the body-opening brace; a `;` at paren depth 0
        // first means a bodiless declaration (trait method signature).
        let mut paren = 0i32;
        let mut open = None;
        for (off, c) in code[pos..].char_indices() {
            match c {
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                '{' => {
                    open = Some(pos + off);
                    break;
                }
                ';' if paren == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        for (off, c) in code[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        spans.push((open, open + off));
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    spans
}

/// The tightest span containing `offset` (0 when none — file scope).
fn innermost_span(spans: &[(usize, usize)], offset: usize) -> usize {
    spans
        .iter()
        .filter(|(a, b)| *a < offset && offset < *b)
        .min_by_key(|(a, b)| b - a)
        .map(|(a, _)| *a)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_parsing() {
        let f = SourceFile::parse("c.rs", "pub const MODEL_REVISION: u32 = 2;\n");
        assert_eq!(parse_const(&f, "MODEL_REVISION"), Some((2, 1)));
        let g = SourceFile::parse("c.rs", "pub const SNAPSHOT_FORMAT: u32 = 1_0;\n");
        assert_eq!(parse_const(&g, "SNAPSHOT_FORMAT"), Some((10, 1)));
    }

    #[test]
    fn history_lookup() {
        let f = SourceFile::parse(
            "c.rs",
            "/// Revision history:\n/// 1. initial;\n/// 2. queues.\npub const MODEL_REVISION: u32 = 2;\n",
        );
        let (_, line) = parse_const(&f, "MODEL_REVISION").unwrap();
        assert!(history_entry_above(&f, line, "2."));
        assert!(!history_entry_above(&f, line, "3."));
    }

    #[test]
    fn fn_span_extraction() {
        let code = "fn a() { x(); } trait T { fn b(); } fn c() { fn d() {} }";
        let spans = fn_spans(code);
        assert_eq!(spans.len(), 3); // a, c, d (b is bodiless)
    }
}
