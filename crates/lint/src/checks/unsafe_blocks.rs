//! Unsafe audit: every `unsafe` block, fn, or impl must be preceded by a
//! `// SAFETY:` comment stating the invariant that makes it sound.
//!
//! The comment must sit in the contiguous comment block directly above the
//! line carrying the `unsafe` keyword (attribute lines in between are
//! fine), or trail on the `unsafe` line itself. Two consecutive `unsafe`
//! items need two comments — a shared paragraph above the first does not
//! document the second.

use super::{emit, Tree};
use crate::diag::{CheckId, Diagnostic};

pub fn check(tree: &Tree, diags: &mut Vec<Diagnostic>) {
    for file in &tree.files {
        let mut flagged_lines = Vec::new();
        for pos in super::word_occurrences(&file.code, "unsafe") {
            let line = file.line_of_offset(pos);
            if flagged_lines.contains(&line) {
                continue;
            }
            flagged_lines.push(line);
            if has_safety_comment(file, line) {
                continue;
            }
            emit(
                diags,
                CheckId::Unsafe,
                &file.rel_path,
                line,
                "`unsafe` without a `// SAFETY:` comment on the line(s) directly \
                 above: state the invariant that makes this sound"
                    .to_string(),
            );
        }
    }
}

/// Is there a `SAFETY:` comment attached to `line`? Attached means: on the
/// line itself, or in the contiguous run of comment/attribute-only lines
/// directly above it (a blank line or a code line breaks the run).
fn has_safety_comment(file: &crate::lexer::SourceFile, line: usize) -> bool {
    if file.comment_text(line).contains("SAFETY:") {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let code = file.code_line(l).trim();
        let comment = file.comment_text(l);
        let is_attr_only = !code.is_empty() && code.starts_with('#') && comment.is_empty();
        let is_comment_line = code.is_empty() && !comment.is_empty();
        if is_comment_line {
            if comment.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        if is_attr_only {
            continue;
        }
        break; // blank line or code: the comment run ended
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::Tree;
    use crate::lexer::SourceFile;
    use std::path::PathBuf;

    fn run_on(src: &str) -> Vec<usize> {
        let tree = Tree {
            root: PathBuf::from("."),
            files: vec![SourceFile::parse("crates/x/src/lib.rs", src)],
        };
        let mut diags = Vec::new();
        check(&tree, &mut diags);
        diags.iter().map(|d| d.line).collect()
    }

    #[test]
    fn documented_unsafe_passes() {
        let lines = run_on(
            "// SAFETY: the slot is exclusively owned here.\nunsafe { ptr.write(v) };\n",
        );
        assert!(lines.is_empty(), "{lines:?}");
    }

    #[test]
    fn undocumented_unsafe_fires() {
        assert_eq!(run_on("unsafe { ptr.write(v) };\n"), vec![1]);
    }

    #[test]
    fn consecutive_unsafe_items_need_their_own_comments() {
        let src = "// SAFETY: covered.\nunsafe impl Send for A {}\nunsafe impl Sync for A {}\n";
        assert_eq!(run_on(src), vec![3]);
    }

    #[test]
    fn attributes_do_not_break_the_comment_run() {
        let src = "// SAFETY: sound because X.\n#[inline]\nunsafe fn f() {}\n";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn prose_mentions_do_not_count_as_unsafe() {
        assert!(run_on("// this is unsafe in spirit\nlet x = \"unsafe\";\n").is_empty());
    }
}
