//! Determinism lint: no `std::collections::{HashMap,HashSet}` in the
//! non-test code of sim-critical crates.
//!
//! `std`'s hasher is randomly seeded per process, so iteration order — and
//! therefore anything that iterates a map while mutating simulation state
//! (PR 3's HMA migration bug) — differs between runs. Sim-critical code
//! must use `banshee_common::{FnvHashMap, FnvHashSet}` instead; the rare
//! legitimate exception (the Fnv definition site itself) carries a
//! `// tidy: allow(std-hash): <justification>` marker.

use super::{allow_marker, emit, is_sim_critical_src, path_prefix_before, word_occurrences, Marker, Tree};
use crate::diag::{CheckId, Diagnostic};

/// The forbidden std collection type names.
const BANNED: &[&str] = &["HashMap", "HashSet"];

pub fn check(tree: &Tree, diags: &mut Vec<Diagnostic>) {
    for file in &tree.files {
        if !is_sim_critical_src(&file.rel_path) {
            continue;
        }
        for &word in BANNED {
            for pos in word_occurrences(&file.code, word) {
                let prefix = path_prefix_before(&file.code, pos);
                if !(prefix.len() >= 2
                    && prefix[prefix.len() - 2] == "std"
                    && prefix[prefix.len() - 1] == "collections")
                {
                    continue;
                }
                let line = file.line_of_offset(pos);
                if file.is_test_line(line) {
                    continue;
                }
                match allow_marker(file, line, "std-hash") {
                    Marker::Allowed => {}
                    Marker::MissingJustification(mline) => emit(
                        diags,
                        CheckId::StdHash,
                        &file.rel_path,
                        mline,
                        format!(
                            "`tidy: allow(std-hash)` marker needs a justification: \
                             `// tidy: allow(std-hash): <why this map may be \
                             nondeterministically ordered>` (for `{word}` use on this line)"
                        ),
                    ),
                    Marker::Absent => emit(
                        diags,
                        CheckId::StdHash,
                        &file.rel_path,
                        line,
                        format!(
                            "`std::collections::{word}` in sim-critical non-test code: \
                             its iteration order is randomly seeded per process. Use \
                             `banshee_common::Fnv{word}` (deterministic), or justify with \
                             `// tidy: allow(std-hash): <why>`"
                        ),
                    ),
                }
            }
        }
    }
}
