//! The tidy check catalogue and their shared text-scanning helpers.
//!
//! To add a check: give it a [`CheckId`](crate::diag::CheckId) variant and
//! name, implement `pub fn check(tree: &Tree, diags: &mut Vec<Diagnostic>)`
//! in a new module here, dispatch it from [`run_check`], and pin it with a
//! known-bad fixture tree under `crates/lint/tests/fixtures/`.

pub mod governance;
pub mod key_material;
pub mod std_hash;
pub mod unsafe_blocks;
pub mod wall_clock;

use crate::diag::{CheckId, Diagnostic};
use crate::lexer::{is_ident_char, SourceFile};
use std::path::PathBuf;

/// Everything a check can see: the parsed `.rs` files plus the workspace
/// root for reading non-Rust governance inputs (fixtures, CI workflow).
pub struct Tree {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Parsed files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Tree {
    /// The parsed file at `rel_path`, if it was scanned.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }

    /// Read an arbitrary workspace file (fixtures, YAML) as text.
    pub fn read_text(&self, rel_path: &str) -> Option<String> {
        std::fs::read_to_string(self.root.join(rel_path)).ok()
    }
}

/// Run one check over the tree.
pub fn run_check(id: CheckId, tree: &Tree, diags: &mut Vec<Diagnostic>) {
    match id {
        CheckId::StdHash => std_hash::check(tree, diags),
        CheckId::WallClock => wall_clock::check(tree, diags),
        CheckId::KeyMaterial => key_material::check(tree, diags),
        CheckId::Unsafe => unsafe_blocks::check(tree, diags),
        CheckId::Governance => governance::check(tree, diags),
    }
}

/// Crates whose non-test `src/` code is *sim-critical*: anything here can
/// influence a `SimResult`, so determinism rules apply in full.
pub const SIM_CRITICAL_CRATES: &[&str] = &[
    "crates/common",
    "crates/core",
    "crates/dcache",
    "crates/dram",
    "crates/mem-hier",
    "crates/sim",
    "crates/workloads",
];

/// Is `rel_path` non-test source of a sim-critical crate?
pub fn is_sim_critical_src(rel_path: &str) -> bool {
    SIM_CRITICAL_CRATES
        .iter()
        .any(|c| rel_path.strip_prefix(c).is_some_and(|r| r.starts_with("/src/")))
}

/// Outcome of looking for a `// tidy: allow(<name>)` marker near a line.
pub enum Marker {
    /// Marker present with a non-empty justification.
    Allowed,
    /// Marker present but no justification after the closing paren.
    MissingJustification(usize),
    /// No marker.
    Absent,
}

/// Look for `tidy: allow(<name>)` in the comments on `line` or the line
/// directly above it. The marker must be followed by a justification
/// (anything non-empty after an optional `:` / `-`).
pub fn allow_marker(file: &SourceFile, line: usize, name: &str) -> Marker {
    let needle = format!("tidy: allow({name})");
    for l in [line, line.saturating_sub(1)] {
        if l == 0 {
            continue;
        }
        let text = file.comment_text(l);
        if let Some(pos) = text.find(&needle) {
            let rest = text[pos + needle.len()..]
                .trim_start_matches([':', '-', '—', ' ', '\t'])
                .trim();
            if rest.is_empty() {
                return Marker::MissingJustification(l);
            }
            return Marker::Allowed;
        }
    }
    Marker::Absent
}

/// Byte offsets of every occurrence of `word` in `code` delimited by
/// non-identifier characters on both sides.
pub fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = code[start..].find(word) {
        let pos = start + p;
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .map(is_ident_char)
                .unwrap_or(false);
        let after_ok = !code[pos + word.len()..]
            .chars()
            .next()
            .map(is_ident_char)
            .unwrap_or(false);
        if before_ok && after_ok {
            out.push(pos);
        }
        start = pos + word.len();
    }
    out
}

/// Walk backwards from `pos` (exclusive) over whitespace.
fn skip_ws_back(code: &[u8], mut pos: usize) -> usize {
    while pos > 0 && (code[pos - 1] as char).is_whitespace() {
        pos -= 1;
    }
    pos
}

/// Read an identifier ending at `pos` (exclusive); returns (start, ident).
fn ident_back(code: &[u8], pos: usize) -> (usize, String) {
    let mut start = pos;
    while start > 0 && is_ident_char(code[start - 1] as char) && code[start - 1].is_ascii() {
        start -= 1;
    }
    (start, String::from_utf8_lossy(&code[start..pos]).into_owned())
}

/// Reconstruct the `::`-separated path segments preceding `pos`, crossing
/// `use`-group braces, e.g. for the `HashMap` in
/// `use std::{collections::{HashMap}}` this returns `["std", "collections"]`.
/// Bounded: gives up (returning what it has) after walking 2000 bytes.
pub fn path_prefix_before(code: &str, pos: usize) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut segs: Vec<String> = Vec::new();
    let mut p = pos;
    let floor = pos.saturating_sub(2000);
    loop {
        p = skip_ws_back(bytes, p);
        if p < 2 || p <= floor {
            break;
        }
        if &bytes[p - 2..p] == b"::" {
            p = skip_ws_back(bytes, p - 2);
            let (start, ident) = ident_back(bytes, p);
            if ident.is_empty() {
                // `::{` or leading `::` (absolute path) — keep crossing.
                if p > 0 && bytes[p - 1] == b'}' {
                    break; // `}::x` — not a plain path, stop.
                }
                break;
            }
            segs.push(ident);
            p = start;
        } else if bytes[p - 1] == b'{' || bytes[p - 1] == b',' {
            // Inside a use group: walk back to the group's opening brace,
            // crossing only ident/ws/comma/path chars and nested groups.
            let mut depth = 0i32;
            let mut q = p - 1;
            let ok = loop {
                if q == 0 || q <= floor {
                    break false;
                }
                let b = bytes[q] as char;
                match b {
                    '}' => depth += 1,
                    '{' => {
                        if depth == 0 {
                            break true;
                        }
                        depth -= 1;
                    }
                    c if is_ident_char(c) || c == ',' || c == ':' || c.is_whitespace() => {}
                    _ => break false,
                }
                q -= 1;
            };
            if !ok {
                break;
            }
            p = q; // just before the opening `{`
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}

/// Push a diagnostic.
pub fn emit(
    diags: &mut Vec<Diagnostic>,
    check: CheckId,
    path: &str,
    line: usize,
    message: String,
) {
    diags.push(Diagnostic {
        check,
        path: path.to_string(),
        line,
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        let occ = word_occurrences("HashMap MyHashMap HashMapper HashMap", "HashMap");
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0], 0);
    }

    #[test]
    fn path_prefix_direct() {
        let code = "let m: std::collections::HashMap<u64, u64> = Default::default();";
        let pos = code.find("HashMap").unwrap();
        assert_eq!(path_prefix_before(code, pos), vec!["std", "collections"]);
    }

    #[test]
    fn path_prefix_use_group() {
        let code = "use std::collections::{HashMap, HashSet};";
        let pos = code.find("HashSet").unwrap();
        assert_eq!(path_prefix_before(code, pos), vec!["std", "collections"]);
    }

    #[test]
    fn path_prefix_nested_group() {
        let code = "use std::{collections::{hash_map, HashMap}, fmt};";
        let pos = code.find("HashMap").unwrap();
        assert_eq!(path_prefix_before(code, pos), vec!["std", "collections"]);
    }

    #[test]
    fn path_prefix_unrelated() {
        let code = "fn f() { let x = HashMap::new(); }";
        let pos = code.find("HashMap").unwrap();
        assert!(path_prefix_before(code, pos).is_empty());
    }

    #[test]
    fn sim_critical_paths() {
        assert!(is_sim_critical_src("crates/sim/src/system.rs"));
        assert!(is_sim_critical_src("crates/mem-hier/src/cache.rs"));
        assert!(!is_sim_critical_src("crates/sim/tests/key_material.rs"));
        assert!(!is_sim_critical_src("crates/bench/src/runner.rs"));
        assert!(!is_sim_critical_src("crates/lint/src/lib.rs"));
    }
}
