//! `banshee_tidy` CLI.
//!
//! ```text
//! cargo tidy                     # all checks, human-readable output
//! cargo tidy -- --only unsafe    # one check
//! cargo tidy -- --json report.json
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/environment error.

use banshee_lint::diag::{CheckId, ALL_CHECKS};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
banshee_tidy — repo-native static analysis for the banshee workspace

USAGE:
    banshee_tidy [OPTIONS]

OPTIONS:
    --only <check>    Run only this check (repeatable). See --list.
    --json <path>     Also write a machine-readable JSON report ('-' for stdout).
    --root <path>     Workspace root (default: nearest [workspace] Cargo.toml).
    --list            List the available checks and exit.
    -h, --help        Show this help.
";

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("banshee_tidy: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut only: Vec<CheckId> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--only" => {
                let name = args.next().ok_or("--only needs a check name")?;
                let check = CheckId::from_name(&name).ok_or_else(|| {
                    format!("unknown check `{name}` — see --list for the catalogue")
                })?;
                if !only.contains(&check) {
                    only.push(check);
                }
            }
            "--json" => {
                json_path = Some(args.next().ok_or("--json needs a path (or '-')")?);
            }
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--list" => {
                for &c in ALL_CHECKS {
                    println!("{:<14} {}", c.name(), c.describe());
                }
                return Ok(true);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            banshee_lint::find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory; use --root")?
        }
    };

    let report = banshee_lint::run(&root, &only).map_err(|e| format!("scanning {}: {e}", root.display()))?;

    for d in &report.diagnostics {
        println!("{d}");
    }
    if let Some(path) = json_path {
        let json = report.to_json();
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }

    let checks = report
        .checks_run
        .iter()
        .map(|c| c.name())
        .collect::<Vec<_>>()
        .join(", ");
    if report.is_clean() {
        eprintln!(
            "tidy: clean — {} files scanned, checks: {checks}",
            report.files_scanned
        );
    } else {
        eprintln!(
            "tidy: {} finding(s) across {} files, checks: {checks}",
            report.diagnostics.len(),
            report.files_scanned
        );
    }
    Ok(report.is_clean())
}
