//! Diagnostics and the machine-readable JSON report.

use std::fmt;

/// Identifier of one tidy check. `--only` takes these names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckId {
    /// `std::collections::{HashMap,HashSet}` in sim-critical crates.
    StdHash,
    /// `Instant::now` / `SystemTime` outside the telemetry/runner/bench
    /// allowlist.
    WallClock,
    /// Every `SimConfig` field keys the result store or is a marked
    /// execution knob.
    KeyMaterial,
    /// Every `unsafe` is preceded by a `// SAFETY:` comment.
    Unsafe,
    /// Revision/format constants, fixtures and the CI guard agree.
    Governance,
}

/// Every check, in the order they run and report.
pub const ALL_CHECKS: &[CheckId] = &[
    CheckId::StdHash,
    CheckId::WallClock,
    CheckId::KeyMaterial,
    CheckId::Unsafe,
    CheckId::Governance,
];

impl CheckId {
    /// The check's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            CheckId::StdHash => "std-hash",
            CheckId::WallClock => "wall-clock",
            CheckId::KeyMaterial => "key-material",
            CheckId::Unsafe => "unsafe",
            CheckId::Governance => "governance",
        }
    }

    /// Parse a CLI name back into a check.
    pub fn from_name(name: &str) -> Option<CheckId> {
        ALL_CHECKS.iter().copied().find(|c| c.name() == name)
    }

    /// One-line description for `--list`.
    pub fn describe(self) -> &'static str {
        match self {
            CheckId::StdHash => {
                "determinism: no std HashMap/HashSet in sim-critical non-test code \
                 (use FnvHashMap/FnvHashSet, or `// tidy: allow(std-hash): <why>`)"
            }
            CheckId::WallClock => {
                "no Instant::now/SystemTime outside telemetry/runner/bench \
                 (or `// tidy: allow(wall-clock): <why>`)"
            }
            CheckId::KeyMaterial => {
                "every SimConfig field flows into cache_key_material (manual Debug) \
                 or carries `// tidy: exec-knob`"
            }
            CheckId::Unsafe => "every `unsafe` is preceded by a `// SAFETY:` comment",
            CheckId::Governance => {
                "MODEL_REVISION/SNAPSHOT_FORMAT documented and fixture-guarded; \
                 Persist section labels unique per function"
            }
        }
    }
}

impl fmt::Display for CheckId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a file:line plus what is wrong and how to fix it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which check fired.
    pub check: CheckId,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description with the expected fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.check, self.message
        )
    }
}

/// The result of one tidy run.
#[derive(Debug)]
pub struct Report {
    /// Checks that ran, in run order.
    pub checks_run: Vec<CheckId>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings sorted by (path, line, check).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no check fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Serialize the report as JSON (std-only, hence hand-rolled).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"checks_run\": [");
        for (i, c) in self.checks_run.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(c.name()));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"diagnostic_count\": {},\n",
            self.diagnostics.len()
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"check\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                json_string(d.check.name()),
                json_string(&d.path),
                d.line,
                json_string(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for &c in ALL_CHECKS {
            assert_eq!(CheckId::from_name(c.name()), Some(c));
        }
        assert_eq!(CheckId::from_name("bogus"), None);
    }

    #[test]
    fn json_report_escapes() {
        let report = Report {
            checks_run: vec![CheckId::StdHash],
            files_scanned: 3,
            diagnostics: vec![Diagnostic {
                check: CheckId::StdHash,
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "say \"no\"\n".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\\\"no\\\"\\n"));
        assert!(json.contains("\"line\": 7"));
    }
}
