//! Workspace source-tree walker.
//!
//! Collects the `.rs` files the tidy checks operate on, rooted at the
//! workspace directory. Skipped subtrees:
//!
//! * `target/` — build output;
//! * `vendor/` — offline stand-ins for crates.io dependencies (not ours to
//!   police, and deliberately written against foreign style rules);
//! * `fixtures/` directories — test data, including this lint's own
//!   known-bad source fixtures, which must never fail the real run;
//! * dot-directories (`.git`, `.github`, …) — the governance check reads
//!   the CI workflow directly rather than through the walker.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIPPED_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// Collect every lintable `.rs` file under `root`, as workspace-relative
/// `/`-separated paths, sorted for deterministic diagnostics.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let abs = root.join(&rel);
        for entry in fs::read_dir(&abs)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let child = if rel.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel.join(&name)
            };
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if name.starts_with('.') || SKIPPED_DIRS.contains(&name.as_str()) {
                    continue;
                }
                stack.push(child);
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(unix_path(&child));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Render a relative path with `/` separators regardless of platform.
pub fn unix_path(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// True for files that are test/bench/example code by location: anything
/// under a `tests/`, `benches/` or `examples/` directory.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|seg| {
        seg == "tests" || seg == "benches" || seg == "examples"
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths() {
        assert!(is_test_path("crates/sim/tests/key_material.rs"));
        assert!(is_test_path("crates/bench/benches/hotpath.rs"));
        assert!(is_test_path("examples/figure4.rs"));
        assert!(!is_test_path("crates/sim/src/system.rs"));
    }
}
