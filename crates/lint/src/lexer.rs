//! A line-aware lexical view of one Rust source file.
//!
//! Every tidy check needs the same three questions answered before it can
//! look at a line: *is this code or a comment/string*, *which comment text
//! (markers live in comments) is attached to this line*, and *is this line
//! inside `#[cfg(test)]` code*. Answering them does not need a parser —
//! only a faithful lexer for the token classes that can hide other tokens:
//! line/block comments (nested), string literals (plain, raw, byte), char
//! literals vs. lifetimes, and attributes. [`SourceFile::parse`] runs that
//! lexer once and exposes:
//!
//! * [`SourceFile::code`] — the source with every comment and string
//!   literal blanked to spaces (newlines preserved), so checks can search
//!   for tokens like `unsafe` or `std::collections::HashMap` without being
//!   fooled by prose;
//! * per-line comment text ([`SourceFile::comment_text`]) for marker
//!   directives (`// tidy: allow(...)`, `// SAFETY:`);
//! * the extracted string literals ([`SourceFile::strings`]) with their
//!   offsets into `code`, so checks can recover e.g. `Persist` section
//!   labels;
//! * a per-line *test* flag: lines belonging to an item annotated
//!   `#[cfg(test)]` (the attribute, the item header and its whole body).
//!
//! The lexer is intentionally forgiving: on malformed input it degrades to
//! treating the rest of the file as whatever state it was in, which for a
//! lint is the right failure mode (rustc reports the real error).

/// One extracted string literal (plain, raw or byte).
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the literal's first quote in [`SourceFile::code`].
    pub offset: usize,
    /// 1-based line the literal starts on.
    pub line: usize,
    /// The literal's content, quotes and raw-string hashes excluded.
    pub text: String,
}

/// The lexical view of one file. See the module docs.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Source with comments and string/char literals blanked to spaces.
    /// Newlines (including those inside comments and strings) are kept, so
    /// offsets into `code` map to real line numbers.
    pub code: String,
    /// Extracted string literals in source order.
    pub strings: Vec<StrLit>,
    /// Per-line accumulated comment text (doc and plain), 0-indexed.
    comments: Vec<String>,
    /// Per-line flag: the line belongs to a `#[cfg(test)]` item.
    test_lines: Vec<bool>,
    /// Byte offset in `code` where each 0-indexed line starts.
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Lex `source` into a [`SourceFile`]. Never fails; see module docs for
    /// the degradation policy on malformed input.
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let chars: Vec<char> = source.chars().collect();
        let n = chars.len();
        let mut code = String::with_capacity(source.len());
        let mut comments: Vec<String> = vec![String::new()];
        let mut strings = Vec::new();
        let mut line = 0usize;
        let mut i = 0usize;

        // Push `c` as blank space into `code`, preserving newlines, and (for
        // comments) also into the current line's comment text.
        macro_rules! blank {
            ($c:expr, $as_comment:expr) => {{
                let c = $c;
                if c == '\n' {
                    code.push('\n');
                    line += 1;
                    comments.push(String::new());
                } else {
                    code.push(' ');
                    if $as_comment {
                        comments[line].push(c);
                    }
                }
            }};
        }

        while i < n {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            let prev_is_ident = i
                .checked_sub(1)
                .map(|p| is_ident_char(chars[p]))
                .unwrap_or(false);
            match c {
                '\n' => {
                    code.push('\n');
                    line += 1;
                    comments.push(String::new());
                    i += 1;
                }
                '/' if next == Some('/') => {
                    while i < n && chars[i] != '\n' {
                        blank!(chars[i], true);
                        i += 1;
                    }
                }
                '/' if next == Some('*') => {
                    let mut depth = 0usize;
                    while i < n {
                        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                            depth += 1;
                            blank!('/', false);
                            blank!('*', false);
                            i += 2;
                        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                            depth -= 1;
                            blank!('*', false);
                            blank!('/', false);
                            i += 2;
                            if depth == 0 {
                                break;
                            }
                        } else {
                            blank!(chars[i], true);
                            i += 1;
                        }
                    }
                }
                '"' => {
                    i = lex_string(&chars, i, 0, false, &mut code, &mut comments, &mut line, &mut strings)
                }
                'r' | 'b' if !prev_is_ident => {
                    // Candidate raw/byte string (r"", r#""#, b"", br"", b'',
                    // rb is not a thing). Work out where the quote is; if
                    // there is none this is a plain identifier.
                    let mut j = i;
                    if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 2;
                    } else if chars[j] == 'b' || chars[j] == 'r' {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let raw = j > i + 1 || chars[i] == 'r' || hashes > 0;
                    if chars.get(j) == Some(&'"') && (raw || chars[i] == 'b') {
                        // Blank the prefix (r/b/br and hashes) then the body.
                        while i < j {
                            blank!(chars[i], false);
                            i += 1;
                        }
                        let hashes = if raw { hashes } else { 0 };
                        i = lex_string(&chars, i, hashes, raw, &mut code, &mut comments, &mut line, &mut strings);
                    } else if chars[i] == 'b' && chars.get(i + 1) == Some(&'\'') {
                        blank!('b', false);
                        i += 1; // fall through to the char-literal arm next loop
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal or lifetime. A literal is '\...' or 'X'
                    // with a closing quote right after one character.
                    let is_char_lit = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_lit {
                        blank!('\'', false);
                        i += 1;
                        if chars.get(i) == Some(&'\\') {
                            blank!('\\', false);
                            i += 1;
                            // Escape payload: consume up to the closing quote.
                            while i < n && chars[i] != '\'' {
                                blank!(chars[i], false);
                                i += 1;
                            }
                        } else if i < n {
                            blank!(chars[i], false);
                            i += 1;
                        }
                        if i < n {
                            blank!('\'', false);
                            i += 1;
                        }
                    } else {
                        // Lifetime: keep the tick so `code` stays honest.
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            }
        }

        let line_starts = std::iter::once(0)
            .chain(code.char_indices().filter(|(_, c)| *c == '\n').map(|(o, _)| o + 1))
            .collect::<Vec<_>>();
        let test_lines = compute_test_lines(&code, comments.len());
        SourceFile {
            rel_path: rel_path.to_string(),
            code,
            strings,
            comments,
            test_lines,
            line_starts,
        }
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.comments.len()
    }

    /// 1-based line containing byte `offset` of [`SourceFile::code`].
    pub fn line_of_offset(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// Comment text accumulated on 1-based `line` (empty if none).
    pub fn comment_text(&self, line: usize) -> &str {
        self.comments
            .get(line.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// True when 1-based `line` belongs to a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// The comment-and-string-blanked text of 1-based `line`.
    pub fn code_line(&self, line: usize) -> &str {
        let start = match self.line_starts.get(line.wrapping_sub(1)) {
            Some(&s) => s,
            None => return "",
        };
        let end = self
            .line_starts
            .get(line)
            .map(|&e| e.saturating_sub(1)) // exclude the newline
            .unwrap_or(self.code.len());
        &self.code[start..end]
    }

    /// True when `line` carries no code: only blank space, a comment, or an
    /// attribute (`#[...]` / `#![...]`).
    pub fn line_is_passive(&self, line: usize) -> bool {
        let code = self.code_line(line).trim();
        code.is_empty() || code.starts_with('#')
    }
}

/// Lex one string literal starting at the opening quote `chars[i]`, with
/// `hashes` trailing `#` for raw strings. Returns the index past the close.
#[allow(clippy::too_many_arguments)]
fn lex_string(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    raw: bool,
    code: &mut String,
    comments: &mut Vec<String>,
    line: &mut usize,
    strings: &mut Vec<StrLit>,
) -> usize {
    let n = chars.len();
    let offset = code.len();
    let start_line = *line + 1;
    let mut text = String::new();
    // Opening quote.
    code.push(' ');
    i += 1;
    while i < n {
        let c = chars[i];
        if c == '\\' && !raw {
            // Escape: consume the backslash and the next char.
            code.push(' ');
            i += 1;
            if i < n {
                if chars[i] == '\n' {
                    code.push('\n');
                    *line += 1;
                    comments.push(String::new());
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            continue;
        }
        if c == '"' {
            // Closing candidate: for raw strings the quote must be followed
            // by `hashes` hash marks.
            let closes = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
            if closes {
                code.push(' ');
                i += 1;
                for _ in 0..hashes {
                    code.push(' ');
                    i += 1;
                }
                break;
            }
        }
        if c == '\n' {
            code.push('\n');
            *line += 1;
            comments.push(String::new());
        } else {
            code.push(' ');
        }
        text.push(c);
        i += 1;
    }
    strings.push(StrLit {
        offset,
        line: start_line,
        text,
    });
    i
}

/// True for characters that can appear in an identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mark every line belonging to a `#[cfg(test)]`-annotated item (attribute
/// lines, the item header, and the item body through its closing brace).
/// `#![cfg(test)]` (inner attribute) marks the whole file.
fn compute_test_lines(code: &str, n_lines: usize) -> Vec<bool> {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    let mut flags = vec![false; n_lines];
    let mut line = 0usize;
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c != '#' {
            i += 1;
            continue;
        }
        // Attribute?
        let mut j = i + 1;
        let inner = chars.get(j) == Some(&'!');
        if inner {
            j += 1;
        }
        if chars.get(j) != Some(&'[') {
            i += 1;
            continue;
        }
        // Collect the bracket group (attrs can nest brackets).
        let attr_start_line = line;
        let mut depth = 0usize;
        let mut content = String::new();
        let mut attr_lines = 0usize;
        while j < n {
            let a = chars[j];
            if a == '\n' {
                attr_lines += 1;
            }
            if a == '[' {
                depth += 1;
            } else if a == ']' {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if depth >= 1 && a != '[' {
                content.push(a);
            }
            j += 1;
        }
        let normalized: String = content.chars().filter(|c| !c.is_whitespace()).collect();
        if !is_test_cfg(&normalized) {
            line += attr_lines;
            i = j + 1;
            continue;
        }
        if inner {
            for f in flags.iter_mut() {
                *f = true;
            }
            return flags;
        }
        // Find the annotated item: skip whitespace and further attributes,
        // then scan to the item body `{ ... }` (or a `;` for bodiless items).
        line += attr_lines;
        i = j + 1;
        let mut k = i;
        let mut kline = line;
        // Skip whitespace and subsequent attribute groups.
        loop {
            while k < n && chars[k].is_whitespace() {
                if chars[k] == '\n' {
                    kline += 1;
                }
                k += 1;
            }
            if chars.get(k) == Some(&'#') {
                let mut depth = 0usize;
                while k < n {
                    let a = chars[k];
                    if a == '\n' {
                        kline += 1;
                    }
                    if a == '[' {
                        depth += 1;
                    } else if a == ']' {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
            } else {
                break;
            }
        }
        // Scan for the body-opening brace or a terminating semicolon.
        let mut end_line = kline;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < n {
            let a = chars[k];
            if a == '\n' {
                end_line += 1;
            } else if a == '{' {
                brace_depth += 1;
                entered = true;
            } else if a == '}' {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    break;
                }
            } else if a == ';' && !entered {
                break;
            }
            k += 1;
        }
        for f in flags
            .iter_mut()
            .take((end_line + 1).min(n_lines))
            .skip(attr_start_line)
        {
            *f = true;
        }
        line = end_line;
        i = k + 1;
        // Re-count: `line` tracked manually above; resync by recounting is
        // unnecessary because end_line counted every newline we passed.
    }
    flags
}

/// Does a whitespace-stripped attribute body gate on `test`?
/// Matches `cfg(test)`, `cfg(all(test, ...))`, `cfg(any(..., test))`, and
/// `cfg_attr(test, ...)`.
fn is_test_cfg(normalized: &str) -> bool {
    if !(normalized.starts_with("cfg(") || normalized.starts_with("cfg_attr(")) {
        return false;
    }
    let bytes = normalized.as_bytes();
    let ident_byte = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80;
    let mut start = 0;
    while let Some(p) = normalized[start..].find("test") {
        let pos = start + p;
        let before_ok = pos == 0 || !ident_byte(bytes[pos - 1]);
        let after_ok = bytes.get(pos + 4).map(|&b| !ident_byte(b)).unwrap_or(true);
        if before_ok && after_ok {
            return true;
        }
        start = pos + 4;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = \"std::collections::HashMap\"; // HashMap here\nlet b = 1;\n",
        );
        assert!(!f.code.contains("HashMap"));
        assert!(f.comment_text(1).contains("HashMap here"));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].text, "std::collections::HashMap");
        assert_eq!(f.strings[0].line, 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = r#\"raw \"quoted\" text\"#; let b = b\"bytes\"; let c = br#\"x\"#;",
        );
        assert_eq!(f.strings.len(), 3);
        assert_eq!(f.strings[0].text, "raw \"quoted\" text");
        assert_eq!(f.strings[1].text, "bytes");
        assert_eq!(f.strings[2].text, "x");
        assert!(!f.code.contains("raw"));
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let f = SourceFile::parse(
            "x.rs",
            "fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; let e = '_'; }",
        );
        // The brace char literal must not unbalance brace tracking.
        assert!(!f.code.contains("'{'"));
        assert!(f.code.contains("'a"));
        // '_' is a char literal, not a lifetime.
        assert!(!f.code.contains("'_'"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let f = SourceFile::parse("x.rs", "let a = \"one\ntwo\nthree\";\nlet done = 4;\n");
        assert_eq!(f.line_count(), 5);
        assert!(f.code_line(4).contains("done"));
        assert_eq!(f.strings[0].text, "one\ntwo\nthree");
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::parse("x.rs", "/* outer /* inner */ still comment */ let x = 1;");
        assert!(f.code.contains("let x"));
        assert!(!f.code.contains("outer"));
        assert!(f.comment_text(1).contains("inner"));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "\
use std::fmt;

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {}
}

fn real() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3), "attribute line");
        assert!(f.is_test_line(5), "body line");
        assert!(f.is_test_line(8), "closing brace");
        assert!(!f.is_test_line(10), "code after the test mod");
    }

    #[test]
    fn cfg_test_with_stacked_attributes_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { body(); }\n\n#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(1) && f.is_test_line(2) && f.is_test_line(3));
        assert!(f.is_test_line(5) && f.is_test_line(6));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn cfg_all_test_is_test_but_feature_test_name_is_not() {
        let f = SourceFile::parse("x.rs", "#[cfg(all(test, feature = \"x\"))]\nfn a() {}\n");
        assert!(f.is_test_line(2));
        let g = SourceFile::parse("x.rs", "#[cfg(feature = \"testing\")]\nfn a() {}\n");
        assert!(!g.is_test_line(2));
    }

    #[test]
    fn passive_lines() {
        let f = SourceFile::parse("x.rs", "// comment\n#[derive(Debug)]\nstruct S;\n\n");
        assert!(f.line_is_passive(1));
        assert!(f.line_is_passive(2));
        assert!(!f.line_is_passive(3));
        assert!(f.line_is_passive(4));
    }
}
