//! Clean fixture: fully governed config.

pub struct SimConfig {
    pub cores: usize,
    pub seed: u64,
    // tidy: exec-knob
    pub shards: usize,
}

/// Revision history:
/// 1. initial model.
pub const MODEL_REVISION: u32 = 1;

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let SimConfig { cores, seed, shards: _ } = self;
        f.debug_struct("SimConfig")
            .field("cores", cores)
            .field("seed", seed)
            .finish()
    }
}

impl SimConfig {
    pub fn cache_key_material(&self) -> String {
        format!("model-rev={}|{:?}", MODEL_REVISION, self)
    }

    pub fn warmup_key_material(&self) -> String {
        self.cache_key_material()
    }
}
