//! Clean fixture: markers and SAFETY comments used correctly.

// tidy: allow(std-hash): fixture exercising a justified exception
use std::collections::HashMap;

pub fn lookup() -> HashMap<u64, u64> {
    HashMap::new()
}

// SAFETY: the caller guarantees `p` is valid and exclusively owned.
pub unsafe fn grow(p: *mut u64) {
    // SAFETY: `p` is valid per this function's contract.
    unsafe { *p += 1 };
}

#[cfg(test)]
mod tests {
    #[test]
    fn std_hash_and_wall_clock_are_fine_in_tests() {
        let _ = std::collections::HashSet::<u64>::new();
        let _ = std::time::Instant::now();
    }
}
