//! Clean fixture: documented format, per-function-unique section labels.

/// Format 1: initial encoding.
pub const SNAPSHOT_FORMAT: u32 = 1;

pub struct Writer;

impl Writer {
    pub fn section(&mut self, _label: &str) {}

    pub fn save(&mut self) {
        self.section("cores");
        self.section("dram");
    }

    pub fn load(&mut self) {
        self.section("cores");
    }
}
