//! Known-bad fixture: std-hash, wall-clock and unsafe violations.
use std::collections::HashMap;
use std::time::Instant;

pub fn lookup() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn stamp() -> Instant {
    Instant::now()
}

// tidy: allow(std-hash)
pub type Bad = std::collections::HashSet<u64>;

pub unsafe fn grow(p: *mut u64) {
    unsafe { *p += 1 };
}
