//! Known-bad fixture: key-material and governance violations.

pub struct SimConfig {
    pub cores: usize,
    pub seed: u64,
    // tidy: exec-knob
    pub shards: usize,
}

/// Revision history:
/// 1. initial model;
/// 2. second revision.
pub const MODEL_REVISION: u32 = 3;

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let SimConfig { cores, seed: _, shards } = self;
        f.debug_struct("SimConfig")
            .field("cores", cores)
            .field("shards", shards)
            .field("typo_field", cores)
            .finish()
    }
}

impl SimConfig {
    pub fn cache_key_material(&self) -> String {
        format!("model-rev={}|{:?}", MODEL_REVISION, self)
    }
}
