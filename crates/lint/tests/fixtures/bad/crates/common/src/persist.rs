//! Known-bad fixture: snapshot-format and section-label violations.

pub const SNAPSHOT_FORMAT: u32 = 9;

pub struct Writer;

impl Writer {
    pub fn section(&mut self, _label: &str) {}

    pub fn save(&mut self) {
        self.section("cores");
        self.section("dram");
        self.section("cores");
    }
}
