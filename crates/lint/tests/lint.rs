//! End-to-end tests for `banshee_tidy`: every check fires on the known-bad
//! fixture tree at the expected file:line, the clean fixture tree passes,
//! and — the point of the whole exercise — the real workspace is clean.

use banshee_lint::diag::CheckId;
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

/// (check, path, line) triples for a run, sorted.
fn findings(root: &Path, only: &[CheckId]) -> Vec<(String, String, usize)> {
    let report = banshee_lint::run(root, only).expect("scan fixture tree");
    report
        .diagnostics
        .iter()
        .map(|d| (d.check.name().to_string(), d.path.clone(), d.line))
        .collect()
}

fn triple(check: &str, path: &str, line: usize) -> (String, String, usize) {
    (check.to_string(), path.to_string(), line)
}

#[test]
fn bad_tree_fires_every_check_at_the_expected_lines() {
    let got = findings(&fixture_root("bad"), &[]);
    let want = vec![
        // .github/workflows/ci.yml forgot the golden results fixture.
        triple("governance", ".github/workflows/ci.yml", 0),
        // persist.rs: SNAPSHOT_FORMAT bumped without a `Format 9:` doc line.
        triple("governance", "crates/common/src/persist.rs", 3),
        // persist.rs: `save` frames two sections with the same label.
        triple("governance", "crates/common/src/persist.rs", 13),
        // config.rs: the file-level finding for the missing warmup fn.
        triple("key-material", "crates/sim/src/config.rs", 1),
        // config.rs: `seed` neither keyed nor marked exec-knob.
        triple("key-material", "crates/sim/src/config.rs", 5),
        // config.rs: `shards` marked exec-knob but still keyed.
        triple("key-material", "crates/sim/src/config.rs", 7),
        // config.rs: MODEL_REVISION = 3 with no `3.` history entry.
        triple("governance", "crates/sim/src/config.rs", 13),
        // config.rs: Debug keys `typo_field`, which is not a field.
        triple("key-material", "crates/sim/src/config.rs", 21),
        // lib.rs: std HashMap import in sim-critical code.
        triple("std-hash", "crates/sim/src/lib.rs", 2),
        // lib.rs: Instant::now outside the allowlist.
        triple("wall-clock", "crates/sim/src/lib.rs", 10),
        // lib.rs: allow(std-hash) marker with no justification.
        triple("std-hash", "crates/sim/src/lib.rs", 13),
        // lib.rs: unsafe fn and unsafe block, both without SAFETY comments.
        triple("unsafe", "crates/sim/src/lib.rs", 16),
        triple("unsafe", "crates/sim/src/lib.rs", 17),
        // the committed fixture pins revision 2, the constant says 3.
        triple(
            "governance",
            "crates/sim/tests/fixtures/cache_key_material.txt",
            1,
        ),
    ];
    assert_eq!(got, want, "bad-tree findings diverged");
}

#[test]
fn only_filter_restricts_the_run() {
    let got = findings(&fixture_root("bad"), &[CheckId::Unsafe]);
    assert_eq!(
        got,
        vec![
            triple("unsafe", "crates/sim/src/lib.rs", 16),
            triple("unsafe", "crates/sim/src/lib.rs", 17),
        ]
    );
}

#[test]
fn clean_tree_is_clean() {
    let got = findings(&fixture_root("clean"), &[]);
    assert!(got.is_empty(), "clean fixture tree should pass: {got:?}");
}

#[test]
fn real_workspace_is_clean() {
    let report = banshee_lint::run(&workspace_root(), &[]).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "workspace walk looks wrong: only {} files",
        report.files_scanned
    );
    let msgs: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.is_clean(),
        "the real tree must stay tidy-clean:\n{}",
        msgs.join("\n")
    );
}

#[test]
fn cli_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_banshee_tidy");

    let bad = std::process::Command::new(bin)
        .args(["--root"])
        .arg(fixture_root("bad"))
        .args(["--json", "-"])
        .output()
        .expect("run banshee_tidy");
    assert_eq!(bad.status.code(), Some(1), "findings must exit 1");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("\"diagnostic_count\": 14"), "{stdout}");
    assert!(stdout.contains("crates/sim/src/lib.rs:2: [std-hash]"), "{stdout}");

    let clean = std::process::Command::new(bin)
        .args(["--root"])
        .arg(fixture_root("clean"))
        .output()
        .expect("run banshee_tidy");
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");

    let usage = std::process::Command::new(bin)
        .args(["--only", "not-a-check"])
        .output()
        .expect("run banshee_tidy");
    assert_eq!(usage.status.code(), Some(2), "bad usage must exit 2");
}
