//! Lazy PTE/TLB coherence (Section 3.4).
//!
//! When a tag buffer reaches its fill threshold, hardware interrupts a core;
//! the interrupt handler reads every tag-buffer entry (they are
//! memory-mapped), finds the PTEs for each physical page through the OS's
//! reverse mapping, updates the cached/way bits, issues one system-wide TLB
//! shootdown, and finally tells the tag buffers to clear their remap bits.
//!
//! The costs come from Table 3: the software routine is charged 20 µs on one
//! (randomly chosen) core, the shootdown initiator pays 4 µs and every other
//! core pays 1 µs. [`LazyCoherence`] converts a drained set of tag-buffer
//! entries into the [`SideEffect`] list the system simulator applies, and
//! keeps the counters reported in the paper (flushes happen roughly every
//! 14 ms with the default replacement policy — Section 5.5.2).

use crate::config::BansheeConfig;
use crate::tag_buffer::TagBufferEntry;
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::Cycle;
use banshee_dcache::SideEffect;

/// Cycle costs of one coherence round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceCosts {
    /// Software routine cost on the interrupted core.
    pub flush_handler: Cycle,
    /// Shootdown cost on the initiating core.
    pub shootdown_initiator: Cycle,
    /// Shootdown cost on each other core.
    pub shootdown_slave: Cycle,
}

/// The lazy-coherence mechanism: turns tag-buffer drains into OS side
/// effects and tracks how often they happen.
#[derive(Debug, Clone)]
pub struct LazyCoherence {
    costs: CoherenceCosts,
    flushes: u64,
    pte_updates: u64,
    last_flush_cycle: Cycle,
    flush_interval_sum: u64,
}

impl LazyCoherence {
    /// Build from the Banshee configuration (costs converted to CPU cycles).
    pub fn new(config: &BansheeConfig) -> Self {
        let clk = config.cpu_clock;
        LazyCoherence {
            costs: CoherenceCosts {
                flush_handler: clk.cycles_in_us(config.tag_buffer_flush_us),
                shootdown_initiator: clk.cycles_in_us(config.shootdown_initiator_us),
                shootdown_slave: clk.cycles_in_us(config.shootdown_slave_us),
            },
            flushes: 0,
            pte_updates: 0,
            last_flush_cycle: 0,
            flush_interval_sum: 0,
        }
    }

    /// The per-round costs in cycles.
    pub fn costs(&self) -> CoherenceCosts {
        self.costs
    }

    /// Number of coherence rounds (tag-buffer flushes) so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Total PTE mapping updates pushed to the page table.
    pub fn pte_updates(&self) -> u64 {
        self.pte_updates
    }

    /// Mean cycles between flushes (0 before the second flush). The paper
    /// reports ~14 ms with the default policy.
    pub fn mean_flush_interval(&self) -> f64 {
        if self.flushes <= 1 {
            0.0
        } else {
            self.flush_interval_sum as f64 / (self.flushes - 1) as f64
        }
    }

    /// Build the side effects of one coherence round over the drained
    /// entries of all tag buffers.
    pub fn flush(&mut self, drained: Vec<TagBufferEntry>, now: Cycle) -> Vec<SideEffect> {
        if self.flushes > 0 {
            self.flush_interval_sum += now.saturating_sub(self.last_flush_cycle);
        }
        self.last_flush_cycle = now;
        self.flushes += 1;
        self.pte_updates += drained.len() as u64;

        let updates = drained.into_iter().map(|e| (e.page, e.info)).collect();
        // The system simulator charges the handler cost when it applies the
        // page-table update and the per-core shootdown costs when it flushes
        // the TLBs, so the side effects themselves carry no explicit cycle
        // charge here (this also lets Table 5 sweep the update cost without
        // rebuilding the controller).
        vec![
            SideEffect::UpdatePageTable { updates },
            SideEffect::TlbShootdown,
        ]
    }
}

impl Persist for LazyCoherence {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.costs.flush_handler);
        w.u64(self.costs.shootdown_initiator);
        w.u64(self.costs.shootdown_slave);
        w.u64(self.flushes);
        w.u64(self.pte_updates);
        w.u64(self.last_flush_cycle);
        w.u64(self.flush_interval_sum);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(LazyCoherence {
            costs: CoherenceCosts {
                flush_handler: r.u64()?,
                shootdown_initiator: r.u64()?,
                shootdown_slave: r.u64()?,
            },
            flushes: r.u64()?,
            pte_updates: r.u64()?,
            last_flush_cycle: r.u64()?,
            flush_interval_sum: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::PageNum;
    use banshee_memhier::PteMapInfo;

    fn entries(n: u64) -> Vec<TagBufferEntry> {
        (0..n)
            .map(|i| TagBufferEntry {
                page: PageNum::new(i),
                info: PteMapInfo::cached_in(1),
                remap: true,
            })
            .collect()
    }

    #[test]
    fn costs_match_table3() {
        let c = LazyCoherence::new(&BansheeConfig::paper_default());
        // 20 µs at 2.7 GHz = 54,000 cycles; 4 µs = 10,800; 1 µs = 2,700.
        assert_eq!(c.costs().flush_handler, 54_000);
        assert_eq!(c.costs().shootdown_initiator, 10_800);
        assert_eq!(c.costs().shootdown_slave, 2_700);
    }

    #[test]
    fn flush_produces_update_and_shootdown() {
        let mut c = LazyCoherence::new(&BansheeConfig::paper_default());
        let effects = c.flush(entries(5), 1000);
        assert_eq!(effects.len(), 2);
        assert!(
            matches!(&effects[0], SideEffect::UpdatePageTable { updates } if updates.len() == 5)
        );
        assert!(matches!(effects[1], SideEffect::TlbShootdown));
        assert_eq!(c.flushes(), 1);
        assert_eq!(c.pte_updates(), 5);
    }

    #[test]
    fn flush_interval_tracking() {
        let mut c = LazyCoherence::new(&BansheeConfig::paper_default());
        c.flush(entries(1), 1_000_000);
        assert_eq!(c.mean_flush_interval(), 0.0);
        c.flush(entries(1), 3_000_000);
        c.flush(entries(1), 5_000_000);
        assert!((c.mean_flush_interval() - 2_000_000.0).abs() < 1e-6);
        assert_eq!(c.flushes(), 3);
    }
}
