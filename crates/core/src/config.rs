//! Banshee configuration (the paper's Table 3, plus scaling knobs).

use banshee_common::{CyclesPerSec, MemSize, PAGE_SIZE};
use banshee_dcache::DCacheConfig;
use serde::{Deserialize, Serialize};

/// All Banshee tuning parameters. Defaults reproduce Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BansheeConfig {
    /// In-package DRAM capacity used as the cache.
    pub capacity: MemSize,
    /// DRAM cache associativity (4 in the paper; Table 6 sweeps 1–8).
    pub ways: usize,
    /// Caching granularity in bytes: 4 KiB for regular pages, 2 MiB when the
    /// controller is instantiated for large pages (Section 4.3).
    pub page_bytes: u64,
    /// Number of memory controllers; each gets its own tag buffer.
    pub memory_controllers: usize,

    // ---- Tag buffer (Section 3.3 / Table 3) ----
    /// Entries per tag buffer (1024).
    pub tag_buffer_entries: usize,
    /// Tag buffer associativity (8).
    pub tag_buffer_ways: usize,
    /// Occupancy fraction of *remap* entries at which the software update is
    /// triggered (0.7).
    pub tag_buffer_flush_threshold: f64,
    /// Cost of the software routine that drains tag buffers into the page
    /// table, in microseconds (20 µs).
    pub tag_buffer_flush_us: f64,
    /// TLB shootdown cost for the initiating core, in microseconds (4 µs).
    pub shootdown_initiator_us: f64,
    /// TLB shootdown cost for every other core, in microseconds (1 µs).
    pub shootdown_slave_us: f64,

    // ---- Replacement policy (Section 4.2 / Table 3) ----
    /// Width of each frequency counter in bits (5).
    pub counter_bits: u32,
    /// Number of cached-page entries tracked per set (equals `ways`).
    pub cached_entries_per_set: usize,
    /// Number of candidate-page entries tracked per set (5).
    pub candidate_entries_per_set: usize,
    /// Sampling coefficient: the counter-update sample rate is
    /// `recent_miss_rate × sampling_coefficient` (0.1 for 4 KiB pages,
    /// 0.001 recommended for 2 MiB pages).
    pub sampling_coefficient: f64,
    /// Replacement threshold override. `None` uses the paper's default of
    /// `lines_per_page × sampling_coefficient / 2` (Section 4.2.2).
    pub replacement_threshold: Option<f64>,

    /// CPU clock used to convert the microsecond costs above into cycles.
    pub cpu_clock: CyclesPerSec,
}

impl BansheeConfig {
    /// The paper's default configuration (Table 3) at full 1 GB capacity.
    pub fn paper_default() -> Self {
        BansheeConfig {
            capacity: MemSize::gib(1),
            ways: 4,
            page_bytes: PAGE_SIZE,
            memory_controllers: 4,
            tag_buffer_entries: 1024,
            tag_buffer_ways: 8,
            tag_buffer_flush_threshold: 0.7,
            tag_buffer_flush_us: 20.0,
            shootdown_initiator_us: 4.0,
            shootdown_slave_us: 1.0,
            counter_bits: 5,
            cached_entries_per_set: 4,
            candidate_entries_per_set: 5,
            sampling_coefficient: 0.1,
            replacement_threshold: None,
            cpu_clock: CyclesPerSec::ghz(2.7),
        }
    }

    /// Build from the shared DRAM-cache geometry (capacity, ways, MCs),
    /// keeping Banshee-specific defaults.
    pub fn from_dcache(config: &DCacheConfig) -> Self {
        BansheeConfig {
            capacity: config.capacity,
            ways: config.ways,
            cached_entries_per_set: config.ways,
            memory_controllers: config.memory_controllers,
            ..Self::paper_default()
        }
    }

    /// Switch the configuration to 2 MiB large-page caching (Section 5.4.1):
    /// the caching granularity becomes 2 MiB and the sampling coefficient
    /// drops to 0.001 so counters do not saturate.
    pub fn for_large_pages(mut self) -> Self {
        self.page_bytes = banshee_common::LARGE_PAGE_SIZE;
        self.sampling_coefficient = 0.001;
        self
    }

    /// Number of cache lines per caching unit (64 for 4 KiB pages, 32768 for
    /// 2 MiB pages).
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes / banshee_common::CACHE_LINE_SIZE
    }

    /// Number of page frames the cache holds at this granularity.
    pub fn capacity_pages(&self) -> u64 {
        (self.capacity.as_bytes() / self.page_bytes).max(1)
    }

    /// Number of sets (capacity pages / ways).
    pub fn sets(&self) -> u64 {
        (self.capacity_pages() / self.ways as u64).max(1)
    }

    /// Maximum frequency-counter value (2^bits - 1; 31 for 5-bit counters).
    pub fn max_count(&self) -> u32 {
        (1u32 << self.counter_bits) - 1
    }

    /// The replacement threshold of Section 4.2.2:
    /// `page_size (in lines) × sampling_coefficient / 2` unless overridden.
    pub fn threshold(&self) -> f64 {
        self.replacement_threshold
            .unwrap_or(self.lines_per_page() as f64 * self.sampling_coefficient / 2.0)
    }

    // The three per-access address helpers below inline the power-of-two
    // mask/shift specialization instead of storing a `FastDivMod`: this
    // struct's derived `Debug` form is part of `SimConfig`'s store key
    // material, so adding precomputed fields would invalidate every
    // persisted result. The arithmetic is identical either way.

    /// Convert the caching-unit number of an address (page number for 4 KiB
    /// granularity, large-page number for 2 MiB granularity). Runs on every
    /// controller access, so the (always power-of-two) granularity divides
    /// by shift.
    #[inline]
    pub fn unit_of(&self, addr: banshee_common::Addr) -> u64 {
        if self.page_bytes.is_power_of_two() {
            addr.raw() >> self.page_bytes.trailing_zeros()
        } else {
            addr.raw() / self.page_bytes
        }
    }

    /// Byte offset of an address within its caching unit.
    #[inline]
    pub fn unit_offset(&self, addr: banshee_common::Addr) -> u64 {
        if self.page_bytes.is_power_of_two() {
            addr.raw() & (self.page_bytes - 1)
        } else {
            addr.raw() % self.page_bytes
        }
    }

    /// The memory controller an address maps to (static page-granularity
    /// interleaving, Section 2).
    #[inline]
    pub fn mc_of(&self, unit: u64) -> usize {
        let n = self.memory_controllers as u64;
        if n.is_power_of_two() {
            (unit & (n - 1)) as usize
        } else {
            (unit % n) as usize
        }
    }
}

impl Default for BansheeConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let c = BansheeConfig::paper_default();
        assert_eq!(c.ways, 4);
        assert_eq!(c.tag_buffer_entries, 1024);
        assert_eq!(c.tag_buffer_ways, 8);
        assert!((c.tag_buffer_flush_threshold - 0.7).abs() < 1e-12);
        assert_eq!(c.counter_bits, 5);
        assert_eq!(c.max_count(), 31);
        assert_eq!(c.cached_entries_per_set, 4);
        assert_eq!(c.candidate_entries_per_set, 5);
        assert!((c.sampling_coefficient - 0.1).abs() < 1e-12);
    }

    #[test]
    fn default_threshold_matches_section_4_2_2() {
        let c = BansheeConfig::paper_default();
        // 64 lines × 0.1 / 2 = 3.2
        assert!((c.threshold() - 3.2).abs() < 1e-9);
        let override_cfg = BansheeConfig {
            replacement_threshold: Some(7.0),
            ..c
        };
        assert!((override_cfg.threshold() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn geometry_at_paper_scale() {
        let c = BansheeConfig::paper_default();
        assert_eq!(c.capacity_pages(), 262_144);
        assert_eq!(c.sets(), 65_536);
        assert_eq!(c.lines_per_page(), 64);
    }

    #[test]
    fn large_page_mode() {
        let c = BansheeConfig::paper_default().for_large_pages();
        assert_eq!(c.page_bytes, 2 * 1024 * 1024);
        assert_eq!(c.lines_per_page(), 32_768);
        assert_eq!(c.capacity_pages(), 512);
        assert!((c.sampling_coefficient - 0.001).abs() < 1e-12);
        // Threshold scales with the larger page: 32768 × 0.001 / 2 = 16.384.
        assert!((c.threshold() - 16.384).abs() < 1e-9);
    }

    #[test]
    fn unit_and_mc_mapping() {
        let c = BansheeConfig::paper_default();
        assert_eq!(c.unit_of(banshee_common::Addr::new(4096 * 5 + 17)), 5);
        assert_eq!(c.mc_of(5), 1);
        assert_eq!(c.mc_of(8), 0);
        let lp = BansheeConfig::paper_default().for_large_pages();
        assert_eq!(
            lp.unit_of(banshee_common::Addr::new(2 * 1024 * 1024 * 3)),
            3
        );
    }

    #[test]
    fn from_dcache_inherits_geometry() {
        let d = DCacheConfig::scaled(MemSize::mib(64));
        let c = BansheeConfig::from_dcache(&d);
        assert_eq!(c.capacity, MemSize::mib(64));
        assert_eq!(c.ways, 4);
        assert_eq!(c.cached_entries_per_set, 4);
    }
}
