//! **Banshee**: the bandwidth-efficient DRAM cache design of Yu et al.
//! (MICRO 2017), implemented as a [`DramCacheController`].
//!
//! Banshee's two key ideas, and where they live in this crate:
//!
//! 1. **Tag accesses are eliminated from the common case** by tracking DRAM
//!    cache residency in the page tables and TLBs (a *cached* bit plus *way*
//!    bits per PTE — `banshee_memhier::PteMapInfo`), while keeping the page's
//!    physical address unchanged so there is no address-consistency problem.
//!    The hardware piece that makes this work with *lazy* TLB coherence is
//!    the per-memory-controller [`TagBuffer`](tag_buffer::TagBuffer)
//!    (Section 3.3): it holds the mappings of recently remapped pages, so
//!    stale TLB hints are harmlessly overridden at the memory controller, and
//!    PTE updates + TLB shootdowns happen only in batches when the buffer
//!    fills (Section 3.4), modelled by [`coherence`].
//!
//! 2. **Replacement traffic is minimized** by a bandwidth-aware,
//!    frequency-based replacement policy (Section 4): per-set frequency
//!    counters stored in the in-package DRAM ([`metadata`], Figure 3),
//!    updated only for a *sampled* fraction of accesses (the sample rate
//!    adapts as miss-rate × sampling-coefficient), and a replacement
//!    threshold that ensures a page is only brought in when it has been
//!    accessed enough to amortize the cost of moving it ([`fbr`],
//!    Algorithm 1).
//!
//! The [`BansheeController`](controller::BansheeController) composes these
//! pieces; [`BansheeVariant`](controller::BansheeVariant) additionally
//! provides the two ablations of Figure 7 (LRU replacement and FBR without
//! sampling), and large (2 MiB) pages are supported by instantiating the
//! controller with a large-page geometry (Section 4.3 / 5.4.1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coherence;
pub mod config;
pub mod controller;
pub mod fbr;
pub mod metadata;
pub mod tag_buffer;

pub use banshee_dcache::DramCacheController;
pub use coherence::{CoherenceCosts, LazyCoherence};
pub use config::BansheeConfig;
pub use controller::{BansheeController, BansheeVariant};
pub use fbr::{FbrDecision, FrequencyReplacement};
pub use metadata::{CacheSetMetadata, MetadataEntry, MetadataTable};
pub use tag_buffer::{InsertOutcome, TagBuffer, TagBufferEntry};
