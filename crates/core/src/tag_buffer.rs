//! The Tag Buffer (Section 3.3, Figure 2): a small set-associative SRAM
//! structure in each memory controller that holds the mapping information of
//! recently remapped pages that is not yet reflected in the page tables.
//!
//! Entry format (Figure 2): physical address (tag), cached bit, way bits,
//! valid bit, remap bit.
//!
//! Invariants maintained here, straight from the paper:
//!
//! * Entries with `remap = 1` hold mappings the page table does **not** know
//!   about yet; they may never be evicted — only a software flush (which
//!   pushes them to the PTEs and clears the remap bit) releases them.
//! * Entries with `remap = 0` duplicate what the page table already says.
//!   They exist only to spare DRAM tag probes for LLC dirty evictions and are
//!   evicted with LRU (the "LRU among entries with remap unset" policy).
//! * When the fraction of remap entries reaches the flush threshold (70% in
//!   Table 3), hardware raises the "tag buffer full" interrupt — surfaced to
//!   the caller through [`TagBuffer::needs_flush`] or the
//!   [`InsertOutcome::ThresholdReached`] return value.

use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{FastDivMod, PageNum};
use banshee_memhier::PteMapInfo;

/// One tag buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagBufferEntry {
    /// Physical page this entry describes.
    pub page: PageNum,
    /// The up-to-date DRAM-cache mapping for the page.
    pub info: PteMapInfo,
    /// Whether this mapping still needs to be pushed to the page table.
    pub remap: bool,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    valid: bool,
    remap: bool,
    page: PageNum,
    info: PteMapInfo,
    touched: u64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot {
            valid: false,
            remap: false,
            page: PageNum::new(0),
            info: PteMapInfo::NOT_CACHED,
            touched: 0,
        }
    }
}

/// What happened when inserting a remap entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry was stored and the buffer is still below its flush
    /// threshold.
    Stored,
    /// The entry was stored and the remap occupancy has now reached the
    /// flush threshold — software should drain the buffer soon.
    ThresholdReached,
    /// The entry could not be stored because its set is full of
    /// not-yet-flushed remap entries; the caller must flush immediately and
    /// retry (hardware would stall replacement until the flush completes).
    SetFull,
}

/// The per-memory-controller tag buffer.
#[derive(Debug, Clone)]
pub struct TagBuffer {
    sets: Vec<Vec<Slot>>,
    ways: usize,
    set_div: FastDivMod,
    flush_threshold: f64,
    clock: u64,
    remap_entries: usize,
    lookups: u64,
    hits: u64,
    flushes: u64,
}

impl TagBuffer {
    /// Build a tag buffer with `entries` total entries, `ways` associativity
    /// and the given remap-occupancy flush threshold (0.7 in the paper).
    pub fn new(entries: usize, ways: usize, flush_threshold: f64) -> Self {
        assert!(entries > 0 && ways > 0, "tag buffer must have capacity");
        assert!(
            entries.is_multiple_of(ways),
            "entry count must be a multiple of associativity"
        );
        assert!(
            (0.0..=1.0).contains(&flush_threshold),
            "flush threshold must be a fraction"
        );
        TagBuffer {
            sets: vec![vec![Slot::default(); ways]; entries / ways],
            ways,
            set_div: FastDivMod::new((entries / ways) as u64),
            flush_threshold,
            clock: 0,
            remap_entries: 0,
            lookups: 0,
            hits: 0,
            flushes: 0,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of valid entries whose mapping has not yet been pushed to the
    /// page table.
    pub fn remap_entries(&self) -> usize {
        self.remap_entries
    }

    /// Fraction of capacity occupied by remap entries.
    pub fn remap_occupancy(&self) -> f64 {
        self.remap_entries as f64 / self.capacity() as f64
    }

    /// Whether the remap occupancy has reached the flush threshold.
    pub fn needs_flush(&self) -> bool {
        self.remap_occupancy() >= self.flush_threshold
    }

    /// Lookups performed (for statistics).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookup hits (for statistics).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of drains performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    #[inline]
    fn set_index(&self, page: PageNum) -> usize {
        // Mix the page number so that consecutive pages spread over sets.
        let mut x = page.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        self.set_div.rem(x) as usize
    }

    /// Look up the up-to-date mapping for `page`. A hit means the request's
    /// TLB-carried mapping must be ignored in favour of this one; a miss
    /// means the TLB-carried mapping is already up to date (Section 3.2).
    pub fn lookup(&mut self, page: PageNum) -> Option<PteMapInfo> {
        self.lookups += 1;
        self.clock += 1;
        let set = self.set_index(page);
        let clock = self.clock;
        if let Some(slot) = self.sets[set]
            .iter_mut()
            .find(|s| s.valid && s.page == page)
        {
            slot.touched = clock;
            self.hits += 1;
            Some(slot.info)
        } else {
            None
        }
    }

    /// Record a page remapping (insertion into or eviction from the DRAM
    /// cache). The entry is marked `remap = 1` and cannot be evicted until
    /// the buffer is drained.
    pub fn insert_remap(&mut self, page: PageNum, info: PteMapInfo) -> InsertOutcome {
        self.clock += 1;
        let set = self.set_index(page);
        let clock = self.clock;

        // Update in place if the page is already present.
        if let Some(slot) = self.sets[set]
            .iter_mut()
            .find(|s| s.valid && s.page == page)
        {
            if !slot.remap {
                self.remap_entries += 1;
            }
            slot.info = info;
            slot.remap = true;
            slot.touched = clock;
            return self.post_insert_outcome();
        }

        // Otherwise allocate: prefer an invalid slot, then the LRU among
        // non-remap entries. Remap entries are never victims.
        let victim = {
            let set_slots = &self.sets[set];
            set_slots.iter().position(|s| !s.valid).or_else(|| {
                set_slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.remap)
                    .min_by_key(|(_, s)| s.touched)
                    .map(|(i, _)| i)
            })
        };
        let Some(victim) = victim else {
            return InsertOutcome::SetFull;
        };
        self.sets[set][victim] = Slot {
            valid: true,
            remap: true,
            page,
            info,
            touched: clock,
        };
        self.remap_entries += 1;
        self.post_insert_outcome()
    }

    fn post_insert_outcome(&self) -> InsertOutcome {
        if self.needs_flush() {
            InsertOutcome::ThresholdReached
        } else {
            InsertOutcome::Stored
        }
    }

    /// Record a mapping that matches the page table (remap = 0). Used for
    /// pages whose lines live in the LLC, so that their eventual dirty
    /// evictions do not need a DRAM tag probe (Section 3.3). Such entries are
    /// freely evictable; if the set has no evictable slot the insert is
    /// silently dropped.
    pub fn insert_clean(&mut self, page: PageNum, info: PteMapInfo) {
        self.clock += 1;
        let set = self.set_index(page);
        let clock = self.clock;
        if let Some(slot) = self.sets[set]
            .iter_mut()
            .find(|s| s.valid && s.page == page)
        {
            // Never downgrade a remap entry: it carries newer information.
            if !slot.remap {
                slot.info = info;
                slot.touched = clock;
            }
            return;
        }
        let victim = {
            let set_slots = &self.sets[set];
            set_slots.iter().position(|s| !s.valid).or_else(|| {
                set_slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.remap)
                    .min_by_key(|(_, s)| s.touched)
                    .map(|(i, _)| i)
            })
        };
        if let Some(victim) = victim {
            self.sets[set][victim] = Slot {
                valid: true,
                remap: false,
                page,
                info,
                touched: clock,
            };
        }
    }

    /// Drain the buffer for a software flush: returns every remap entry (so
    /// the caller can update the PTEs through the reverse map) and clears
    /// their remap bits. The entries themselves stay resident to keep
    /// helping dirty-eviction routing (Section 3.4).
    pub fn drain(&mut self) -> Vec<TagBufferEntry> {
        let mut drained = Vec::with_capacity(self.remap_entries);
        for set in self.sets.iter_mut() {
            for slot in set.iter_mut() {
                if slot.valid && slot.remap {
                    drained.push(TagBufferEntry {
                        page: slot.page,
                        info: slot.info,
                        remap: true,
                    });
                    slot.remap = false;
                }
            }
        }
        self.remap_entries = 0;
        self.flushes += 1;
        drained
    }

    /// Iterate over all valid entries (for tests and debugging).
    pub fn entries(&self) -> Vec<TagBufferEntry> {
        self.sets
            .iter()
            .flat_map(|set| set.iter())
            .filter(|s| s.valid)
            .map(|s| TagBufferEntry {
                page: s.page,
                info: s.info,
                remap: s.remap,
            })
            .collect()
    }
}

impl Persist for TagBuffer {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.sets.len());
        w.usize(self.ways);
        w.f64(self.flush_threshold);
        w.u64(self.clock);
        w.usize(self.remap_entries);
        w.u64(self.lookups);
        w.u64(self.hits);
        w.u64(self.flushes);
        w.seq_with(&self.sets, |w, set| {
            w.seq_with(set, |w, slot| {
                w.bool(slot.valid);
                w.bool(slot.remap);
                slot.page.save(w);
                slot.info.save(w);
                w.u64(slot.touched);
            });
        });
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let num_sets = r.usize()?;
        let ways = r.usize()?;
        if num_sets == 0 || ways == 0 {
            return Err(SnapshotError::Corrupt(
                "tag buffer has empty geometry".to_string(),
            ));
        }
        let flush_threshold = r.f64()?;
        if !(0.0..=1.0).contains(&flush_threshold) {
            return Err(SnapshotError::Corrupt(format!(
                "tag buffer flush threshold {flush_threshold} out of range"
            )));
        }
        let clock = r.u64()?;
        let remap_entries = r.usize()?;
        let lookups = r.u64()?;
        let hits = r.u64()?;
        let flushes = r.u64()?;
        let outer = r.seq_len(8)?;
        if outer != num_sets {
            return Err(SnapshotError::Corrupt(format!(
                "tag buffer set sequence length {outer} != declared {num_sets}"
            )));
        }
        let mut sets = Vec::with_capacity(num_sets);
        let mut actual_remaps = 0usize;
        for _ in 0..num_sets {
            let inner = r.seq_len(20)?;
            if inner != ways {
                return Err(SnapshotError::Corrupt(format!(
                    "tag buffer way sequence length {inner} != declared {ways}"
                )));
            }
            let mut set = Vec::with_capacity(ways);
            for _ in 0..ways {
                let slot = Slot {
                    valid: r.bool()?,
                    remap: r.bool()?,
                    page: PageNum::restore(r)?,
                    info: PteMapInfo::restore(r)?,
                    touched: r.u64()?,
                };
                if slot.valid && slot.remap {
                    actual_remaps += 1;
                }
                set.push(slot);
            }
            sets.push(set);
        }
        if actual_remaps != remap_entries {
            return Err(SnapshotError::Corrupt(format!(
                "tag buffer claims {remap_entries} remap entries but holds {actual_remaps}"
            )));
        }
        Ok(TagBuffer {
            sets,
            ways,
            set_div: FastDivMod::new(num_sets as u64),
            flush_threshold,
            clock,
            remap_entries,
            lookups,
            hits,
            flushes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn buffer() -> TagBuffer {
        TagBuffer::new(64, 8, 0.7)
    }

    #[test]
    fn paper_size_is_5kb_per_mc() {
        // 1024 entries x (~40 bits per entry) ≈ 5 KB (Section 5.1). Here we
        // just check the geometry constructs.
        let tb = TagBuffer::new(1024, 8, 0.7);
        assert_eq!(tb.capacity(), 1024);
        assert_eq!(tb.remap_entries(), 0);
        assert!(!tb.needs_flush());
    }

    #[test]
    fn lookup_returns_latest_mapping() {
        let mut tb = buffer();
        let page = PageNum::new(42);
        assert!(tb.lookup(page).is_none());
        tb.insert_remap(page, PteMapInfo::cached_in(2));
        assert_eq!(tb.lookup(page), Some(PteMapInfo::cached_in(2)));
        // A second remap of the same page overwrites in place.
        tb.insert_remap(page, PteMapInfo::NOT_CACHED);
        assert_eq!(tb.lookup(page), Some(PteMapInfo::NOT_CACHED));
        assert_eq!(tb.remap_entries(), 1);
    }

    #[test]
    fn threshold_reached_at_70_percent() {
        let mut tb = TagBuffer::new(64, 8, 0.7);
        let mut reached = false;
        for i in 0..45u64 {
            match tb.insert_remap(PageNum::new(i), PteMapInfo::cached_in(0)) {
                InsertOutcome::ThresholdReached => {
                    reached = true;
                    break;
                }
                InsertOutcome::Stored => {}
                InsertOutcome::SetFull => panic!("set overflow before threshold"),
            }
        }
        assert!(reached, "threshold never reported");
        assert!(tb.needs_flush());
        assert!(tb.remap_occupancy() >= 0.7 - 1e-9);
    }

    #[test]
    fn remap_entries_survive_until_drain() {
        let mut tb = TagBuffer::new(16, 8, 1.0);
        // Insert remap entries until the sets start rejecting (the hash does
        // not spread a contiguous page range perfectly), then try to evict
        // the accepted ones with clean-entry pressure — every accepted remap
        // entry must survive.
        let mut accepted = Vec::new();
        for i in 0..16u64 {
            if tb.insert_remap(PageNum::new(i), PteMapInfo::cached_in(1)) != InsertOutcome::SetFull
            {
                accepted.push(i);
            }
        }
        assert!(
            accepted.len() >= 8,
            "expected at least one full set's worth"
        );
        for i in 100..200u64 {
            tb.insert_clean(PageNum::new(i), PteMapInfo::NOT_CACHED);
        }
        for i in accepted {
            assert_eq!(
                tb.lookup(PageNum::new(i)),
                Some(PteMapInfo::cached_in(1)),
                "remap entry {i} was evicted before the flush"
            );
        }
    }

    #[test]
    fn set_full_reported_when_all_ways_are_remap() {
        // 8 entries, 8 ways → a single set. Fill it with remap entries.
        let mut tb = TagBuffer::new(8, 8, 1.0);
        for i in 0..8u64 {
            assert_ne!(
                tb.insert_remap(PageNum::new(i), PteMapInfo::cached_in(0)),
                InsertOutcome::SetFull
            );
        }
        assert_eq!(
            tb.insert_remap(PageNum::new(99), PteMapInfo::cached_in(0)),
            InsertOutcome::SetFull
        );
        // After a drain the insert succeeds.
        tb.drain();
        assert_ne!(
            tb.insert_remap(PageNum::new(99), PteMapInfo::cached_in(0)),
            InsertOutcome::SetFull
        );
    }

    #[test]
    fn drain_clears_remap_but_keeps_entries_resident() {
        let mut tb = buffer();
        for i in 0..10u64 {
            tb.insert_remap(PageNum::new(i), PteMapInfo::cached_in(3));
        }
        let drained = tb.drain();
        assert_eq!(drained.len(), 10);
        assert!(drained.iter().all(|e| e.remap));
        assert_eq!(tb.remap_entries(), 0);
        assert_eq!(tb.flushes(), 1);
        // Entries remain visible to lookups (helping dirty evictions).
        assert_eq!(tb.lookup(PageNum::new(3)), Some(PteMapInfo::cached_in(3)));
        // Second drain returns nothing.
        assert!(tb.drain().is_empty());
    }

    #[test]
    fn clean_entries_are_lru_evictable() {
        let mut tb = TagBuffer::new(8, 8, 1.0);
        for i in 0..8u64 {
            tb.insert_clean(PageNum::new(i), PteMapInfo::NOT_CACHED);
        }
        // Touch entry 0 so it is MRU, then insert a new clean entry — some
        // other entry must be evicted, 0 must survive.
        tb.lookup(PageNum::new(0));
        tb.insert_clean(PageNum::new(100), PteMapInfo::NOT_CACHED);
        assert!(tb.lookup(PageNum::new(0)).is_some());
        assert!(tb.lookup(PageNum::new(100)).is_some());
        assert_eq!(tb.entries().len(), 8);
    }

    #[test]
    fn clean_insert_never_downgrades_remap_entry() {
        let mut tb = buffer();
        let page = PageNum::new(7);
        tb.insert_remap(page, PteMapInfo::cached_in(2));
        tb.insert_clean(page, PteMapInfo::NOT_CACHED);
        assert_eq!(tb.lookup(page), Some(PteMapInfo::cached_in(2)));
        assert_eq!(tb.remap_entries(), 1);
    }

    #[test]
    fn hit_rate_statistics() {
        let mut tb = buffer();
        tb.insert_remap(PageNum::new(1), PteMapInfo::cached_in(0));
        tb.lookup(PageNum::new(1));
        tb.lookup(PageNum::new(2));
        assert_eq!(tb.lookups(), 2);
        assert_eq!(tb.hits(), 1);
    }

    proptest! {
        /// The remap-entry count always matches the number of entries with
        /// the remap bit set, and never exceeds capacity.
        #[test]
        fn prop_remap_accounting(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200)) {
            let mut tb = TagBuffer::new(32, 4, 1.0);
            for (page, clean) in ops {
                if clean {
                    tb.insert_clean(PageNum::new(page), PteMapInfo::NOT_CACHED);
                } else {
                    let _ = tb.insert_remap(PageNum::new(page), PteMapInfo::cached_in(1));
                }
                let actual_remaps = tb.entries().iter().filter(|e| e.remap).count();
                prop_assert_eq!(actual_remaps, tb.remap_entries());
                prop_assert!(tb.entries().len() <= tb.capacity());
            }
            let drained = tb.drain();
            prop_assert_eq!(tb.remap_entries(), 0);
            prop_assert!(drained.len() <= tb.capacity());
        }

        /// save → restore → save is byte-identical, and the restored buffer
        /// behaves identically under further operations.
        #[test]
        fn prop_persist_round_trip(
            ops in proptest::collection::vec((0u64..64, 0u8..3), 0..200),
            tail in proptest::collection::vec((0u64..64, 0u8..3), 0..50),
        ) {
            let apply = |tb: &mut TagBuffer, page: u64, op: u8| match op {
                0 => {
                    tb.insert_clean(PageNum::new(page), PteMapInfo::NOT_CACHED);
                }
                1 => {
                    let _ = tb.insert_remap(PageNum::new(page), PteMapInfo::cached_in(1));
                }
                _ => {
                    tb.lookup(PageNum::new(page));
                }
            };
            let mut tb = TagBuffer::new(32, 4, 1.0);
            for (page, op) in ops {
                apply(&mut tb, page, op);
            }
            let mut w = SnapshotWriter::new();
            tb.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapshotReader::new(&bytes);
            let mut back = TagBuffer::restore(&mut r).unwrap();
            prop_assert!(r.is_exhausted());
            let mut w = SnapshotWriter::new();
            back.save(&mut w);
            prop_assert_eq!(w.into_bytes(), bytes.clone());
            // Diverge-free: identical tails leave identical state behind.
            for (page, op) in tail {
                apply(&mut tb, page, op);
                apply(&mut back, page, op);
            }
            prop_assert_eq!(tb.remap_entries(), back.remap_entries());
            prop_assert_eq!(tb.lookups(), back.lookups());
            prop_assert_eq!(tb.hits(), back.hits());
            let (mut wa, mut wb) = (SnapshotWriter::new(), SnapshotWriter::new());
            tb.save(&mut wa);
            back.save(&mut wb);
            prop_assert_eq!(wa.into_bytes(), wb.into_bytes());
        }

        /// Truncating a snapshot at any point is a typed error, not a panic.
        #[test]
        fn prop_persist_truncation_is_typed(cut in 0usize..64) {
            let mut tb = TagBuffer::new(32, 4, 1.0);
            for page in 0..8 {
                let _ = tb.insert_remap(PageNum::new(page), PteMapInfo::cached_in(1));
            }
            let mut w = SnapshotWriter::new();
            tb.save(&mut w);
            let bytes = w.into_bytes();
            let cut = cut.min(bytes.len().saturating_sub(1));
            let mut r = SnapshotReader::new(&bytes[..cut]);
            prop_assert!(TagBuffer::restore(&mut r).is_err());
        }
    }
}
