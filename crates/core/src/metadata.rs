//! The DRAM-cache metadata layout (Section 4.1, Figure 3).
//!
//! Tags and data are stored in *separate* DRAM rows (unlike Alloy/Unison's
//! tag-and-data units) because Banshee touches tags only on cache
//! replacement and on LLC dirty evictions that miss in the tag buffer. Each
//! cache set's metadata occupies 32 bytes of a tag row and describes:
//!
//! * `ways` **cached** entries — the pages resident in the set, each with a
//!   tag, a frequency counter, a valid bit and a dirty bit, and
//! * `candidate` entries (5 by default) — pages that are *not* resident but
//!   whose frequency counters are being tracked so they can be promoted when
//!   they become hot.
//!
//! With a 48-bit address space, 2^16 sets and 4 KiB pages, a cached entry is
//! 20 + 5 + 1 + 1 = 27 bits and a candidate entry 25 bits, so 4 + 5 entries
//! fit in the 32-byte budget — the arithmetic checked by
//! [`CacheSetMetadata::fits_in_32_bytes`].

use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use serde::{Deserialize, Serialize};

/// Size in bytes of one set's metadata record in the tag row.
pub const SET_METADATA_BYTES: u64 = 32;

/// One tracked page (cached or candidate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetadataEntry {
    /// The caching unit (4 KiB page number or 2 MiB large-page number).
    pub unit: u64,
    /// Frequency counter (saturating at the configured maximum).
    pub count: u32,
    /// Whether the entry holds a real page.
    pub valid: bool,
}

impl MetadataEntry {
    /// An empty slot.
    pub const INVALID: MetadataEntry = MetadataEntry {
        unit: 0,
        count: 0,
        valid: false,
    };
}

/// Metadata for one DRAM-cache set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSetMetadata {
    /// Resident pages, indexed by way.
    pub cached: Vec<MetadataEntry>,
    /// Candidate (non-resident) pages being tracked.
    pub candidates: Vec<MetadataEntry>,
}

impl CacheSetMetadata {
    /// An empty set with the given geometry.
    pub fn new(ways: usize, candidates: usize) -> Self {
        CacheSetMetadata {
            cached: vec![MetadataEntry::INVALID; ways],
            candidates: vec![MetadataEntry::INVALID; candidates],
        }
    }

    /// The way holding `unit`, if resident.
    pub fn find_cached(&self, unit: u64) -> Option<usize> {
        self.cached.iter().position(|e| e.valid && e.unit == unit)
    }

    /// The candidate slot tracking `unit`, if any.
    pub fn find_candidate(&self, unit: u64) -> Option<usize> {
        self.candidates
            .iter()
            .position(|e| e.valid && e.unit == unit)
    }

    /// An invalid (free) way, if any.
    pub fn free_way(&self) -> Option<usize> {
        self.cached.iter().position(|e| !e.valid)
    }

    /// The way with the minimum frequency counter (invalid ways count as 0),
    /// together with that counter value.
    pub fn min_cached(&self) -> (usize, u32) {
        self.cached
            .iter()
            .enumerate()
            .map(|(i, e)| (i, if e.valid { e.count } else { 0 }))
            .min_by_key(|&(_, c)| c)
            .unwrap_or((0, 0))
    }

    /// Highest counter value present in the set (cached or candidate).
    pub fn max_count(&self) -> u32 {
        self.cached
            .iter()
            .chain(self.candidates.iter())
            .filter(|e| e.valid)
            .map(|e| e.count)
            .max()
            .unwrap_or(0)
    }

    /// Halve every counter in the set (the hardware shift on counter
    /// saturation, Algorithm 1 lines 10–14).
    pub fn halve_all_counters(&mut self) {
        for e in self.cached.iter_mut().chain(self.candidates.iter_mut()) {
            if e.valid {
                e.count /= 2;
            }
        }
    }

    /// Number of valid cached entries.
    pub fn cached_occupancy(&self) -> usize {
        self.cached.iter().filter(|e| e.valid).count()
    }

    /// Number of valid candidate entries.
    pub fn candidate_occupancy(&self) -> usize {
        self.candidates.iter().filter(|e| e.valid).count()
    }

    /// Check the Figure 3 bit budget: `ways` cached entries of
    /// `tag_bits + counter_bits + 2` bits plus `candidates` entries of
    /// `tag_bits + counter_bits` bits must fit in 32 bytes.
    pub fn fits_in_32_bytes(
        ways: usize,
        candidates: usize,
        tag_bits: u32,
        counter_bits: u32,
    ) -> bool {
        let cached_bits = ways as u32 * (tag_bits + counter_bits + 2);
        let candidate_bits = candidates as u32 * (tag_bits + counter_bits);
        cached_bits + candidate_bits <= (SET_METADATA_BYTES * 8) as u32
    }
}

/// The full tag-row structure: one [`CacheSetMetadata`] per DRAM-cache set.
#[derive(Debug, Clone)]
pub struct MetadataTable {
    sets: Vec<CacheSetMetadata>,
    /// Set-count divider (mask for power-of-two set counts; `set_of` runs on
    /// every controller access).
    set_div: banshee_common::FastDivMod,
}

impl MetadataTable {
    /// Build the table for `sets` sets with the given per-set geometry.
    pub fn new(sets: u64, ways: usize, candidates: usize) -> Self {
        assert!(sets > 0 && ways > 0, "metadata table needs geometry");
        MetadataTable {
            sets: (0..sets)
                .map(|_| CacheSetMetadata::new(ways, candidates))
                .collect(),
            set_div: banshee_common::FastDivMod::new(sets),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.sets.len() as u64
    }

    /// The set index a caching unit maps to.
    pub fn set_of(&self, unit: u64) -> u64 {
        self.set_div.rem(unit)
    }

    /// Borrow a set's metadata.
    pub fn set(&self, index: u64) -> &CacheSetMetadata {
        &self.sets[index as usize]
    }

    /// Mutably borrow a set's metadata.
    pub fn set_mut(&mut self, index: u64) -> &mut CacheSetMetadata {
        &mut self.sets[index as usize]
    }

    /// Total resident pages across all sets (for tests/statistics).
    pub fn total_cached(&self) -> usize {
        self.sets.iter().map(|s| s.cached_occupancy()).sum()
    }
}

impl Persist for MetadataEntry {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.unit);
        w.u32(self.count);
        w.bool(self.valid);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MetadataEntry {
            unit: r.u64()?,
            count: r.u32()?,
            valid: r.bool()?,
        })
    }
}

impl Persist for CacheSetMetadata {
    fn save(&self, w: &mut SnapshotWriter) {
        w.seq(self.cached.iter());
        w.seq(self.candidates.iter());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CacheSetMetadata {
            cached: r.seq(13)?,
            candidates: r.seq(13)?,
        })
    }
}

impl Persist for MetadataTable {
    fn save(&self, w: &mut SnapshotWriter) {
        w.seq(self.sets.iter());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let sets: Vec<CacheSetMetadata> = r.seq(16)?;
        if sets.is_empty() {
            return Err(SnapshotError::Corrupt(
                "metadata table has no sets".to_string(),
            ));
        }
        let (ways, candidates) = (sets[0].cached.len(), sets[0].candidates.len());
        if ways == 0 {
            return Err(SnapshotError::Corrupt(
                "metadata table has no ways".to_string(),
            ));
        }
        if sets
            .iter()
            .any(|s| s.cached.len() != ways || s.candidates.len() != candidates)
        {
            return Err(SnapshotError::Corrupt(
                "metadata sets disagree on geometry".to_string(),
            ));
        }
        let set_div = banshee_common::FastDivMod::new(sets.len() as u64);
        Ok(MetadataTable { sets, set_div })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bit_budget_fits() {
        // Section 4.1 footnote: 20-bit tag, 5-bit counter, 4 cached + 5
        // candidate entries fit in 32 bytes.
        assert!(CacheSetMetadata::fits_in_32_bytes(4, 5, 20, 5));
        // But doubling associativity with the same candidates would not.
        assert!(!CacheSetMetadata::fits_in_32_bytes(8, 10, 20, 5));
    }

    #[test]
    fn find_and_occupancy() {
        let mut s = CacheSetMetadata::new(4, 5);
        assert_eq!(s.cached_occupancy(), 0);
        assert_eq!(s.free_way(), Some(0));
        s.cached[2] = MetadataEntry {
            unit: 77,
            count: 3,
            valid: true,
        };
        s.candidates[1] = MetadataEntry {
            unit: 99,
            count: 1,
            valid: true,
        };
        assert_eq!(s.find_cached(77), Some(2));
        assert_eq!(s.find_cached(99), None);
        assert_eq!(s.find_candidate(99), Some(1));
        assert_eq!(s.cached_occupancy(), 1);
        assert_eq!(s.candidate_occupancy(), 1);
    }

    #[test]
    fn min_cached_treats_invalid_as_zero() {
        let mut s = CacheSetMetadata::new(2, 2);
        s.cached[0] = MetadataEntry {
            unit: 1,
            count: 10,
            valid: true,
        };
        let (way, count) = s.min_cached();
        assert_eq!(way, 1);
        assert_eq!(count, 0);
        s.cached[1] = MetadataEntry {
            unit: 2,
            count: 4,
            valid: true,
        };
        assert_eq!(s.min_cached(), (1, 4));
    }

    #[test]
    fn halving_counters() {
        let mut s = CacheSetMetadata::new(2, 2);
        s.cached[0] = MetadataEntry {
            unit: 1,
            count: 31,
            valid: true,
        };
        s.candidates[0] = MetadataEntry {
            unit: 2,
            count: 7,
            valid: true,
        };
        s.halve_all_counters();
        assert_eq!(s.cached[0].count, 15);
        assert_eq!(s.candidates[0].count, 3);
        assert_eq!(s.max_count(), 15);
    }

    #[test]
    fn table_set_mapping_is_stable() {
        let t = MetadataTable::new(64, 4, 5);
        assert_eq!(t.num_sets(), 64);
        assert_eq!(t.set_of(0), 0);
        assert_eq!(t.set_of(64), 0);
        assert_eq!(t.set_of(65), 1);
        assert_eq!(t.set(0).cached.len(), 4);
        assert_eq!(t.set(0).candidates.len(), 5);
        assert_eq!(t.total_cached(), 0);
    }
}
