//! Bandwidth-aware frequency-based replacement with sampled counter updates
//! (Section 4.2, Algorithm 1).
//!
//! Three ideas compose here:
//!
//! 1. **Sampling** (Section 4.2.1): counters are read/updated only for a
//!    sampled fraction of accesses. The sample rate adapts: it is the product
//!    of the recent DRAM-cache miss rate and a constant *sampling
//!    coefficient* (0.1 by default), so a well-working cache touches its
//!    metadata rarely.
//! 2. **Replacement threshold** (Section 4.2.2): a candidate page replaces
//!    the coldest cached page only when its counter exceeds the victim's by
//!    `threshold = lines_per_page × sampling_coefficient / 2`, ensuring the
//!    benefit of the swap outweighs the cost of moving a page.
//! 3. **Probabilistic candidate insertion** (Algorithm 1 lines 18–22): an
//!    untracked page takes over a random candidate slot with probability
//!    `1 / victim.count`, so hot candidates are hard to displace.
//!
//! The struct below mutates a [`CacheSetMetadata`] and reports what happened
//! as an [`FbrDecision`]; the controller turns that into DRAM traffic,
//! mapping updates and tag-buffer insertions.

use crate::config::BansheeConfig;
use crate::metadata::{CacheSetMetadata, MetadataEntry};
use banshee_common::freq::{restore_tracker, save_tracker, FrequencyBackendKind, FrequencyTracker};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::XorShiftRng;

/// What the replacement engine did for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FbrDecision {
    /// The access was not sampled: no metadata traffic, no state change.
    NotSampled,
    /// Metadata was read and a counter updated; no replacement.
    Updated {
        /// Whether the saturating counter forced a halve-all pass.
        halved: bool,
    },
    /// A candidate was promoted into the cache.
    Replace {
        /// Way that now holds the promoted page.
        way: usize,
        /// Page that was evicted from that way (`None` if the way was free).
        victim: Option<u64>,
    },
    /// The page was not tracked and won a candidate slot.
    CandidateInserted {
        /// Candidate slot index now tracking the page.
        slot: usize,
    },
    /// The page was not tracked and lost the probabilistic insertion.
    CandidateRejected,
}

impl FbrDecision {
    /// Whether the decision involved touching the metadata in DRAM at all.
    pub fn sampled(&self) -> bool {
        !matches!(self, FbrDecision::NotSampled)
    }

    /// Whether the metadata was written back (Algorithm 1 stores the record
    /// after a counter update or candidate insertion, but not after a
    /// rejected insertion).
    pub fn wrote_metadata(&self) -> bool {
        matches!(
            self,
            FbrDecision::Updated { .. }
                | FbrDecision::Replace { .. }
                | FbrDecision::CandidateInserted { .. }
        )
    }
}

/// The frequency-based replacement engine (one per controller).
#[derive(Debug, Clone)]
pub struct FrequencyReplacement {
    sampling_coefficient: f64,
    threshold: f64,
    max_count: u32,
    /// When true, every access is sampled regardless of miss rate — the
    /// "Banshee FBR no sample" ablation of Figure 7 (and CHOP-like designs).
    force_sample: bool,
    rng: XorShiftRng,
    /// Optional sketch-backed admission feed (the `cms` frequency backend):
    /// every sampled access is also recorded here, and a page entering the
    /// candidate array starts from its sketch estimate instead of 1, so
    /// frequency history survives candidate-slot eviction. `None` on the
    /// default `exact` backend — the per-set metadata counters already *are*
    /// the exact feed, and behaviour stays byte-identical.
    admission: Option<Box<dyn FrequencyTracker>>,
    sampled_accesses: u64,
    replacements: u64,
    counter_halvings: u64,
}

impl FrequencyReplacement {
    /// Build from the Banshee configuration (exact counting).
    pub fn new(config: &BansheeConfig) -> Self {
        Self::with_backend(config, FrequencyBackendKind::Exact)
    }

    /// Build from the Banshee configuration on the given frequency backend.
    /// `exact` keeps the historical metadata-only counting; `cms` adds the
    /// sketch-backed admission feed.
    pub fn with_backend(config: &BansheeConfig, backend: FrequencyBackendKind) -> Self {
        let mut fbr = Self::with_params(
            config.sampling_coefficient,
            config.threshold(),
            config.max_count(),
            false,
        );
        if matches!(backend, FrequencyBackendKind::Cms { .. }) {
            fbr.admission = Some(backend.build());
        }
        fbr
    }

    /// Build with explicit parameters (used by tests and the no-sampling
    /// ablation).
    pub fn with_params(
        sampling_coefficient: f64,
        threshold: f64,
        max_count: u32,
        force_sample: bool,
    ) -> Self {
        assert!((0.0..=1.0).contains(&sampling_coefficient));
        assert!(max_count >= 1);
        FrequencyReplacement {
            sampling_coefficient,
            threshold,
            max_count,
            force_sample,
            rng: XorShiftRng::new(0xFBF0),
            admission: None,
            sampled_accesses: 0,
            replacements: 0,
            counter_halvings: 0,
        }
    }

    /// Force sampling of every access (the Figure 7 "no sample" ablation).
    pub fn set_force_sample(&mut self, force: bool) {
        self.force_sample = force;
    }

    /// Replacement threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of sampled accesses so far.
    pub fn sampled_accesses(&self) -> u64 {
        self.sampled_accesses
    }

    /// Number of promotions (cache replacements) decided so far.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Number of halve-all counter passes.
    pub fn counter_halvings(&self) -> u64 {
        self.counter_halvings
    }

    /// The effective sample rate for the given recent miss rate
    /// (Section 4.2.1: `recent_miss_rate × sampling_coefficient`).
    pub fn sample_rate(&self, recent_miss_rate: f64) -> f64 {
        if self.force_sample {
            1.0
        } else {
            (recent_miss_rate * self.sampling_coefficient).clamp(0.0, 1.0)
        }
    }

    /// Run Algorithm 1 for one access to `unit` in `set`.
    pub fn on_access(
        &mut self,
        set: &mut CacheSetMetadata,
        unit: u64,
        recent_miss_rate: f64,
    ) -> FbrDecision {
        // Line 3: the sampling gate.
        if !self.rng.chance(self.sample_rate(recent_miss_rate)) {
            return FbrDecision::NotSampled;
        }
        self.sampled_accesses += 1;
        if let Some(tracker) = self.admission.as_mut() {
            tracker.record(unit);
        }

        // Lines 5–16: the page is already tracked.
        if let Some(way) = set.find_cached(unit) {
            set.cached[way].count += 1;
            let halved = self.maybe_halve(set, set.cached[way].count);
            return FbrDecision::Updated { halved };
        }
        if let Some(slot) = set.find_candidate(unit) {
            set.candidates[slot].count += 1;
            let count = set.candidates[slot].count;

            // Promotion check (line 7): prefer a free way; otherwise require
            // the candidate to beat the coldest cached page by the threshold.
            let decision = if let Some(free) = set.free_way() {
                Some((free, None))
            } else {
                let (victim_way, victim_count) = set.min_cached();
                if count as f64 > victim_count as f64 + self.threshold {
                    Some((victim_way, Some(set.cached[victim_way].unit)))
                } else {
                    None
                }
            };

            if let Some((way, victim)) = decision {
                self.replacements += 1;
                // Swap: the promoted candidate takes the way; the victim (if
                // any) takes the candidate slot and keeps its counter, so it
                // must re-earn residency (prevents thrashing).
                let promoted = set.candidates[slot];
                set.candidates[slot] = match victim {
                    Some(v) => MetadataEntry {
                        unit: v,
                        count: set.cached[way].count,
                        valid: true,
                    },
                    None => MetadataEntry::INVALID,
                };
                set.cached[way] = MetadataEntry {
                    unit: promoted.unit,
                    count: promoted.count,
                    valid: true,
                };
                self.maybe_halve(set, count);
                return FbrDecision::Replace { way, victim };
            }

            let halved = self.maybe_halve(set, count);
            return FbrDecision::Updated { halved };
        }

        // Lines 17–23: the page is not tracked — try to claim a candidate
        // slot. With the sketch feed, the new candidate resumes from its
        // estimated frequency instead of restarting at 1.
        let initial_count = self.admission_count(unit);
        if let Some(free_slot) = set.candidates.iter().position(|e| !e.valid) {
            set.candidates[free_slot] = MetadataEntry {
                unit,
                count: initial_count,
                valid: true,
            };
            return FbrDecision::CandidateInserted { slot: free_slot };
        }
        let victim_slot = self.rng.next_below(set.candidates.len() as u64) as usize;
        let victim_count = set.candidates[victim_slot].count.max(1);
        if self.rng.chance(1.0 / victim_count as f64) {
            set.candidates[victim_slot] = MetadataEntry {
                unit,
                count: initial_count,
                valid: true,
            };
            FbrDecision::CandidateInserted { slot: victim_slot }
        } else {
            FbrDecision::CandidateRejected
        }
    }

    /// The starting counter for a freshly inserted candidate: 1 on the
    /// exact path, the sketch estimate (clamped so it cannot trigger an
    /// immediate halve) on the sketch path.
    fn admission_count(&self, unit: u64) -> u32 {
        match self.admission.as_ref() {
            None => 1,
            Some(tracker) => {
                let cap = u64::from(self.max_count.saturating_sub(1)).max(1);
                tracker.estimate(unit).clamp(1, cap) as u32
            }
        }
    }

    /// The sketch-backed admission tracker, if the `cms` backend is active.
    pub fn admission_tracker(&self) -> Option<&dyn FrequencyTracker> {
        self.admission.as_deref()
    }

    /// Apply the saturating-counter rule: when any counter reaches the
    /// maximum, every counter in the set is halved (Algorithm 1 lines 10–14).
    fn maybe_halve(&mut self, set: &mut CacheSetMetadata, new_count: u32) -> bool {
        if new_count >= self.max_count {
            set.halve_all_counters();
            self.counter_halvings += 1;
            true
        } else {
            false
        }
    }
}

impl Persist for FrequencyReplacement {
    fn save(&self, w: &mut SnapshotWriter) {
        w.f64(self.sampling_coefficient);
        w.f64(self.threshold);
        w.u32(self.max_count);
        w.bool(self.force_sample);
        self.rng.save(w);
        match self.admission.as_ref() {
            None => w.bool(false),
            Some(tracker) => {
                w.bool(true);
                save_tracker(tracker.as_ref(), w);
            }
        }
        w.u64(self.sampled_accesses);
        w.u64(self.replacements);
        w.u64(self.counter_halvings);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let sampling_coefficient = r.f64()?;
        if !(0.0..=1.0).contains(&sampling_coefficient) {
            return Err(SnapshotError::Corrupt(format!(
                "fbr sampling coefficient {sampling_coefficient} out of range"
            )));
        }
        let threshold = r.f64()?;
        let max_count = r.u32()?;
        if max_count == 0 {
            return Err(SnapshotError::Corrupt("fbr max count is zero".to_string()));
        }
        Ok(FrequencyReplacement {
            sampling_coefficient,
            threshold,
            max_count,
            force_sample: r.bool()?,
            rng: XorShiftRng::restore(r)?,
            admission: if r.bool()? {
                Some(restore_tracker(r)?)
            } else {
                None
            },
            sampled_accesses: r.u64()?,
            replacements: r.u64()?,
            counter_halvings: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine(coeff: f64, threshold: f64) -> FrequencyReplacement {
        FrequencyReplacement::with_params(coeff, threshold, 31, true)
    }

    fn set() -> CacheSetMetadata {
        CacheSetMetadata::new(4, 5)
    }

    #[test]
    fn sample_rate_is_product_of_miss_rate_and_coefficient() {
        let f = FrequencyReplacement::with_params(0.1, 3.2, 31, false);
        assert!((f.sample_rate(1.0) - 0.1).abs() < 1e-12);
        assert!((f.sample_rate(0.3) - 0.03).abs() < 1e-12);
        assert!((f.sample_rate(0.0)).abs() < 1e-12);
        // The ablation samples everything.
        let nf = FrequencyReplacement::with_params(0.1, 3.2, 31, true);
        assert!((nf.sample_rate(0.01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_gate_skips_most_accesses_at_low_miss_rate() {
        let mut f = FrequencyReplacement::with_params(0.1, 3.2, 31, false);
        let mut s = set();
        let n = 10_000;
        for _ in 0..n {
            f.on_access(&mut s, 1, 0.1); // sample rate 1%
        }
        let rate = f.sampled_accesses() as f64 / n as f64;
        assert!((0.005..0.02).contains(&rate), "sampled fraction {rate}");
    }

    #[test]
    fn free_ways_fill_without_threshold() {
        let mut f = engine(1.0, 3.2);
        let mut s = set();
        // First access inserts as candidate, second promotes into a free way.
        assert!(matches!(
            f.on_access(&mut s, 10, 1.0),
            FbrDecision::CandidateInserted { .. }
        ));
        assert!(matches!(
            f.on_access(&mut s, 10, 1.0),
            FbrDecision::Replace {
                way: 0,
                victim: None
            }
        ));
        assert_eq!(s.find_cached(10), Some(0));
    }

    #[test]
    fn promotion_requires_beating_victim_by_threshold() {
        let mut f = engine(1.0, 3.0);
        let mut s = set();
        // Fill all 4 ways with pages that have healthy counters.
        for (w, unit) in [(0usize, 100u64), (1, 101), (2, 102), (3, 103)] {
            s.cached[w] = MetadataEntry {
                unit,
                count: 5,
                valid: true,
            };
        }
        // A new page becomes a candidate and is accessed repeatedly: it must
        // not be promoted until its count exceeds 5 + 3.
        f.on_access(&mut s, 999, 1.0); // candidate, count = 1
        let mut promoted_at = None;
        for i in 2..=12u32 {
            if let FbrDecision::Replace { .. } = f.on_access(&mut s, 999, 1.0) {
                promoted_at = Some(i);
                break;
            }
        }
        let at = promoted_at.expect("candidate should eventually be promoted");
        assert!(at as f64 > 5.0 + 3.0, "promoted too early, at count {at}");
        // The victim was demoted into the candidate array.
        assert_eq!(s.cached_occupancy(), 4);
        assert!(
            s.find_candidate(
                s.candidates
                    .iter()
                    .find(|e| e.valid && e.unit >= 100 && e.unit <= 103)
                    .map(|e| e.unit)
                    .unwrap_or(0)
            )
            .is_some()
                || s.candidate_occupancy() >= 1
        );
    }

    #[test]
    fn victim_must_reearn_residency() {
        // Section 4.2.2: a page just evicted must be accessed ~2·threshold /
        // sampling-rate times before it can come back. With force_sample the
        // sampling rate is 1, so it needs > threshold more counter increments
        // than the new minimum.
        let mut f = engine(1.0, 3.0);
        let mut s = set();
        for (w, unit) in [(0usize, 100u64), (1, 101), (2, 102), (3, 103)] {
            s.cached[w] = MetadataEntry {
                unit,
                count: if w == 0 { 1 } else { 10 },
                valid: true,
            };
        }
        // Promote page 999 over the weak page 100.
        for _ in 0..6 {
            f.on_access(&mut s, 999, 1.0);
        }
        assert!(s.find_cached(999).is_some());
        assert!(s.find_cached(100).is_none());
        // Page 100 is now a candidate; a single access must NOT bring it
        // straight back.
        let d = f.on_access(&mut s, 100, 1.0);
        assert!(!matches!(d, FbrDecision::Replace { .. }));
    }

    #[test]
    fn counter_saturation_halves_the_whole_set() {
        let mut f = FrequencyReplacement::with_params(1.0, 100.0, 8, true);
        let mut s = set();
        s.cached[0] = MetadataEntry {
            unit: 7,
            count: 6,
            valid: true,
        };
        s.cached[1] = MetadataEntry {
            unit: 8,
            count: 4,
            valid: true,
        };
        // Two more accesses to page 7 saturate its 3-bit-equivalent counter
        // (max 8) and trigger the halve.
        f.on_access(&mut s, 7, 1.0);
        let d = f.on_access(&mut s, 7, 1.0);
        assert!(matches!(d, FbrDecision::Updated { halved: true }));
        assert_eq!(f.counter_halvings(), 1);
        assert!(s.cached[0].count <= 4);
        assert_eq!(s.cached[1].count, 2);
    }

    #[test]
    fn hot_candidates_resist_displacement() {
        // The probabilistic insertion (probability 1 / victim.count) makes a
        // set full of hot candidates (count 30) much harder to displace than
        // a set full of cold candidates (count 1). Compare the two under the
        // same one-off-page stream.
        let run = |candidate_count: u32| -> u64 {
            let mut f = engine(1.0, 1000.0);
            let mut s = set();
            for (i, slot) in s.candidates.iter_mut().enumerate() {
                *slot = MetadataEntry {
                    unit: 1000 + i as u64,
                    count: candidate_count,
                    valid: true,
                };
            }
            for (w, e) in s.cached.iter_mut().enumerate() {
                *e = MetadataEntry {
                    unit: 2000 + w as u64,
                    count: 31,
                    valid: true,
                };
            }
            let mut inserted = 0u64;
            for i in 0..300u64 {
                if matches!(
                    f.on_access(&mut s, 5000 + i, 1.0),
                    FbrDecision::CandidateInserted { .. }
                ) {
                    inserted += 1;
                }
            }
            inserted
        };
        let hot = run(30);
        let cold = run(1);
        assert!(
            hot * 2 < cold,
            "hot candidates should be displaced far less often: hot={hot} cold={cold}"
        );
    }

    #[test]
    fn not_sampled_leaves_metadata_untouched() {
        let mut f = FrequencyReplacement::with_params(0.0, 3.2, 31, false);
        let mut s = set();
        let before = s.clone();
        for i in 0..100u64 {
            assert_eq!(f.on_access(&mut s, i, 1.0), FbrDecision::NotSampled);
        }
        assert_eq!(s, before);
        assert_eq!(f.sampled_accesses(), 0);
    }

    #[test]
    fn sketch_admission_seeds_candidates_from_history() {
        let config = BansheeConfig::paper_default();
        let backend = FrequencyBackendKind::Cms {
            width: 4096,
            depth: 4,
        };
        let mut f = FrequencyReplacement::with_backend(&config, backend);
        f.set_force_sample(true);
        assert!(f.admission_tracker().is_some());
        // Phase 1: page 7 earns history in one set (every sampled access is
        // recorded in the sketch).
        let mut a = set();
        for _ in 0..6 {
            f.on_access(&mut a, 7, 1.0);
        }
        // Phase 2: in a fresh set the page is untracked, but its candidate
        // counter resumes from the sketch estimate instead of 1.
        let mut b = set();
        let d = f.on_access(&mut b, 7, 1.0);
        let FbrDecision::CandidateInserted { slot } = d else {
            panic!("expected a candidate insertion, got {d:?}");
        };
        assert!(
            b.candidates[slot].count >= 7,
            "candidate count {} should carry the sketch history",
            b.candidates[slot].count
        );

        // The exact path starts from 1, as Algorithm 1 writes it.
        let mut exact = FrequencyReplacement::new(&config);
        exact.set_force_sample(true);
        assert!(exact.admission_tracker().is_none());
        let mut c = set();
        let FbrDecision::CandidateInserted { slot } = exact.on_access(&mut c, 7, 1.0) else {
            panic!("expected a candidate insertion");
        };
        assert_eq!(c.candidates[slot].count, 1);
    }

    #[test]
    fn admission_tracker_round_trips() {
        let config = BansheeConfig::paper_default();
        let backend = FrequencyBackendKind::Cms {
            width: 256,
            depth: 2,
        };
        let mut f = FrequencyReplacement::with_backend(&config, backend);
        f.set_force_sample(true);
        let mut s = set();
        for unit in 0..40u64 {
            f.on_access(&mut s, unit % 9, 1.0);
        }
        let snap = |f: &FrequencyReplacement| {
            let mut w = SnapshotWriter::new();
            f.save(&mut w);
            w.into_bytes()
        };
        let bytes = snap(&f);
        let mut r = SnapshotReader::new(&bytes);
        let back = FrequencyReplacement::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(snap(&back), bytes);
        assert!(back.admission_tracker().is_some());
        assert_eq!(
            back.admission_tracker().unwrap().estimate(5),
            f.admission_tracker().unwrap().estimate(5)
        );
    }

    #[test]
    fn decision_traffic_flags() {
        assert!(!FbrDecision::NotSampled.sampled());
        assert!(FbrDecision::Updated { halved: false }.wrote_metadata());
        assert!(FbrDecision::Replace {
            way: 0,
            victim: None
        }
        .wrote_metadata());
        assert!(FbrDecision::CandidateInserted { slot: 0 }.wrote_metadata());
        assert!(!FbrDecision::CandidateRejected.wrote_metadata());
        assert!(FbrDecision::CandidateRejected.sampled());
    }

    proptest! {
        /// Structural invariants hold under arbitrary access streams: no unit
        /// is ever both cached and a candidate, occupancies stay within the
        /// geometry, and counters stay below the maximum.
        #[test]
        fn prop_metadata_invariants(stream in proptest::collection::vec(0u64..40, 1..500)) {
            let mut f = FrequencyReplacement::with_params(1.0, 3.2, 31, true);
            let mut s = CacheSetMetadata::new(4, 5);
            for unit in stream {
                f.on_access(&mut s, unit, 1.0);
                prop_assert!(s.cached_occupancy() <= 4);
                prop_assert!(s.candidate_occupancy() <= 5);
                for e in s.cached.iter().filter(|e| e.valid) {
                    prop_assert!(s.find_candidate(e.unit).is_none(),
                        "unit {} is both cached and candidate", e.unit);
                    prop_assert!(e.count <= 31);
                }
                for e in s.candidates.iter().filter(|e| e.valid) {
                    prop_assert!(e.count <= 31);
                }
            }
        }

        /// save → restore → save is byte-identical for both the replacement
        /// engine (including its RNG stream) and the set metadata, and the
        /// restored pair makes the same decisions as the original.
        #[test]
        fn prop_persist_round_trip(
            stream in proptest::collection::vec(0u64..40, 0..300),
            tail in proptest::collection::vec(0u64..40, 0..80),
        ) {
            let mut f = FrequencyReplacement::with_params(1.0, 3.2, 31, true);
            let mut s = CacheSetMetadata::new(4, 5);
            for unit in stream {
                f.on_access(&mut s, unit, 1.0);
            }
            let persist_pair = |f: &FrequencyReplacement, s: &CacheSetMetadata| {
                let mut w = SnapshotWriter::new();
                f.save(&mut w);
                s.save(&mut w);
                w.into_bytes()
            };
            let bytes = persist_pair(&f, &s);
            let mut r = SnapshotReader::new(&bytes);
            let mut f2 = FrequencyReplacement::restore(&mut r).unwrap();
            let mut s2 = CacheSetMetadata::restore(&mut r).unwrap();
            prop_assert!(r.is_exhausted());
            prop_assert_eq!(persist_pair(&f2, &s2), bytes);
            // The RNG stream resumed mid-sequence: decisions must agree.
            for unit in tail {
                let a = f.on_access(&mut s, unit, 1.0);
                let b = f2.on_access(&mut s2, unit, 1.0);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(persist_pair(&f, &s), persist_pair(&f2, &s2));
        }

        /// Truncating a snapshot at any point is a typed error, not a panic.
        #[test]
        fn prop_persist_truncation_is_typed(cut in 0usize..96) {
            let mut f = FrequencyReplacement::with_params(1.0, 3.2, 31, true);
            let mut s = CacheSetMetadata::new(4, 5);
            for unit in 0..24 {
                f.on_access(&mut s, unit, 1.0);
            }
            let mut w = SnapshotWriter::new();
            f.save(&mut w);
            s.save(&mut w);
            let bytes = w.into_bytes();
            let cut = cut.min(bytes.len().saturating_sub(1));
            let mut r = SnapshotReader::new(&bytes[..cut]);
            let truncated = match FrequencyReplacement::restore(&mut r) {
                Err(_) => true,
                Ok(_) => CacheSetMetadata::restore(&mut r).is_err(),
            };
            prop_assert!(truncated, "truncated pair at {} parsed fully", cut);
        }
    }
}
