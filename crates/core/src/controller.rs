//! The Banshee memory-controller logic: composition of the PTE/TLB mapping,
//! the tag buffer, the metadata table and the frequency-based replacement
//! engine into a [`DramCacheController`].
//!
//! Per-request behaviour (Table 1, "Banshee" row):
//!
//! * **DRAM cache hit**: 64 B of in-package traffic, latency of a single
//!   DRAM access — the mapping came with the request (from the TLB) or from
//!   the tag buffer, so no tag probe is needed.
//! * **DRAM cache miss**: 64 B from off-package DRAM, again with no
//!   in-package probe.
//! * **Replacement**: only for pages the frequency counters prove hot
//!   (Algorithm 1), costing a page-sized fill plus the victim's dirty lines.
//! * **LLC dirty eviction**: routed by the tag buffer when possible; only a
//!   tag-buffer miss costs a 32 B in-package tag probe (Section 3.3).
//!
//! The same controller, instantiated through [`BansheeVariant`], also
//! provides the two Figure 7 ablations (LRU replacement on every miss, and
//! FBR with unsampled counter updates) and — via
//! [`BansheeConfig::for_large_pages`] — the 2 MiB large-page mode of
//! Section 4.3.

use crate::coherence::LazyCoherence;
use crate::config::BansheeConfig;
use crate::fbr::{FbrDecision, FrequencyReplacement};
use crate::metadata::{MetadataEntry, MetadataTable, SET_METADATA_BYTES};
use crate::tag_buffer::TagBuffer;
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{
    Addr, Cycle, FnvHashMap, FnvHashSet, PageNum, StatSet, TrafficClass, XorShiftRng,
    CACHE_LINE_SIZE,
};
use banshee_dcache::{
    DCacheConfig, DemandStats, DramCacheController, DramOp, MemRequest, PlanSink, RequestKind,
};
use banshee_memhier::PteMapInfo;

/// Which flavour of the controller to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BansheeVariant {
    /// The full design: frequency-based replacement with sampled counters.
    Standard,
    /// Figure 7 ablation: LRU replacement that replaces on every miss
    /// (Unison-like policy on Banshee's tagless substrate, no footprint
    /// cache).
    Lru,
    /// Figure 7 ablation: frequency-based replacement with counters updated
    /// on every access (no sampling), similar to CHOP.
    FbrNoSample,
}

impl BansheeVariant {
    /// Display label matching Figure 7.
    pub fn label(self) -> &'static str {
        match self {
            BansheeVariant::Standard => "Banshee",
            BansheeVariant::Lru => "Banshee LRU",
            BansheeVariant::FbrNoSample => "Banshee FBR no sample",
        }
    }
}

/// Per-resident-page bookkeeping the controller keeps in SRAM-free
/// simulation state (dirty lines and LRU stamps are architecturally part of
/// the in-DRAM metadata; traffic for them is charged where the paper charges
/// it).
#[derive(Debug, Clone, Default)]
struct ResidentPage {
    way: u8,
    dirty_lines: FnvHashSet<u32>,
    last_touch: u64,
}

/// The Banshee DRAM-cache controller.
pub struct BansheeController {
    config: BansheeConfig,
    variant: BansheeVariant,
    metadata: MetadataTable,
    tag_buffers: Vec<TagBuffer>,
    fbr: FrequencyReplacement,
    coherence: LazyCoherence,
    /// Ground truth: caching unit → residency info.
    resident: FnvHashMap<u64, ResidentPage>,
    /// Reverse of `resident` per (set, way) so victims can be located.
    occupancy: FnvHashMap<(u64, u8), u64>,
    demand: DemandStats,
    rng: XorShiftRng,
    access_clock: u64,
    // Statistics.
    replacements: u64,
    counter_reads: u64,
    counter_writes: u64,
    tag_probes: u64,
    set_full_flushes: u64,
}

impl BansheeController {
    /// Build the standard controller from a Banshee configuration.
    pub fn new(config: BansheeConfig) -> Self {
        Self::with_variant(config, BansheeVariant::Standard)
    }

    /// Build from the shared DRAM-cache geometry.
    pub fn from_dcache(config: &DCacheConfig) -> Self {
        Self::new(BansheeConfig::from_dcache(config))
    }

    /// Build a specific variant (ablations of Figure 7).
    pub fn with_variant(config: BansheeConfig, variant: BansheeVariant) -> Self {
        Self::with_variant_backend(config, variant, banshee_common::FrequencyBackendKind::Exact)
    }

    /// Build a specific variant whose replacement engine feeds frequencies
    /// through the given backend (`exact` keeps the historical behaviour).
    pub fn with_variant_backend(
        config: BansheeConfig,
        variant: BansheeVariant,
        backend: banshee_common::FrequencyBackendKind,
    ) -> Self {
        let mut fbr = FrequencyReplacement::with_backend(&config, backend);
        if variant == BansheeVariant::FbrNoSample {
            fbr.set_force_sample(true);
        }
        let metadata = MetadataTable::new(
            config.sets(),
            config.cached_entries_per_set,
            config.candidate_entries_per_set,
        );
        let tag_buffers = (0..config.memory_controllers)
            .map(|_| {
                TagBuffer::new(
                    config.tag_buffer_entries,
                    config.tag_buffer_ways,
                    config.tag_buffer_flush_threshold,
                )
            })
            .collect();
        let coherence = LazyCoherence::new(&config);
        BansheeController {
            variant,
            metadata,
            tag_buffers,
            fbr,
            coherence,
            resident: FnvHashMap::default(),
            occupancy: FnvHashMap::default(),
            demand: DemandStats::new(4096),
            rng: XorShiftRng::new(0xBAA5),
            access_clock: 0,
            replacements: 0,
            counter_reads: 0,
            counter_writes: 0,
            tag_probes: 0,
            set_full_flushes: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BansheeConfig {
        &self.config
    }

    /// The variant in use.
    pub fn variant(&self) -> BansheeVariant {
        self.variant
    }

    /// Number of pages currently resident in the DRAM cache.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Number of tag-buffer flush (coherence) rounds so far.
    pub fn coherence_rounds(&self) -> u64 {
        self.coherence.flushes()
    }

    /// Mean cycles between coherence rounds.
    pub fn mean_flush_interval(&self) -> f64 {
        self.coherence.mean_flush_interval()
    }

    // ---- Address helpers -------------------------------------------------

    /// In-package DRAM address of a resident unit's data at `offset`.
    fn data_addr(&self, set: u64, way: u8, offset: u64) -> Addr {
        Addr::new((set * self.config.ways as u64 + way as u64) * self.config.page_bytes + offset)
    }

    /// In-package DRAM address of a set's metadata record (tag rows live
    /// after the data region, Figure 3).
    fn meta_addr(&self, set: u64) -> Addr {
        let data_region = self.config.capacity.as_bytes();
        Addr::new(data_region + set * SET_METADATA_BYTES)
    }

    fn line_index(&self, addr: Addr) -> u32 {
        (self.config.unit_offset(addr) / CACHE_LINE_SIZE) as u32
    }

    /// The mapping the controller itself knows to be true.
    fn ground_truth(&self, unit: u64) -> PteMapInfo {
        match self.resident.get(&unit) {
            Some(r) => PteMapInfo::cached_in(r.way),
            None => PteMapInfo::NOT_CACHED,
        }
    }

    // ---- Mapping resolution (Section 3.2 / 3.3) --------------------------

    /// Resolve the effective mapping for a request: the tag buffer wins over
    /// the TLB-carried hint; a missing hint (dirty evictions) falls back to a
    /// DRAM tag probe, whose traffic is appended to `plan`.
    fn resolve_mapping(
        &mut self,
        unit: u64,
        hint: Option<PteMapInfo>,
        plan: &mut PlanSink,
    ) -> PteMapInfo {
        let mc = self.config.mc_of(unit);
        if let Some(info) = self.tag_buffers[mc].lookup(PageNum::new(unit)) {
            return info;
        }
        match hint {
            Some(info) => info,
            None => {
                // Tag-buffer miss with no TLB hint: probe the tags stored in
                // the DRAM cache (Section 3.3) and remember the result as a
                // clean tag-buffer entry to spare future probes.
                self.tag_probes += 1;
                let set = self.metadata.set_of(unit);
                plan.background.push(DramOp::in_package(
                    self.meta_addr(set),
                    32,
                    TrafficClass::Tag,
                ));
                let truth = self.ground_truth(unit);
                self.tag_buffers[mc].insert_clean(PageNum::new(unit), truth);
                truth
            }
        }
    }

    // ---- Replacement machinery -------------------------------------------

    /// Record a remapping in the tag buffer, triggering a coherence round if
    /// the buffer filled up.
    fn record_remap(&mut self, unit: u64, info: PteMapInfo, now: Cycle, plan: &mut PlanSink) {
        use crate::tag_buffer::InsertOutcome;
        let mc = self.config.mc_of(unit);
        let outcome = self.tag_buffers[mc].insert_remap(PageNum::new(unit), info);
        let must_flush = match outcome {
            InsertOutcome::Stored => false,
            InsertOutcome::ThresholdReached => true,
            InsertOutcome::SetFull => {
                self.set_full_flushes += 1;
                true
            }
        };
        if must_flush {
            let mut drained = Vec::new();
            for tb in self.tag_buffers.iter_mut() {
                drained.extend(tb.drain());
            }
            if matches!(outcome, InsertOutcome::SetFull) {
                // Retry the insertion now that the set has evictable entries.
                self.tag_buffers[mc].insert_remap(PageNum::new(unit), info);
            }
            for effect in self.coherence.flush(drained, now) {
                plan.side_effects.push(effect);
            }
        }
    }

    /// Move `unit` into the DRAM cache at (set, way), evicting whatever is
    /// there, and charge the replacement traffic (Section 4.2.2).
    fn perform_replacement(
        &mut self,
        unit: u64,
        set: u64,
        way: u8,
        write_line: Option<u32>,
        now: Cycle,
        plan: &mut PlanSink,
    ) {
        self.replacements += 1;

        // Evict the current occupant of (set, way), if any.
        if let Some(victim_unit) = self.occupancy.remove(&(set, way)) {
            if let Some(victim) = self.resident.remove(&victim_unit) {
                let dirty = victim.dirty_lines.len() as u64;
                if dirty > 0 {
                    // Dirty victim lines: read from the cache, write back to
                    // off-package DRAM.
                    plan.background.push(DramOp::in_package(
                        self.data_addr(set, way, 0),
                        dirty * CACHE_LINE_SIZE,
                        TrafficClass::Replacement,
                    ));
                    plan.background.push(DramOp::off_package_write(
                        Addr::new(victim_unit * self.config.page_bytes),
                        dirty * CACHE_LINE_SIZE,
                        TrafficClass::Writeback,
                    ));
                }
            }
            self.record_remap(victim_unit, PteMapInfo::NOT_CACHED, now, plan);
        }

        // Fill the new page: read it from off-package DRAM and write it into
        // the cache (no footprint cache in Banshee — Table 1 charges
        // "32B tag + page size").
        plan.background.push(DramOp::off_package(
            Addr::new(unit * self.config.page_bytes),
            self.config.page_bytes,
            TrafficClass::Replacement,
        ));
        plan.background.push(DramOp::in_package_write(
            self.data_addr(set, way, 0),
            self.config.page_bytes,
            TrafficClass::Replacement,
        ));

        let mut dirty_lines = FnvHashSet::default();
        if let Some(line) = write_line {
            dirty_lines.insert(line);
        }
        self.resident.insert(
            unit,
            ResidentPage {
                way,
                dirty_lines,
                last_touch: self.access_clock,
            },
        );
        self.occupancy.insert((set, way), unit);
        self.record_remap(unit, PteMapInfo::cached_in(way), now, plan);
    }

    /// The frequency-based replacement path shared by the Standard and
    /// FbrNoSample variants.
    fn fbr_step(&mut self, req: &MemRequest, unit: u64, now: Cycle, plan: &mut PlanSink) {
        let set = self.metadata.set_of(unit);
        let recent_miss = self.demand.recent_miss_rate();
        let decision = {
            let set_meta = self.metadata.set_mut(set);
            self.fbr.on_access(set_meta, unit, recent_miss)
        };

        if decision.sampled() {
            // Loading the set's metadata costs one 32 B access; storing it
            // back (when Algorithm 1 stores) costs another.
            self.counter_reads += 1;
            plan.background.push(DramOp::in_package(
                self.meta_addr(set),
                32,
                TrafficClass::Counter,
            ));
            if decision.wrote_metadata() {
                self.counter_writes += 1;
                plan.background.push(DramOp::in_package_write(
                    self.meta_addr(set),
                    32,
                    TrafficClass::Counter,
                ));
            }
        }

        if let FbrDecision::Replace { way, victim } = decision {
            debug_assert_eq!(
                victim,
                self.occupancy.get(&(set, way as u8)).copied(),
                "metadata and residency map disagree about the victim"
            );
            let write_line = if req.write {
                Some(self.line_index(req.addr))
            } else {
                None
            };
            self.perform_replacement(unit, set, way as u8, write_line, now, plan);
        }
    }

    /// The LRU-ablation replacement path: replace on every miss, victim is
    /// the least-recently-touched way of the set (Figure 7, "Banshee LRU").
    fn lru_step(
        &mut self,
        req: &MemRequest,
        unit: u64,
        hit: bool,
        now: Cycle,
        plan: &mut PlanSink,
    ) {
        let set = self.metadata.set_of(unit);
        // LRU metadata read-modify-write on every access (like Unison's LRU
        // bits, charged as tag traffic).
        plan.background.push(DramOp::in_package(
            self.meta_addr(set),
            32,
            TrafficClass::Tag,
        ));
        plan.background.push(DramOp::in_package_write(
            self.meta_addr(set),
            32,
            TrafficClass::Tag,
        ));
        if hit {
            return;
        }
        // Pick the LRU way of this set (free ways first).
        let mut victim_way: Option<u8> = None;
        let mut oldest = u64::MAX;
        for way in 0..self.config.ways as u8 {
            match self.occupancy.get(&(set, way)) {
                None => {
                    victim_way = Some(way);
                    break;
                }
                Some(u) => {
                    let touch = self.resident.get(u).map(|r| r.last_touch).unwrap_or(0);
                    if touch < oldest {
                        oldest = touch;
                        victim_way = Some(way);
                    }
                }
            }
        }
        let way = victim_way.unwrap_or(0);
        let write_line = if req.write {
            Some(self.line_index(req.addr))
        } else {
            None
        };
        // Keep the metadata table coherent with the residency map so that
        // the two views never diverge (it is unused for the LRU policy's
        // decisions but still backs tag probes).
        let set_meta = self.metadata.set_mut(set);
        if let Some(prev) = self.occupancy.get(&(set, way)) {
            if let Some(slot) = set_meta.find_cached(*prev) {
                set_meta.cached[slot] = MetadataEntry::INVALID;
            }
        }
        set_meta.cached[way as usize] = MetadataEntry {
            unit,
            count: 1,
            valid: true,
        };
        self.perform_replacement(unit, set, way, write_line, now, plan);
    }
}

impl DramCacheController for BansheeController {
    fn name(&self) -> &str {
        self.variant.label()
    }

    fn access(&mut self, req: &MemRequest, now: Cycle, sink: &mut PlanSink) {
        self.access_clock += 1;
        let unit = self.config.unit_of(req.addr);
        let line = self.line_index(req.addr);
        let set = self.metadata.set_of(unit);
        let plan = sink;

        // Resolve the mapping: tag buffer > TLB hint > (probe for hint-less
        // requests).
        let mapping = self.resolve_mapping(unit, req.map_hint, plan);
        debug_assert_eq!(
            mapping,
            self.ground_truth(unit),
            "stale mapping escaped the tag buffer for unit {unit}"
        );

        match req.kind {
            RequestKind::DemandMiss => {
                let hit = mapping.cached;
                self.demand.record(hit);

                if hit {
                    let way = mapping.way;
                    if let Some(r) = self.resident.get_mut(&unit) {
                        r.last_touch = self.access_clock;
                        if req.write {
                            r.dirty_lines.insert(line);
                        }
                    }
                    plan.critical.push(DramOp::in_package(
                        self.data_addr(set, way, self.config.unit_offset(req.addr)),
                        64,
                        TrafficClass::HitData,
                    ));
                    plan.dram_cache_hit = true;
                } else {
                    plan.critical
                        .push(DramOp::off_package(req.addr, 64, TrafficClass::MissData));
                    // Remember the page-table mapping in the tag buffer so a
                    // later dirty eviction of this line avoids a tag probe
                    // (Section 3.3).
                    let mc = self.config.mc_of(unit);
                    self.tag_buffers[mc].insert_clean(PageNum::new(unit), mapping);
                }

                // Replacement policy.
                match self.variant {
                    BansheeVariant::Standard | BansheeVariant::FbrNoSample => {
                        self.fbr_step(req, unit, now, plan)
                    }
                    BansheeVariant::Lru => self.lru_step(req, unit, hit, now, plan),
                }
            }
            RequestKind::Writeback => {
                if mapping.cached {
                    let way = mapping.way;
                    if let Some(r) = self.resident.get_mut(&unit) {
                        r.dirty_lines.insert(line);
                    }
                    plan.background.push(DramOp::in_package_write(
                        self.data_addr(set, way, self.config.unit_offset(req.addr)),
                        64,
                        TrafficClass::Writeback,
                    ));
                } else {
                    plan.background.push(DramOp::off_package_write(
                        req.addr,
                        64,
                        TrafficClass::Writeback,
                    ));
                }
            }
        }
    }

    fn current_mapping(&self, page: PageNum) -> PteMapInfo {
        // `page` is the caching unit (4 KiB page number, or 2 MiB unit when
        // configured for large pages).
        self.ground_truth(page.raw())
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.add("banshee_replacements", self.replacements);
        s.add("banshee_counter_reads", self.counter_reads);
        s.add("banshee_counter_writes", self.counter_writes);
        s.add("banshee_tag_probes", self.tag_probes);
        s.add("banshee_sampled_accesses", self.fbr.sampled_accesses());
        s.add("banshee_counter_halvings", self.fbr.counter_halvings());
        s.add("banshee_tag_buffer_flushes", self.coherence.flushes());
        s.add("banshee_pte_updates", self.coherence.pte_updates());
        s.add("banshee_set_full_flushes", self.set_full_flushes);
        s.add("banshee_resident_pages", self.resident.len() as u64);
        let tb_lookups: u64 = self.tag_buffers.iter().map(|t| t.lookups()).sum();
        let tb_hits: u64 = self.tag_buffers.iter().map(|t| t.hits()).sum();
        s.add("banshee_tag_buffer_lookups", tb_lookups);
        s.add("banshee_tag_buffer_hits", tb_hits);
        // Sketch-shape stats only exist off the default backend, so the
        // exact path's stat set (and its golden fixtures) stays unchanged.
        if let Some(tracker) = self.fbr.admission_tracker() {
            s.add("banshee_freq_memory_bytes", tracker.memory_bytes());
        }
        s
    }

    fn telemetry_gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        // Point-in-time gauges.
        let n = self.tag_buffers.len().max(1) as f64;
        let occupancy: f64 = self
            .tag_buffers
            .iter()
            .map(|t| t.remap_occupancy())
            .sum::<f64>()
            / n;
        out.push(("tag_buffer_occupancy", occupancy));
        out.push((
            "tag_buffer_remap_entries",
            self.tag_buffers
                .iter()
                .map(|t| t.remap_entries() as f64)
                .sum(),
        ));
        out.push(("fbr_threshold", self.fbr.threshold()));
        out.push(("resident_pages", self.resident.len() as f64));
        out.push(("recent_miss_rate", self.demand.recent_miss_rate()));
        // Cumulative gauges; the first two carry the EVENT_GAUGES names, so
        // the recorder turns their per-window increases into polled events.
        out.push((
            "tag_buffer_flushes",
            (self.coherence.flushes() + self.set_full_flushes) as f64,
        ));
        out.push(("fbr_counter_halvings", self.fbr.counter_halvings() as f64));
        out.push(("fbr_sampled_accesses", self.fbr.sampled_accesses() as f64));
        out.push(("replacements", self.replacements as f64));
        out.push(("pte_updates", self.coherence.pte_updates() as f64));
        if let Some(tracker) = self.fbr.admission_tracker() {
            tracker.gauges(out);
        }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.metadata.save(w);
        w.seq(self.tag_buffers.iter());
        self.fbr.save(w);
        self.coherence.save(w);
        // `resident` and `occupancy` are only ever probed by key (never
        // iterated), so sorted encodings are canonical; the per-page dirty
        // sets are only counted, so they sort too.
        let mut resident: Vec<(&u64, &ResidentPage)> = self.resident.iter().collect();
        resident.sort_unstable_by_key(|(unit, _)| **unit);
        w.seq_with(&resident, |w, (unit, r)| {
            w.u64(**unit);
            w.u8(r.way);
            w.u64(r.last_touch);
            let mut lines: Vec<u32> = r.dirty_lines.iter().copied().collect();
            lines.sort_unstable();
            w.seq_with(&lines, |w, line| w.u32(*line));
        });
        let mut occupancy: Vec<(&(u64, u8), &u64)> = self.occupancy.iter().collect();
        occupancy.sort_unstable_by_key(|((set, way), _)| (*set, *way));
        w.seq_with(&occupancy, |w, ((set, way), unit)| {
            w.u64(*set);
            w.u8(*way);
            w.u64(**unit);
        });
        self.demand.save(w);
        self.rng.save(w);
        w.u64(self.access_clock);
        w.u64(self.replacements);
        w.u64(self.counter_reads);
        w.u64(self.counter_writes);
        w.u64(self.tag_probes);
        w.u64(self.set_full_flushes);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let metadata = MetadataTable::restore(r)?;
        if metadata.num_sets() != self.metadata.num_sets() {
            return Err(SnapshotError::Corrupt(format!(
                "banshee image has {} metadata sets, controller has {}",
                metadata.num_sets(),
                self.metadata.num_sets()
            )));
        }
        self.metadata = metadata;
        let tag_buffers: Vec<TagBuffer> = r.seq(64)?;
        if tag_buffers.len() != self.tag_buffers.len() {
            return Err(SnapshotError::Corrupt(format!(
                "banshee image has {} tag buffers, controller has {}",
                tag_buffers.len(),
                self.tag_buffers.len()
            )));
        }
        self.tag_buffers = tag_buffers;
        self.fbr = FrequencyReplacement::restore(r)?;
        self.coherence = LazyCoherence::restore(r)?;
        let resident_len = r.seq_len(25)?;
        self.resident.clear();
        for _ in 0..resident_len {
            let unit = r.u64()?;
            let way = r.u8()?;
            let last_touch = r.u64()?;
            let line_count = r.seq_len(4)?;
            let mut dirty_lines = FnvHashSet::default();
            for _ in 0..line_count {
                dirty_lines.insert(r.u32()?);
            }
            let prev = self.resident.insert(
                unit,
                ResidentPage {
                    way,
                    dirty_lines,
                    last_touch,
                },
            );
            if prev.is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate resident unit {unit}"
                )));
            }
        }
        let occupancy_len = r.seq_len(17)?;
        if occupancy_len != resident_len {
            return Err(SnapshotError::Corrupt(format!(
                "banshee occupancy holds {occupancy_len} entries but residency \
                 holds {resident_len}"
            )));
        }
        self.occupancy.clear();
        for _ in 0..occupancy_len {
            let set = r.u64()?;
            let way = r.u8()?;
            let unit = r.u64()?;
            if !self.resident.contains_key(&unit) {
                return Err(SnapshotError::Corrupt(format!(
                    "occupancy references non-resident unit {unit}"
                )));
            }
            if self.occupancy.insert((set, way), unit).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate occupancy entry for set {set} way {way}"
                )));
            }
        }
        self.demand = DemandStats::restore(r)?;
        self.rng = XorShiftRng::restore(r)?;
        self.access_clock = r.u64()?;
        self.replacements = r.u64()?;
        self.counter_reads = r.u64()?;
        self.counter_writes = r.u64()?;
        self.tag_probes = r.u64()?;
        self.set_full_flushes = r.u64()?;
        Ok(())
    }
}

// Keep the unused rng field honest: it is reserved for policies that need
// controller-level randomness (none today).
impl std::fmt::Debug for BansheeController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BansheeController")
            .field("variant", &self.variant)
            .field("resident_pages", &self.resident.len())
            .field("replacements", &self.replacements)
            .field("rng", &self.rng)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{DramKind, MemSize};

    fn small_config() -> BansheeConfig {
        BansheeConfig {
            capacity: MemSize::kib(64), // 16 pages, 4 sets x 4 ways
            tag_buffer_entries: 64,
            tag_buffer_ways: 8,
            ..BansheeConfig::paper_default()
        }
    }

    /// Drive the controller with TLB hints that mirror what a correct page
    /// table + tag buffer would provide (the simulator does this for real;
    /// tests use ground truth which the tag buffer would correct anyway).
    fn demand(c: &mut BansheeController, addr: Addr, write: bool) -> PlanSink {
        let unit = c.config().unit_of(addr);
        let hint = c.ground_truth(unit);
        let mut req = MemRequest::demand(addr, 0).with_hint(hint);
        if write {
            req = req.as_store();
        }
        c.access_collected(&req, 0)
    }

    #[test]
    fn miss_is_a_single_off_package_access() {
        let mut c = BansheeController::new(small_config());
        let plan = demand(&mut c, Addr::new(0x10_0000), false);
        assert!(!plan.dram_cache_hit);
        assert_eq!(plan.critical.len(), 1);
        assert_eq!(plan.critical[0].dram, DramKind::OffPackage);
        assert_eq!(plan.critical[0].bytes, 64);
        // No in-package probe on the miss path (Table 1: miss traffic 0 B).
        assert_eq!(
            plan.critical
                .iter()
                .filter(|op| op.dram == DramKind::InPackage)
                .count(),
            0
        );
    }

    #[test]
    fn hot_page_gets_cached_and_then_hits_with_64_bytes() {
        let page = PageNum::new(3);
        // Hammer the page; the no-sample variant makes the warm-up
        // deterministic for this unit test.
        let mut c = BansheeController::with_variant(small_config(), BansheeVariant::FbrNoSample);
        for i in 0..64u64 {
            demand(&mut c, page.line_at(i % 64).base_addr(), false);
        }
        assert!(c.resident_pages() >= 1, "hot page never cached");
        let plan = demand(&mut c, page.line_at(0).base_addr(), false);
        assert!(plan.dram_cache_hit);
        assert_eq!(plan.critical.len(), 1);
        assert_eq!(plan.critical[0].dram, DramKind::InPackage);
        assert_eq!(plan.critical[0].bytes, 64);
        let _ = &mut c;
    }

    #[test]
    fn replacement_charges_page_fill_traffic() {
        let mut c = BansheeController::with_variant(small_config(), BansheeVariant::FbrNoSample);
        let page = PageNum::new(5);
        let mut total_replacement = 0u64;
        for i in 0..16u64 {
            let plan = demand(&mut c, page.line_at(i).base_addr(), false);
            total_replacement += plan.bytes_of_class(TrafficClass::Replacement);
        }
        // Exactly one promotion of this page: 4 KiB read + 4 KiB write.
        assert_eq!(total_replacement, 2 * 4096);
    }

    #[test]
    fn cold_pages_are_never_cached() {
        // A pure streaming pattern (each page touched once) must not trigger
        // replacements: the candidate counters never clear the threshold.
        let mut c = BansheeController::with_variant(small_config(), BansheeVariant::FbrNoSample);
        for i in 0..2000u64 {
            demand(&mut c, Addr::new(i * 4096), false);
        }
        assert_eq!(
            c.resident_pages(),
            0,
            "streaming pages should not enter the cache"
        );
        assert_eq!(c.stats().get("banshee_replacements"), 0);
    }

    #[test]
    fn lru_variant_replaces_on_every_miss() {
        let mut c = BansheeController::with_variant(small_config(), BansheeVariant::Lru);
        let mut replacement_bytes = 0u64;
        for i in 0..8u64 {
            let plan = demand(&mut c, Addr::new(i * 4096 * 4), false);
            replacement_bytes += plan.bytes_of_class(TrafficClass::Replacement);
        }
        // Every miss fills a page: 8 misses × (4 KiB read + 4 KiB write).
        assert_eq!(replacement_bytes, 8 * 2 * 4096);
        assert!(c.resident_pages() > 0);
    }

    #[test]
    fn writeback_with_tag_buffer_hit_needs_no_probe() {
        let mut c = BansheeController::with_variant(small_config(), BansheeVariant::FbrNoSample);
        let page = PageNum::new(2);
        // Make the page resident (its remap entry now sits in the tag buffer).
        for i in 0..64u64 {
            demand(&mut c, page.line_at(i % 64).base_addr(), false);
        }
        assert!(c.resident_pages() >= 1);
        let wb = c.access_collected(&MemRequest::writeback(page.line_at(3).base_addr(), 0), 0);
        assert_eq!(wb.bytes_of_class(TrafficClass::Tag), 0, "no probe expected");
        assert_eq!(wb.bytes_on(DramKind::InPackage), 64);
    }

    #[test]
    fn writeback_without_mapping_probes_once_then_caches_the_answer() {
        let mut c = BansheeController::new(small_config());
        let addr = Addr::new(0x42_0000);
        let first = c.access_collected(&MemRequest::writeback(addr, 0), 0);
        assert_eq!(first.bytes_of_class(TrafficClass::Tag), 32);
        assert_eq!(first.bytes_on(DramKind::OffPackage), 64);
        // The probe result was remembered as a clean tag-buffer entry.
        let second = c.access_collected(&MemRequest::writeback(addr, 0), 0);
        assert_eq!(second.bytes_of_class(TrafficClass::Tag), 0);
        assert_eq!(c.stats().get("banshee_tag_probes"), 1);
    }

    #[test]
    fn dirty_victim_lines_are_written_back_on_eviction() {
        // 1 set x 4 ways configuration so pages conflict quickly.
        let cfg = BansheeConfig {
            capacity: MemSize::kib(16), // 4 pages, 1 set
            tag_buffer_entries: 64,
            tag_buffer_ways: 8,
            ..BansheeConfig::paper_default()
        };
        let mut c = BansheeController::with_variant(cfg, BansheeVariant::FbrNoSample);
        // Make 4 pages resident, writing one line in each after it has been
        // promoted (the promotion happens on the second touch).
        for p in 0..4u64 {
            let page = PageNum::new(p);
            for i in 0..64u64 {
                demand(&mut c, page.line_at(i).base_addr(), i == 5);
            }
        }
        assert_eq!(c.resident_pages(), 4);
        // Now make a 5th page hot enough to force an eviction.
        let mut writeback = 0u64;
        let new_page = PageNum::new(9);
        for round in 0..40u64 {
            let plan = demand(&mut c, new_page.line_at(round % 64).base_addr(), false);
            writeback += plan.bytes_of_class(TrafficClass::Writeback);
        }
        assert!(
            writeback >= 64,
            "evicting a dirty page must write its dirty lines back"
        );
    }

    #[test]
    fn tag_buffer_fill_triggers_coherence_round() {
        // Tiny tag buffer so it fills quickly under heavy remapping.
        let cfg = BansheeConfig {
            capacity: MemSize::mib(1),
            tag_buffer_entries: 16,
            tag_buffer_ways: 8,
            memory_controllers: 1,
            ..BansheeConfig::paper_default()
        };
        let mut c = BansheeController::with_variant(cfg, BansheeVariant::Lru);
        let mut saw_update = false;
        let mut saw_shootdown = false;
        for i in 0..2000u64 {
            let plan = demand(&mut c, Addr::new(i * 4096), false);
            for e in &plan.side_effects {
                match e {
                    banshee_dcache::SideEffect::UpdatePageTable { updates } => {
                        saw_update = true;
                        assert!(!updates.is_empty());
                    }
                    banshee_dcache::SideEffect::TlbShootdown => saw_shootdown = true,
                    _ => {}
                }
            }
        }
        assert!(
            saw_update && saw_shootdown,
            "coherence round never happened"
        );
        assert!(c.coherence_rounds() >= 1);
        assert!(c.stats().get("banshee_pte_updates") > 0);
    }

    #[test]
    fn current_mapping_reflects_residency() {
        let mut c = BansheeController::with_variant(small_config(), BansheeVariant::FbrNoSample);
        let page = PageNum::new(6);
        assert_eq!(c.current_mapping(page), PteMapInfo::NOT_CACHED);
        for i in 0..64u64 {
            demand(&mut c, page.line_at(i).base_addr(), false);
        }
        assert!(c.current_mapping(page).cached);
    }

    #[test]
    fn sampling_reduces_counter_traffic() {
        let run = |variant: BansheeVariant| -> (u64, u64) {
            let mut c = BansheeController::with_variant(small_config(), variant);
            let mut counter_bytes = 0u64;
            for i in 0..20_000u64 {
                // A mix of a few hot pages (so there are hits) and a tail.
                let page = if i % 4 == 0 { i % 8 } else { i % 512 };
                let plan = demand(&mut c, Addr::new(page * 4096 + (i % 64) * 64), false);
                counter_bytes += plan.bytes_of_class(TrafficClass::Counter);
            }
            (counter_bytes, c.stats().get("banshee_sampled_accesses"))
        };
        let (sampled_bytes, sampled_count) = run(BansheeVariant::Standard);
        let (unsampled_bytes, unsampled_count) = run(BansheeVariant::FbrNoSample);
        assert!(
            sampled_bytes * 3 < unsampled_bytes,
            "sampling should cut counter traffic: {sampled_bytes} vs {unsampled_bytes}"
        );
        assert!(sampled_count < unsampled_count);
    }

    #[test]
    fn large_page_mode_caches_2mb_units() {
        let cfg = BansheeConfig {
            capacity: MemSize::mib(8), // 4 large pages
            tag_buffer_entries: 64,
            tag_buffer_ways: 8,
            ..BansheeConfig::paper_default()
        }
        .for_large_pages();
        assert_eq!(cfg.capacity_pages(), 4);
        let mut c = BansheeController::with_variant(cfg, BansheeVariant::FbrNoSample);
        // Touch many 4 KiB pages inside one 2 MiB unit; they all belong to
        // the same caching unit.
        let base = 5u64 * 2 * 1024 * 1024;
        let mut replacement = 0u64;
        for i in 0..200u64 {
            let plan = demand(&mut c, Addr::new(base + i * 4096), false);
            replacement += plan.bytes_of_class(TrafficClass::Replacement);
        }
        assert!(c.resident_pages() <= 1);
        if c.resident_pages() == 1 {
            // One promotion of a 2 MiB unit: 2 MiB read + 2 MiB write.
            assert_eq!(replacement, 2 * 2 * 1024 * 1024);
        }
    }
}
