//! DRAM device model: channels, banks, row buffers, bus occupancy and
//! per-class traffic accounting.
//!
//! The Banshee paper's evaluation (Section 5.1, Table 2) models two DRAM
//! devices:
//!
//! * **off-package DRAM** — 1 channel, 128-bit bus at DDR-1333
//!   (≈ 21 GB/s peak), and
//! * **in-package DRAM** — 4 identical channels (≈ 85 GB/s peak), i.e. the
//!   same per-channel technology, just more channels — "we assume all the
//!   channels are the same to model behavior of in-package DRAM".
//!
//! Both have the timing parameters tCAS-tRCD-tRP-tRAS = 10-10-10-24 (bus
//! cycles at 667 MHz). Critically for this paper, the in-package DRAM link
//! transfers data in **32-byte minimum transfers** over a 16-byte link, so
//! reading a 64-byte line together with its tag costs at least 96 bytes —
//! this is where the tag-bandwidth overhead of Alloy/Unison comes from.
//!
//! The model here is deliberately at the level the paper's conclusions need:
//! each access picks a bank (by address), pays row-buffer timing
//! (hit / closed / conflict), then occupies the channel's data bus for
//! `bytes / bytes-per-CPU-cycle` cycles. Queueing delay emerges from bank and
//! bus availability. All byte counts are rounded up to the minimum transfer
//! size and recorded in a [`TrafficStats`] keyed by [`TrafficClass`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod config;
pub mod device;

pub use channel::{Bank, Channel, RowBufferOutcome};
pub use config::{DramConfig, DramTiming};
pub use device::{AccessOutcome, DramDevice, DualDram};
