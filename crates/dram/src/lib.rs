//! DRAM device model: channels, banks, row buffers, bus occupancy and
//! per-class traffic accounting.
//!
//! The Banshee paper's evaluation (Section 5.1, Table 2) models two DRAM
//! devices:
//!
//! * **off-package DRAM** — 1 channel, 128-bit bus at DDR-1333
//!   (≈ 21 GB/s peak), and
//! * **in-package DRAM** — 4 identical channels (≈ 85 GB/s peak), i.e. the
//!   same per-channel technology, just more channels — "we assume all the
//!   channels are the same to model behavior of in-package DRAM".
//!
//! Both have the timing parameters tCAS-tRCD-tRP-tRAS = 10-10-10-24 (bus
//! cycles at 667 MHz). Critically for this paper, the in-package DRAM link
//! transfers data in **32-byte minimum transfers** over a 16-byte link, so
//! reading a 64-byte line together with its tag costs at least 96 bytes —
//! this is where the tag-bandwidth overhead of Alloy/Unison comes from.
//!
//! The model here is a request-queue memory controller per channel: reads
//! pick a bank (by address), pay row-buffer timing (hit / closed /
//! conflict, with tRAS/tRP debts), respect a bounded per-bank queue, and
//! occupy the channel's data bus; writes are posted into a per-channel
//! write queue drained between watermarks in FR-FCFS order (row hits
//! first); every tREFI the channel blocks for tRFC to refresh. Queueing
//! delay emerges from bank, queue and bus availability. All byte counts are
//! rounded up to the minimum transfer size and recorded in a
//! [`TrafficStats`] keyed by [`TrafficClass`] — at operation-issue time for
//! the reported traffic, and again at the channel level when bytes actually
//! cross a bus, so the two accountings can be reconciled
//! (`logical == transferred + pending + untimed`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod config;
pub mod device;

pub use channel::{Bank, Channel, ChannelAccess, RowBufferOutcome};
pub use config::{DramConfig, DramTiming, PagePolicy, SchedulerKind};
pub use device::{AccessOutcome, DramDevice, DualDram};
