//! A multi-channel DRAM device and the in-/off-package pair.

use crate::channel::{Channel, ChannelAccess};
use crate::config::DramConfig;
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::telemetry::DramTelemetry;
use banshee_common::{Addr, Cycle, DramKind, FastDivMod, TrafficClass, TrafficStats, PAGE_SIZE};

/// Result of an access at the device level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle the access started being serviced.
    pub start: Cycle,
    /// Cycle the data finished transferring (posted writes: the posting
    /// cycle).
    pub finish: Cycle,
    /// Which channel serviced it.
    pub channel: usize,
}

impl AccessOutcome {
    /// Service latency (queueing + access + transfer).
    pub fn latency(&self, issued_at: Cycle) -> Cycle {
        self.finish.saturating_sub(issued_at)
    }
}

/// A DRAM device made of identical channels, with traffic accounting at two
/// levels:
///
/// * **logical** ([`DramDevice::traffic`]) — bytes recorded per
///   (class) at the moment an operation is issued; this is what simulation
///   results report.
/// * **device-level** ([`DramDevice::transferred_traffic`] /
///   [`DramDevice::pending_write_traffic`]) — bytes the channels actually
///   moved across their buses, plus what still sits in write queues.
///
/// The conservation invariant `logical == transferred + pending + untimed`
/// holds per class at all times and is what the cross-design
/// traffic-conservation test checks end to end.
#[derive(Debug, Clone)]
pub struct DramDevice {
    kind: DramKind,
    config: DramConfig,
    channels: Vec<Channel>,
    channel_div: FastDivMod,
    traffic: TrafficStats,
    untimed: TrafficStats,
    access_count: u64,
    total_latency: u64,
}

impl DramDevice {
    /// Build a device of the given kind from its configuration.
    pub fn new(kind: DramKind, config: DramConfig) -> Self {
        assert!(config.channels > 0, "device needs at least one channel");
        let channels = (0..config.channels)
            .map(|_| Channel::new(&config))
            .collect();
        DramDevice {
            kind,
            channels,
            channel_div: FastDivMod::new(config.channels as u64),
            traffic: TrafficStats::new(),
            untimed: TrafficStats::new(),
            access_count: 0,
            total_latency: 0,
            config,
        }
    }

    /// Which DRAM this device models.
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated traffic by class, recorded when operations are issued
    /// (posted writes count immediately).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Traffic recorded without a timed device access (see
    /// [`DramDevice::record_untimed_traffic`]). Also included in
    /// [`DramDevice::traffic`].
    pub fn untimed_traffic(&self) -> &TrafficStats {
        &self.untimed
    }

    /// Bytes the channels actually transferred across their data buses,
    /// by class.
    pub fn transferred_traffic(&self) -> TrafficStats {
        let mut t = TrafficStats::new();
        for ch in &self.channels {
            for class in TrafficClass::ALL {
                t.add(self.kind, class, ch.transferred_by_class()[class.index()]);
            }
        }
        t
    }

    /// Bytes posted into write queues and not yet drained, by class.
    pub fn pending_write_traffic(&self) -> TrafficStats {
        let mut t = TrafficStats::new();
        for ch in &self.channels {
            for class in TrafficClass::ALL {
                t.add(self.kind, class, ch.queued_by_class()[class.index()]);
            }
        }
        t
    }

    /// Total number of accesses issued to the device (posted writes count
    /// when issued).
    pub fn access_count(&self) -> u64 {
        self.access_count
    }

    /// Mean service latency (cycles) over all accesses. Posted writes are
    /// acknowledged instantly, so only timed (read / unbuffered) accesses
    /// contribute latency.
    pub fn mean_latency(&self) -> f64 {
        if self.access_count == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.access_count as f64
        }
    }

    /// All-bank refreshes performed across the device's channels.
    pub fn refresh_count(&self) -> u64 {
        self.channels.iter().map(|c| c.refresh_count()).sum()
    }

    /// Write-drain bursts across the device's channels.
    pub fn write_drain_count(&self) -> u64 {
        self.channels.iter().map(|c| c.write_drain_count()).sum()
    }

    /// Channel index for an address. Channels are interleaved at page (4 KiB)
    /// granularity, matching the paper's static page-granularity mapping of
    /// physical addresses to memory controllers.
    pub fn channel_for(&self, addr: Addr) -> usize {
        self.channel_div.rem(addr.raw() / PAGE_SIZE) as usize
    }

    /// Perform an access of `bytes` at `addr`, issued at cycle `now`,
    /// attributed to traffic class `class`. Writes (`write == true`) are
    /// posted into the channel's write queue when one is configured.
    pub fn access(
        &mut self,
        now: Cycle,
        addr: Addr,
        bytes: u64,
        class: TrafficClass,
        write: bool,
    ) -> AccessOutcome {
        let rounded = self.config.round_to_min_transfer(bytes);
        self.traffic.add(self.kind, class, rounded);
        let ch_idx = self.channel_for(addr);
        let ChannelAccess { start, finish, .. } = if write {
            self.channels[ch_idx].write(now, addr, bytes, class)
        } else {
            self.channels[ch_idx].read(now, addr, bytes, class)
        };
        self.access_count += 1;
        self.total_latency += finish.saturating_sub(now);
        AccessOutcome {
            start,
            finish,
            channel: ch_idx,
        }
    }

    /// Detach the device's channels for sharded execution, leaving the
    /// device with only its issue-side accounting (logical traffic, config,
    /// address routing). While detached, [`DramDevice::access`] must not be
    /// called; the coordinator routes operations with
    /// [`DramDevice::channel_for`] + [`DramDevice::note_issued`] and the
    /// workers drive the channels directly.
    pub fn detach_channels(&mut self) -> Vec<Channel> {
        std::mem::take(&mut self.channels)
    }

    /// Re-attach channels detached by [`DramDevice::detach_channels`], in
    /// their original order.
    pub fn attach_channels(&mut self, channels: Vec<Channel>) {
        assert!(
            self.channels.is_empty(),
            "attach_channels on a device that still owns channels"
        );
        assert_eq!(
            channels.len(),
            self.config.channels,
            "channel count must match the device configuration"
        );
        self.channels = channels;
    }

    /// Issue-side half of [`DramDevice::access`], used by the sharded
    /// coordinator: record the logical traffic of an operation whose channel
    /// work happens on a worker. `rounded_bytes` must already be rounded
    /// with [`crate::DramConfig::round_to_min_transfer`] (the coordinator
    /// rounds once and reuses the value for plan accounting).
    pub fn note_issued(&mut self, class: TrafficClass, rounded_bytes: u64) {
        self.traffic.add(self.kind, class, rounded_bytes);
    }

    /// Merge the service-side accounting a shard worker accumulated while
    /// it owned some of this device's channels. Plain sums, so merging the
    /// per-worker deltas in any fixed order reproduces the sequential
    /// totals exactly.
    pub fn merge_serviced(&mut self, access_count: u64, total_latency: u64) {
        self.access_count += access_count;
        self.total_latency += total_latency;
    }

    /// Record traffic without modelling timing (used for idealized designs
    /// whose data movement happens "in the background" without occupying
    /// the modelled channels).
    pub fn record_untimed_traffic(&mut self, bytes: u64, class: TrafficClass) {
        let rounded = self.config.round_to_min_transfer(bytes);
        self.traffic.add(self.kind, class, rounded);
        self.untimed.add(self.kind, class, rounded);
    }

    /// Force every channel's write queue to drain (end-of-run accounting).
    pub fn drain_writes(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.drain_all_writes(now);
        }
    }

    /// Aggregate bus utilization across channels over `elapsed` cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if self.channels.is_empty() || elapsed == 0 {
            return 0.0;
        }
        let sum: f64 = self.channels.iter().map(|c| c.utilization(elapsed)).sum();
        sum / self.channels.len() as f64
    }

    /// Gather the device's telemetry counters plus point-in-time queue
    /// occupancy at cycle `now`, for one time-series sample.
    pub fn telemetry(&self, now: Cycle) -> DramTelemetry {
        DramTelemetry {
            read_queue: self
                .channels
                .iter()
                .map(|c| c.read_queue_occupancy(now) as u64)
                .sum(),
            write_queue: self
                .channels
                .iter()
                .map(|c| c.pending_writes() as u64)
                .sum(),
            accesses: self.channels.iter().map(|c| c.access_count()).sum(),
            row_hits: self.channels.iter().map(|c| c.row_hit_count()).sum(),
            refreshes: self.refresh_count(),
            write_drains: self.write_drain_count(),
        }
    }

    /// Row-buffer hit rate across channels.
    pub fn row_hit_rate(&self) -> f64 {
        let hits: u64 = self.channels.iter().map(|c| c.row_hit_count()).sum();
        let total: u64 = self.channels.iter().map(|c| c.access_count()).sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Serialize the device's mutable state: every channel plus the
    /// device-level traffic and latency accounting. Kind and configuration
    /// are not written — the restoring device is built cold from the same
    /// configuration.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.usize(self.channels.len());
        for ch in &self.channels {
            ch.save_state(w);
        }
        self.traffic.save(w);
        self.untimed.save(w);
        w.u64(self.access_count);
        w.u64(self.total_latency);
    }

    /// Restore state saved by [`DramDevice::save_state`] into a device built
    /// from the same configuration.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let channels = r.usize()?;
        if channels != self.channels.len() {
            return Err(SnapshotError::Corrupt(format!(
                "device image has {channels} channels, configuration has {}",
                self.channels.len()
            )));
        }
        for ch in &mut self.channels {
            ch.load_state(r)?;
        }
        self.traffic = TrafficStats::restore(r)?;
        self.untimed = TrafficStats::restore(r)?;
        self.access_count = r.u64()?;
        self.total_latency = r.u64()?;
        Ok(())
    }
}

/// The pair of DRAM devices every DRAM-cache design operates on.
#[derive(Debug, Clone)]
pub struct DualDram {
    /// The in-package (HBM-like) DRAM used as a cache.
    pub in_package: DramDevice,
    /// The off-package (DDR) backing DRAM.
    pub off_package: DramDevice,
}

impl DualDram {
    /// Build the paper's default configuration (Table 2).
    pub fn paper_default() -> Self {
        DualDram {
            in_package: DramDevice::new(DramKind::InPackage, DramConfig::in_package_default()),
            off_package: DramDevice::new(DramKind::OffPackage, DramConfig::off_package_default()),
        }
    }

    /// Build from explicit configurations.
    pub fn new(in_package: DramConfig, off_package: DramConfig) -> Self {
        DualDram {
            in_package: DramDevice::new(DramKind::InPackage, in_package),
            off_package: DramDevice::new(DramKind::OffPackage, off_package),
        }
    }

    /// Access the device of the given kind.
    pub fn device_mut(&mut self, kind: DramKind) -> &mut DramDevice {
        match kind {
            DramKind::InPackage => &mut self.in_package,
            DramKind::OffPackage => &mut self.off_package,
        }
    }

    /// Borrow the device of the given kind.
    pub fn device(&self, kind: DramKind) -> &DramDevice {
        match kind {
            DramKind::InPackage => &self.in_package,
            DramKind::OffPackage => &self.off_package,
        }
    }

    /// Combined traffic stats (merged copy).
    pub fn combined_traffic(&self) -> TrafficStats {
        let mut t = self.in_package.traffic().clone();
        t.merge(self.off_package.traffic());
        t
    }

    /// Serialize both devices' mutable state.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        self.in_package.save_state(w);
        self.off_package.save_state(w);
    }

    /// Restore state saved by [`DualDram::save_state`] into a pair built
    /// from the same configurations.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.in_package.load_state(r)?;
        self.off_package.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_rounded_and_attributed() {
        let mut dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        dev.access(0, Addr::new(0), 64 + 8, TrafficClass::Tag, false);
        assert_eq!(
            dev.traffic().bytes(DramKind::InPackage, TrafficClass::Tag),
            96
        );
        assert_eq!(dev.access_count(), 1);
    }

    #[test]
    fn channel_interleaving_spreads_pages() {
        let dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        let c0 = dev.channel_for(Addr::new(0));
        let c1 = dev.channel_for(Addr::new(PAGE_SIZE));
        let c2 = dev.channel_for(Addr::new(2 * PAGE_SIZE));
        let c4 = dev.channel_for(Addr::new(4 * PAGE_SIZE));
        assert_ne!(c0, c1);
        assert_ne!(c1, c2);
        assert_eq!(c0, c4, "4 channels should wrap around");
        // Lines within one page stay on one channel.
        assert_eq!(dev.channel_for(Addr::new(64)), c0);
        assert_eq!(dev.channel_for(Addr::new(4032)), c0);
    }

    #[test]
    fn more_channels_give_more_bandwidth() {
        // Issue a burst of page-sized reads and compare finish times between
        // a 1-channel and a 4-channel device.
        let off = DramConfig::off_package_default();
        let inp = DramConfig::in_package_default();
        let mut one = DramDevice::new(DramKind::OffPackage, off);
        let mut four = DramDevice::new(DramKind::InPackage, inp);
        let mut one_finish = 0;
        let mut four_finish = 0;
        for i in 0..64u64 {
            let addr = Addr::new(i * PAGE_SIZE);
            one_finish = one
                .access(0, addr, 4096, TrafficClass::HitData, false)
                .finish;
            four_finish = four
                .access(0, addr, 4096, TrafficClass::HitData, false)
                .finish;
        }
        assert!(
            one_finish > 3 * four_finish,
            "1-channel {one_finish} vs 4-channel {four_finish}"
        );
    }

    #[test]
    fn mean_latency_grows_under_load() {
        let cfg = DramConfig::off_package_default();
        let mut idle = DramDevice::new(DramKind::OffPackage, cfg.clone());
        let mut loaded = DramDevice::new(DramKind::OffPackage, cfg);
        // Idle: accesses spaced far apart. Loaded: all at once.
        for i in 0..32u64 {
            idle.access(
                i * 10_000,
                Addr::new(i * PAGE_SIZE),
                64,
                TrafficClass::HitData,
                false,
            );
            loaded.access(
                0,
                Addr::new(i * PAGE_SIZE),
                64,
                TrafficClass::HitData,
                false,
            );
        }
        assert!(loaded.mean_latency() > idle.mean_latency());
    }

    #[test]
    fn telemetry_gauges_track_queues_and_counters() {
        let mut dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        let mut last_finish = 0;
        for i in 0..8u64 {
            last_finish = dev
                .access(
                    0,
                    Addr::new(i * PAGE_SIZE),
                    64,
                    TrafficClass::HitData,
                    false,
                )
                .finish
                .max(last_finish);
        }
        let busy = dev.telemetry(0);
        assert!(busy.read_queue > 0, "reads in flight at issue time");
        assert_eq!(busy.accesses, dev.access_count());
        assert_eq!(busy.refreshes, dev.refresh_count());
        assert_eq!(busy.write_drains, dev.write_drain_count());
        let idle = dev.telemetry(last_finish + 1);
        assert_eq!(idle.read_queue, 0, "all reads finished");
        assert_eq!(idle.accesses, busy.accesses);
    }

    #[test]
    fn untimed_traffic_counts_bytes_but_not_accesses() {
        let mut dev = DramDevice::new(DramKind::OffPackage, DramConfig::off_package_default());
        dev.record_untimed_traffic(4096, TrafficClass::Replacement);
        assert_eq!(
            dev.traffic()
                .bytes(DramKind::OffPackage, TrafficClass::Replacement),
            4096
        );
        assert_eq!(
            dev.untimed_traffic()
                .bytes(DramKind::OffPackage, TrafficClass::Replacement),
            4096
        );
        assert_eq!(dev.access_count(), 0);
    }

    /// The device-level conservation invariant: every logical byte is either
    /// transferred on a bus, still queued, or explicitly untimed.
    #[test]
    fn logical_traffic_reconciles_with_device_counters() {
        let mut dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        for i in 0..500u64 {
            let addr = Addr::new((i * 1237) % (1 << 24));
            if i % 3 == 0 {
                dev.access(i * 10, addr, 64, TrafficClass::Writeback, true);
            } else if i % 7 == 0 {
                dev.access(i * 10, addr, 4096, TrafficClass::Replacement, true);
            } else {
                dev.access(i * 10, addr, 64, TrafficClass::HitData, false);
            }
        }
        dev.record_untimed_traffic(100, TrafficClass::Counter);
        let transferred = dev.transferred_traffic();
        let pending = dev.pending_write_traffic();
        for class in TrafficClass::ALL {
            let logical = dev.traffic().bytes(DramKind::InPackage, class);
            let accounted = transferred.bytes(DramKind::InPackage, class)
                + pending.bytes(DramKind::InPackage, class)
                + dev.untimed_traffic().bytes(DramKind::InPackage, class);
            assert_eq!(logical, accounted, "class {class} leaked bytes");
        }
        // Draining moves everything to `transferred`.
        dev.drain_writes(1_000_000);
        assert_eq!(dev.pending_write_traffic().grand_total(), 0);
        assert_eq!(
            dev.transferred_traffic().grand_total() + dev.untimed_traffic().grand_total(),
            dev.traffic().grand_total()
        );
    }

    #[test]
    fn posted_writes_do_not_stall_the_issuer() {
        let mut dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        let w = dev.access(42, Addr::new(0), 64, TrafficClass::Writeback, true);
        assert_eq!(w.finish, 42, "posted write acknowledged instantly");
        let r = dev.access(42, Addr::new(64), 64, TrafficClass::HitData, false);
        assert!(r.finish > 42);
    }

    #[test]
    fn dual_dram_combined_traffic() {
        let mut d = DualDram::paper_default();
        d.in_package
            .access(0, Addr::new(0), 64, TrafficClass::HitData, false);
        d.off_package
            .access(0, Addr::new(0), 64, TrafficClass::MissData, false);
        let t = d.combined_traffic();
        assert_eq!(t.bytes(DramKind::InPackage, TrafficClass::HitData), 64);
        assert_eq!(t.bytes(DramKind::OffPackage, TrafficClass::MissData), 64);
        assert_eq!(t.grand_total(), 128);
    }

    /// A warmed device, snapshotted and restored into a cold-built twin,
    /// must behave identically on subsequent traffic — including queued
    /// writes, open rows and refresh phase.
    #[test]
    fn save_restore_round_trip_is_behavior_identical() {
        use banshee_common::persist::{SnapshotReader, SnapshotWriter};
        let mk = || DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        let mut warm = mk();
        for i in 0..300u64 {
            let addr = Addr::new((i * 7919) % (1 << 22));
            warm.access(i * 13, addr, 64, TrafficClass::HitData, i % 4 == 0);
        }
        let mut w = SnapshotWriter::new();
        warm.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = mk();
        let mut r = SnapshotReader::new(&bytes);
        restored.load_state(&mut r).expect("restore");
        assert!(r.is_exhausted());

        // Same traffic after the snapshot point → same timing and counters.
        for i in 300..400u64 {
            let addr = Addr::new((i * 104_729) % (1 << 22));
            let a = warm.access(i * 17, addr, 64, TrafficClass::MissData, i % 3 == 0);
            let b = restored.access(i * 17, addr, 64, TrafficClass::MissData, i % 3 == 0);
            assert_eq!(a, b, "divergence at access {i}");
        }
        warm.drain_writes(1_000_000);
        restored.drain_writes(1_000_000);
        assert_eq!(warm.traffic(), restored.traffic());
        assert_eq!(warm.refresh_count(), restored.refresh_count());
        assert_eq!(warm.write_drain_count(), restored.write_drain_count());
        assert_eq!(warm.mean_latency(), restored.mean_latency());

        // save → restore → save is byte-identical.
        let mut again = SnapshotWriter::new();
        let mut second = mk();
        let mut r2 = SnapshotReader::new(&bytes);
        second.load_state(&mut r2).expect("restore twice");
        second.save_state(&mut again);
        assert_eq!(again.into_bytes(), bytes);
    }

    /// Restoring into a device with different geometry must fail with a
    /// typed error, not panic or silently mis-restore.
    #[test]
    fn restore_rejects_mismatched_geometry() {
        use banshee_common::persist::{SnapshotReader, SnapshotWriter};
        let warm = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        let mut w = SnapshotWriter::new();
        warm.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut other_cfg = DramConfig::in_package_default();
        other_cfg.channels += 1;
        let mut other = DramDevice::new(DramKind::InPackage, other_cfg);
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            other.load_state(&mut r),
            Err(banshee_common::SnapshotError::Corrupt(_))
        ));
    }

    /// The sharded-execution seam: issuing through `note_issued` + direct
    /// channel service + `merge_serviced` must reproduce the sequential
    /// `access` path exactly — same timing, same counters, same snapshot
    /// bytes.
    #[test]
    fn detached_channel_service_reproduces_sequential_device() {
        use banshee_common::persist::SnapshotWriter;
        let mk = || DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        let mut seq = mk();
        let mut split = mk();
        let mut channels = split.detach_channels();
        let (mut count, mut latency) = (0u64, 0u64);
        for i in 0..400u64 {
            let addr = Addr::new((i * 7919) % (1 << 22));
            let write = i % 3 == 0;
            let class = if write {
                TrafficClass::Writeback
            } else {
                TrafficClass::HitData
            };
            let a = seq.access(i * 5, addr, 64, class, write);
            let rounded = split.config().round_to_min_transfer(64);
            split.note_issued(class, rounded);
            let ch = split.channel_for(addr);
            let out = if write {
                channels[ch].write(i * 5, addr, 64, class)
            } else {
                channels[ch].read(i * 5, addr, 64, class)
            };
            count += 1;
            latency += out.finish.saturating_sub(i * 5);
            assert_eq!(out.finish, a.finish, "timing diverged at access {i}");
        }
        split.attach_channels(channels);
        split.merge_serviced(count, latency);
        assert_eq!(split.traffic(), seq.traffic());
        assert_eq!(split.access_count(), seq.access_count());
        assert_eq!(split.mean_latency(), seq.mean_latency());
        let snap = |d: &DramDevice| {
            let mut w = SnapshotWriter::new();
            d.save_state(&mut w);
            w.into_bytes()
        };
        assert_eq!(snap(&split), snap(&seq));
    }

    #[test]
    fn row_hit_rate_reflects_streaming() {
        let mut dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        // Stream 64 consecutive lines of one page: should be mostly row hits.
        for i in 0..64u64 {
            dev.access(i, Addr::new(i * 64), 64, TrafficClass::HitData, false);
        }
        assert!(
            dev.row_hit_rate() > 0.9,
            "row hit rate {}",
            dev.row_hit_rate()
        );
    }
}
