//! A multi-channel DRAM device and the in-/off-package pair.

use crate::channel::{Channel, ChannelAccess};
use crate::config::{DramConfig, DramTiming};
use banshee_common::{Addr, Cycle, DramKind, FastDivMod, TrafficClass, TrafficStats, PAGE_SIZE};

/// Result of an access at the device level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle the access started being serviced.
    pub start: Cycle,
    /// Cycle the data finished transferring.
    pub finish: Cycle,
    /// Which channel serviced it.
    pub channel: usize,
}

impl AccessOutcome {
    /// Service latency (queueing + access + transfer).
    pub fn latency(&self, issued_at: Cycle) -> Cycle {
        self.finish.saturating_sub(issued_at)
    }
}

/// A DRAM device made of identical channels, with traffic accounting.
#[derive(Debug, Clone)]
pub struct DramDevice {
    kind: DramKind,
    config: DramConfig,
    timing: DramTiming,
    channels: Vec<Channel>,
    channel_div: FastDivMod,
    traffic: TrafficStats,
    access_count: u64,
    total_latency: u64,
}

impl DramDevice {
    /// Build a device of the given kind from its configuration.
    pub fn new(kind: DramKind, config: DramConfig) -> Self {
        assert!(config.channels > 0, "device needs at least one channel");
        let channels = (0..config.channels)
            .map(|_| Channel::new(config.banks_per_channel, config.row_buffer_bytes))
            .collect();
        DramDevice {
            kind,
            timing: DramTiming::default(),
            channels,
            channel_div: FastDivMod::new(config.channels as u64),
            traffic: TrafficStats::new(),
            access_count: 0,
            total_latency: 0,
            config,
        }
    }

    /// Which DRAM this device models.
    pub fn kind(&self) -> DramKind {
        self.kind
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated traffic by class.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Total number of accesses serviced.
    pub fn access_count(&self) -> u64 {
        self.access_count
    }

    /// Mean service latency (cycles) over all accesses.
    pub fn mean_latency(&self) -> f64 {
        if self.access_count == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.access_count as f64
        }
    }

    /// Channel index for an address. Channels are interleaved at page (4 KiB)
    /// granularity, matching the paper's static page-granularity mapping of
    /// physical addresses to memory controllers.
    pub fn channel_for(&self, addr: Addr) -> usize {
        self.channel_div.rem(addr.raw() / PAGE_SIZE) as usize
    }

    /// Perform an access of `bytes` at `addr`, issued at cycle `now`,
    /// attributed to traffic class `class`.
    pub fn access(
        &mut self,
        now: Cycle,
        addr: Addr,
        bytes: u64,
        class: TrafficClass,
    ) -> AccessOutcome {
        let rounded = self.config.round_to_min_transfer(bytes);
        self.traffic.add(self.kind, class, rounded);
        let ch_idx = self.channel_for(addr);
        let ChannelAccess { start, finish, .. } =
            self.channels[ch_idx].access(&self.config, &self.timing, now, addr, bytes);
        self.access_count += 1;
        self.total_latency += finish.saturating_sub(now);
        AccessOutcome {
            start,
            finish,
            channel: ch_idx,
        }
    }

    /// Record traffic without modelling timing (used for idealized designs,
    /// e.g. TDC's zero-overhead TLB coherence messages are *not* recorded,
    /// but HMA's page migrations are charged as traffic performed "in the
    /// background" by the OS).
    pub fn record_untimed_traffic(&mut self, bytes: u64, class: TrafficClass) {
        let rounded = self.config.round_to_min_transfer(bytes);
        self.traffic.add(self.kind, class, rounded);
    }

    /// Aggregate bus utilization across channels over `elapsed` cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if self.channels.is_empty() || elapsed == 0 {
            return 0.0;
        }
        let sum: f64 = self.channels.iter().map(|c| c.utilization(elapsed)).sum();
        sum / self.channels.len() as f64
    }

    /// Row-buffer hit rate across channels.
    pub fn row_hit_rate(&self) -> f64 {
        let hits: u64 = self.channels.iter().map(|c| c.row_hit_count()).sum();
        let total: u64 = self.channels.iter().map(|c| c.access_count()).sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// The pair of DRAM devices every DRAM-cache design operates on.
#[derive(Debug, Clone)]
pub struct DualDram {
    /// The in-package (HBM-like) DRAM used as a cache.
    pub in_package: DramDevice,
    /// The off-package (DDR) backing DRAM.
    pub off_package: DramDevice,
}

impl DualDram {
    /// Build the paper's default configuration (Table 2).
    pub fn paper_default() -> Self {
        DualDram {
            in_package: DramDevice::new(DramKind::InPackage, DramConfig::in_package_default()),
            off_package: DramDevice::new(DramKind::OffPackage, DramConfig::off_package_default()),
        }
    }

    /// Build from explicit configurations.
    pub fn new(in_package: DramConfig, off_package: DramConfig) -> Self {
        DualDram {
            in_package: DramDevice::new(DramKind::InPackage, in_package),
            off_package: DramDevice::new(DramKind::OffPackage, off_package),
        }
    }

    /// Access the device of the given kind.
    pub fn device_mut(&mut self, kind: DramKind) -> &mut DramDevice {
        match kind {
            DramKind::InPackage => &mut self.in_package,
            DramKind::OffPackage => &mut self.off_package,
        }
    }

    /// Borrow the device of the given kind.
    pub fn device(&self, kind: DramKind) -> &DramDevice {
        match kind {
            DramKind::InPackage => &self.in_package,
            DramKind::OffPackage => &self.off_package,
        }
    }

    /// Combined traffic stats (merged copy).
    pub fn combined_traffic(&self) -> TrafficStats {
        let mut t = self.in_package.traffic().clone();
        t.merge(self.off_package.traffic());
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_rounded_and_attributed() {
        let mut dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        dev.access(0, Addr::new(0), 64 + 8, TrafficClass::Tag);
        assert_eq!(
            dev.traffic().bytes(DramKind::InPackage, TrafficClass::Tag),
            96
        );
        assert_eq!(dev.access_count(), 1);
    }

    #[test]
    fn channel_interleaving_spreads_pages() {
        let dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        let c0 = dev.channel_for(Addr::new(0));
        let c1 = dev.channel_for(Addr::new(PAGE_SIZE));
        let c2 = dev.channel_for(Addr::new(2 * PAGE_SIZE));
        let c4 = dev.channel_for(Addr::new(4 * PAGE_SIZE));
        assert_ne!(c0, c1);
        assert_ne!(c1, c2);
        assert_eq!(c0, c4, "4 channels should wrap around");
        // Lines within one page stay on one channel.
        assert_eq!(dev.channel_for(Addr::new(64)), c0);
        assert_eq!(dev.channel_for(Addr::new(4032)), c0);
    }

    #[test]
    fn more_channels_give_more_bandwidth() {
        // Issue a burst of page-sized reads and compare finish times between
        // a 1-channel and a 4-channel device.
        let off = DramConfig::off_package_default();
        let inp = DramConfig::in_package_default();
        let mut one = DramDevice::new(DramKind::OffPackage, off);
        let mut four = DramDevice::new(DramKind::InPackage, inp);
        let mut one_finish = 0;
        let mut four_finish = 0;
        for i in 0..64u64 {
            let addr = Addr::new(i * PAGE_SIZE);
            one_finish = one.access(0, addr, 4096, TrafficClass::HitData).finish;
            four_finish = four.access(0, addr, 4096, TrafficClass::HitData).finish;
        }
        assert!(
            one_finish > 3 * four_finish,
            "1-channel {one_finish} vs 4-channel {four_finish}"
        );
    }

    #[test]
    fn mean_latency_grows_under_load() {
        let cfg = DramConfig::off_package_default();
        let mut idle = DramDevice::new(DramKind::OffPackage, cfg.clone());
        let mut loaded = DramDevice::new(DramKind::OffPackage, cfg);
        // Idle: accesses spaced far apart. Loaded: all at once.
        for i in 0..32u64 {
            idle.access(
                i * 10_000,
                Addr::new(i * PAGE_SIZE),
                64,
                TrafficClass::HitData,
            );
            loaded.access(0, Addr::new(i * PAGE_SIZE), 64, TrafficClass::HitData);
        }
        assert!(loaded.mean_latency() > idle.mean_latency());
    }

    #[test]
    fn untimed_traffic_counts_bytes_but_not_accesses() {
        let mut dev = DramDevice::new(DramKind::OffPackage, DramConfig::off_package_default());
        dev.record_untimed_traffic(4096, TrafficClass::Replacement);
        assert_eq!(
            dev.traffic()
                .bytes(DramKind::OffPackage, TrafficClass::Replacement),
            4096
        );
        assert_eq!(dev.access_count(), 0);
    }

    #[test]
    fn dual_dram_combined_traffic() {
        let mut d = DualDram::paper_default();
        d.in_package
            .access(0, Addr::new(0), 64, TrafficClass::HitData);
        d.off_package
            .access(0, Addr::new(0), 64, TrafficClass::MissData);
        let t = d.combined_traffic();
        assert_eq!(t.bytes(DramKind::InPackage, TrafficClass::HitData), 64);
        assert_eq!(t.bytes(DramKind::OffPackage, TrafficClass::MissData), 64);
        assert_eq!(t.grand_total(), 128);
    }

    #[test]
    fn row_hit_rate_reflects_streaming() {
        let mut dev = DramDevice::new(DramKind::InPackage, DramConfig::in_package_default());
        // Stream 64 consecutive lines of one page: should be mostly row hits.
        for i in 0..64u64 {
            dev.access(i, Addr::new(i * 64), 64, TrafficClass::HitData);
        }
        assert!(
            dev.row_hit_rate() > 0.9,
            "row hit rate {}",
            dev.row_hit_rate()
        );
    }
}
