//! A single DRAM channel: banks with row-buffer state, a shared data bus,
//! and a request-queue memory controller in front of them.
//!
//! The controller model per channel:
//!
//! * **Reads** (demand fetches, fills being read out, tag probes) are
//!   serviced on arrival, but respect three resources: the target bank's
//!   command timing (row hit / closed / conflict, tRAS/tRP debts), a
//!   **bounded per-bank queue** (at most `read_queue_depth` unfinished
//!   requests per bank — excess arrivals wait for a slot), and the shared
//!   data bus. Row hits pipeline at the bus rate; activates serialize on
//!   the bank.
//! * **Writes** are posted into a per-channel **write queue** and
//!   acknowledged immediately. When occupancy reaches the high watermark
//!   the controller drains down to the low watermark, picking row-buffer
//!   hits first under [`SchedulerKind::FrFcfs`] (oldest-first under
//!   [`SchedulerKind::Fcfs`]); each drained write occupies its bank and the
//!   bus like any access. With `write_queue_depth == 0` writes are serviced
//!   immediately (the pre-queue model).
//! * **Refresh**: every tREFI the whole channel performs an all-bank
//!   refresh — open rows are closed and every bank is blocked for tRFC.
//!
//! This is still not a full DDR protocol model (no command bus, no
//! tFAW/tWTR), but it now captures the three effects the paper's evaluation
//! depends on: *queueing under bandwidth pressure*, *row-buffer locality*
//! (sequential page fills are cheaper per byte than scattered line
//! accesses), and *write interference* (drain bursts delaying demand reads).
//!
//! All state is allocated at construction (queue and per-bank rings are
//! fixed-capacity); no access allocates.

use crate::config::{DramConfig, PagePolicy, SchedulerKind};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{Addr, Cycle, FastDivMod, TrafficClass};

/// What the row buffer did for an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank had no open row (first access, after refresh, or always
    /// under the closed page policy).
    Closed,
    /// A different row was open and had to be precharged first.
    Conflict,
    /// A write was posted into the write queue; its row outcome is decided
    /// when the queue drains.
    Buffered,
}

/// Per-bank state: which row is open, command availability, and the bounded
/// queue of unfinished requests.
#[derive(Debug, Clone)]
pub struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next command.
    busy_until: Cycle,
    /// Earliest cycle the open row's precharge may *begin* (activate time
    /// plus tRAS).
    ras_until: Cycle,
    /// Ring of the last `read_queue_depth` finish times; the slot at
    /// `ring_idx` is the finish time of the request `depth` requests ago,
    /// which a new request must wait for (bounded-queue backpressure).
    ring: Box<[Cycle]>,
    ring_idx: u32,
}

impl Bank {
    fn new(queue_depth: usize) -> Self {
        Bank {
            open_row: None,
            busy_until: 0,
            ras_until: 0,
            ring: vec![0; queue_depth.max(1)].into_boxed_slice(),
            ring_idx: 0,
        }
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// The cycle until which the bank is busy with its current access.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

/// Result of scheduling one access on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelAccess {
    /// Cycle at which the access started being serviced (after queueing).
    pub start: Cycle,
    /// Cycle at which the requested data has fully crossed the bus (for
    /// buffered writes: the posting cycle — the transfer happens at drain).
    pub finish: Cycle,
    /// Row-buffer behaviour of this access.
    pub row_outcome: RowBufferOutcome,
}

/// One pending entry of the write queue.
#[derive(Debug, Clone, Copy)]
struct WriteEntry {
    bank: u32,
    row: u64,
    /// Payload rounded to the link's minimum transfer granule.
    bytes: u64,
    class: TrafficClass,
    enqueued: Cycle,
    seq: u64,
}

/// Command timing pre-converted to CPU cycles (latency scale applied).
#[derive(Debug, Clone, Copy)]
struct TimingCpu {
    hit: Cycle,
    closed: Cycle,
    t_rp: Cycle,
    t_ras: Cycle,
    t_refi: Cycle,
    t_rfc: Cycle,
}

/// One DRAM channel with its memory-controller front end.
#[derive(Debug, Clone)]
pub struct Channel {
    config: DramConfig,
    timing: TimingCpu,
    banks: Vec<Bank>,
    row_div: FastDivMod,
    bank_div: FastDivMod,
    bus_free: Cycle,
    write_queue: Vec<WriteEntry>,
    next_refresh: Cycle,
    write_seq: u64,
    // Counters.
    busy_cycles: u64,
    accesses: u64,
    row_hits: u64,
    row_conflicts: u64,
    refreshes: u64,
    writes_buffered: u64,
    write_drains: u64,
    /// Bytes actually moved across the data bus, per traffic class (rounded
    /// to the minimum transfer granule). Writes count at drain time.
    transferred: [u64; TrafficClass::ALL.len()],
    /// Bytes posted into the write queue and not yet drained, per class.
    queued: [u64; TrafficClass::ALL.len()],
}

impl Channel {
    /// Create a channel from a device configuration.
    pub fn new(cfg: &DramConfig) -> Self {
        assert!(
            cfg.banks_per_channel > 0,
            "a channel needs at least one bank"
        );
        assert!(
            cfg.write_queue_depth == 0 || cfg.write_low_watermark < cfg.write_high_watermark,
            "write watermarks must satisfy low < high"
        );
        assert!(
            cfg.write_queue_depth == 0 || cfg.write_high_watermark <= cfg.write_queue_depth,
            "write high watermark must fit in the queue"
        );
        let timing = TimingCpu {
            hit: cfg.row_hit_latency(),
            closed: cfg.row_closed_latency(),
            t_rp: cfg.precharge_latency(),
            t_ras: cfg.bank_busy_after_activate(),
            t_refi: cfg.refresh_interval_cycles(),
            t_rfc: cfg.refresh_duration_cycles(),
        };
        Channel {
            timing,
            banks: (0..cfg.banks_per_channel)
                .map(|_| Bank::new(cfg.read_queue_depth))
                .collect(),
            row_div: FastDivMod::new(cfg.row_buffer_bytes),
            bank_div: FastDivMod::new(cfg.banks_per_channel as u64),
            bus_free: 0,
            write_queue: Vec::with_capacity(cfg.write_queue_depth),
            next_refresh: timing.t_refi,
            write_seq: 0,
            busy_cycles: 0,
            accesses: 0,
            row_hits: 0,
            row_conflicts: 0,
            refreshes: 0,
            writes_buffered: 0,
            write_drains: 0,
            transferred: [0; TrafficClass::ALL.len()],
            queued: [0; TrafficClass::ALL.len()],
            config: cfg.clone(),
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total cycles the data bus has been occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of accesses serviced on the banks/bus (buffered writes count
    /// when they drain).
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hit count.
    pub fn row_hit_count(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer conflict count.
    pub fn row_conflict_count(&self) -> u64 {
        self.row_conflicts
    }

    /// Number of all-bank refreshes performed.
    pub fn refresh_count(&self) -> u64 {
        self.refreshes
    }

    /// Number of writes that went through the write queue.
    pub fn buffered_write_count(&self) -> u64 {
        self.writes_buffered
    }

    /// Number of drain bursts (watermark or forced).
    pub fn write_drain_count(&self) -> u64 {
        self.write_drains
    }

    /// Writes currently sitting in the write queue.
    pub fn pending_writes(&self) -> usize {
        self.write_queue.len()
    }

    /// Reads still in flight at cycle `now`, summed over banks. Each bank's
    /// ring holds the finish times of its last `queue_depth` requests, so an
    /// entry strictly after `now` is a request still occupying a queue slot
    /// — exactly the occupancy the bounded-read-queue admission test uses.
    pub fn read_queue_occupancy(&self, now: Cycle) -> usize {
        self.banks
            .iter()
            .map(|b| b.ring.iter().filter(|&&finish| finish > now).count())
            .sum()
    }

    /// Earliest cycle at which the data bus is free.
    pub fn bus_free_at(&self) -> Cycle {
        self.bus_free
    }

    /// Bytes actually transferred on the bus, per traffic class index
    /// (see [`TrafficClass::index`]).
    pub fn transferred_by_class(&self) -> &[u64; TrafficClass::ALL.len()] {
        &self.transferred
    }

    /// Bytes posted to the write queue but not yet drained, per class index.
    pub fn queued_by_class(&self) -> &[u64; TrafficClass::ALL.len()] {
        &self.queued
    }

    #[inline]
    fn decode(&self, addr: Addr) -> (usize, u64) {
        // Interleave banks at row-buffer granularity so a page fill streams
        // within one row.
        let row_id = self.row_div.div(addr.raw());
        (
            self.bank_div.rem(row_id) as usize,
            self.bank_div.div(row_id),
        )
    }

    /// Apply every all-bank refresh scheduled before `now`: close all rows
    /// and block every bank for tRFC.
    fn advance_refresh(&mut self, now: Cycle) {
        let t_refi = self.timing.t_refi;
        if t_refi == 0 || self.next_refresh > now {
            return;
        }
        // Fast-forward long idle gaps: only the refresh nearest `now` can
        // still affect bank availability, the earlier ones just count.
        let behind = now - self.next_refresh;
        if behind > t_refi {
            let skipped = behind / t_refi;
            self.refreshes += skipped;
            self.next_refresh += skipped * t_refi;
        }
        while self.next_refresh <= now {
            let end = self.next_refresh + self.timing.t_rfc;
            for bank in &mut self.banks {
                bank.open_row = None;
                bank.busy_until = bank.busy_until.max(end);
            }
            self.refreshes += 1;
            self.next_refresh += t_refi;
        }
    }

    /// Service one request on its bank and the bus, returning its timing.
    fn service(
        &mut self,
        now: Cycle,
        bank_idx: usize,
        row: u64,
        bytes: u64,
        class: TrafficClass,
    ) -> ChannelAccess {
        let t = self.timing;
        let bank = &mut self.banks[bank_idx];

        // Bounded queue: wait for the request `depth` ago to finish, and for
        // the bank to accept a command.
        let slot_free = bank.ring[bank.ring_idx as usize];
        let start = now.max(bank.busy_until).max(slot_free);

        let closed_policy = self.config.page_policy == PagePolicy::Closed;
        let (outcome, activate_at, data_ready) = match bank.open_row {
            Some(open) if open == row && !closed_policy => {
                (RowBufferOutcome::Hit, None, start + t.hit)
            }
            Some(_) => {
                // Precharge may begin only once tRAS from the activate that
                // opened the row has elapsed; the new activate follows tRP
                // later, and data is ready tRCD + tCAS after that.
                let precharge_at = start.max(bank.ras_until);
                let activate = precharge_at + t.t_rp;
                (
                    RowBufferOutcome::Conflict,
                    Some(activate),
                    activate + t.closed,
                )
            }
            None => (RowBufferOutcome::Closed, Some(start), start + t.closed),
        };

        let transfer = self.config.transfer_cycles(bytes);
        let bus_start = data_ready.max(self.bus_free);
        let finish = bus_start + transfer;

        // Bus accounting.
        self.bus_free = finish;
        self.busy_cycles += transfer;
        self.transferred[class.index()] += self.config.round_to_min_transfer(bytes);
        self.accesses += 1;
        match outcome {
            RowBufferOutcome::Hit => self.row_hits += 1,
            RowBufferOutcome::Conflict => self.row_conflicts += 1,
            _ => {}
        }

        // Bank bookkeeping.
        bank.ring[bank.ring_idx as usize] = finish;
        bank.ring_idx = (bank.ring_idx + 1) % bank.ring.len() as u32;
        if closed_policy {
            // Auto-precharge: the row closes, and the next activate must
            // respect tRAS + tRP from this one.
            bank.open_row = None;
            let activate = activate_at.unwrap_or(start);
            bank.busy_until = data_ready.max(activate + t.t_ras + t.t_rp);
        } else {
            bank.open_row = Some(row);
            match outcome {
                // Row hits pipeline: the next column command only needs the
                // bus spacing; the bus itself serializes the data.
                RowBufferOutcome::Hit => bank.busy_until = start + transfer,
                _ => {
                    let activate = activate_at.expect("activate set for non-hit");
                    bank.busy_until = data_ready;
                    bank.ras_until = activate + t.t_ras;
                }
            }
        }

        ChannelAccess {
            start,
            finish,
            row_outcome: outcome,
        }
    }

    /// Schedule a read of `bytes` at `addr`, arriving at `now`.
    pub fn read(
        &mut self,
        now: Cycle,
        addr: Addr,
        bytes: u64,
        class: TrafficClass,
    ) -> ChannelAccess {
        self.advance_refresh(now);
        let (bank, row) = self.decode(addr);
        self.service(now, bank, row, bytes, class)
    }

    /// Post a write of `bytes` at `addr` at `now`. With a write queue the
    /// write is acknowledged immediately and drained later; without one it
    /// is serviced like a read.
    pub fn write(
        &mut self,
        now: Cycle,
        addr: Addr,
        bytes: u64,
        class: TrafficClass,
    ) -> ChannelAccess {
        self.advance_refresh(now);
        let (bank, row) = self.decode(addr);
        if self.config.write_queue_depth == 0 {
            return self.service(now, bank, row, bytes, class);
        }
        if self.write_queue.len() == self.config.write_queue_depth {
            // Queue full (possible when the low watermark equals capacity
            // minus one burst): force a drain before accepting the write.
            self.drain_writes_to(now, self.config.write_low_watermark);
        }
        let rounded = self.config.round_to_min_transfer(bytes);
        self.queued[class.index()] += rounded;
        self.writes_buffered += 1;
        self.write_queue.push(WriteEntry {
            bank: bank as u32,
            row,
            bytes: rounded,
            class,
            enqueued: now,
            seq: self.write_seq,
        });
        self.write_seq += 1;
        if self.write_queue.len() >= self.config.write_high_watermark {
            self.drain_writes_to(now, self.config.write_low_watermark);
        }
        ChannelAccess {
            start: now,
            finish: now,
            row_outcome: RowBufferOutcome::Buffered,
        }
    }

    /// Drain queued writes until at most `target` remain, picking row-buffer
    /// hits first under FR-FCFS (oldest first under FCFS).
    fn drain_writes_to(&mut self, now: Cycle, target: usize) {
        if self.write_queue.len() > target {
            self.write_drains += 1;
        }
        while self.write_queue.len() > target {
            let pick = match self.config.scheduler {
                SchedulerKind::FrFcfs => self.pick_fr_fcfs(),
                SchedulerKind::Fcfs => self.pick_oldest(),
            };
            let e = self.write_queue.swap_remove(pick);
            self.queued[e.class.index()] -= e.bytes;
            self.service(
                now.max(e.enqueued),
                e.bank as usize,
                e.row,
                e.bytes,
                e.class,
            );
        }
    }

    /// Index of the queued write with the lowest sequence number.
    fn pick_oldest(&self) -> usize {
        let mut best = 0;
        for (i, e) in self.write_queue.iter().enumerate() {
            if e.seq < self.write_queue[best].seq {
                best = i;
            }
        }
        best
    }

    /// FR-FCFS: the oldest write whose row is open in its bank; otherwise
    /// the oldest write overall.
    fn pick_fr_fcfs(&self) -> usize {
        let mut best = 0;
        let mut best_key = (true, u64::MAX); // (is_row_miss, seq) — minimize
        for (i, e) in self.write_queue.iter().enumerate() {
            let row_miss = self.banks[e.bank as usize].open_row != Some(e.row);
            let key = (row_miss, e.seq);
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }

    /// Force the write queue empty (end-of-run accounting, tests).
    pub fn drain_all_writes(&mut self, now: Cycle) {
        self.drain_writes_to(now, 0);
    }

    /// Bus utilization over `elapsed` cycles (clamped to [0, 1]).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / elapsed as f64).min(1.0)
        }
    }

    /// Serialize the channel's mutable state (bank rows and timing debts,
    /// write queue, refresh phase, counters). Configuration and the derived
    /// dividers are not written — the restoring channel is built cold from
    /// the same [`DramConfig`].
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.seq_with(&self.banks, |w, bank| {
            match bank.open_row {
                Some(row) => {
                    w.bool(true);
                    w.u64(row);
                }
                None => w.bool(false),
            }
            w.u64(bank.busy_until);
            w.u64(bank.ras_until);
            w.seq_with(&bank.ring, |w, t| w.u64(*t));
            w.u32(bank.ring_idx);
        });
        w.u64(self.bus_free);
        // The write queue is drained via `swap_remove`, so element order is
        // semantic — write it verbatim.
        w.seq_with(&self.write_queue, |w, e| {
            w.u32(e.bank);
            w.u64(e.row);
            w.u64(e.bytes);
            e.class.save(w);
            w.u64(e.enqueued);
            w.u64(e.seq);
        });
        w.u64(self.next_refresh);
        w.u64(self.write_seq);
        w.u64(self.busy_cycles);
        w.u64(self.accesses);
        w.u64(self.row_hits);
        w.u64(self.row_conflicts);
        w.u64(self.refreshes);
        w.u64(self.writes_buffered);
        w.u64(self.write_drains);
        for v in self.transferred.iter().chain(self.queued.iter()) {
            w.u64(*v);
        }
    }

    /// Restore mutable state saved by [`Channel::save_state`] into a channel
    /// built from the same configuration. Geometry mismatches and internally
    /// inconsistent images return [`SnapshotError::Corrupt`].
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let bank_count = r.seq_len(22)?;
        if bank_count != self.banks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "channel image has {bank_count} banks, configuration has {}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.open_row = if r.bool()? { Some(r.u64()?) } else { None };
            bank.busy_until = r.u64()?;
            bank.ras_until = r.u64()?;
            let ring_len = r.seq_len(8)?;
            if ring_len != bank.ring.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "bank ring holds {ring_len} slots, configuration has {}",
                    bank.ring.len()
                )));
            }
            for slot in bank.ring.iter_mut() {
                *slot = r.u64()?;
            }
            let ring_idx = r.u32()?;
            if ring_idx as usize >= bank.ring.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "bank ring index {ring_idx} out of range"
                )));
            }
            bank.ring_idx = ring_idx;
        }
        self.bus_free = r.u64()?;
        let queued_writes = r.seq_len(34)?;
        if self.config.write_queue_depth == 0 && queued_writes > 0 {
            return Err(SnapshotError::Corrupt(
                "image has queued writes but the write queue is disabled".to_string(),
            ));
        }
        if queued_writes > self.config.write_queue_depth {
            return Err(SnapshotError::Corrupt(format!(
                "image has {queued_writes} queued writes, queue depth is {}",
                self.config.write_queue_depth
            )));
        }
        self.write_queue.clear();
        for _ in 0..queued_writes {
            let bank = r.u32()?;
            if bank as usize >= self.banks.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "queued write targets bank {bank}, channel has {}",
                    self.banks.len()
                )));
            }
            self.write_queue.push(WriteEntry {
                bank,
                row: r.u64()?,
                bytes: r.u64()?,
                class: TrafficClass::restore(r)?,
                enqueued: r.u64()?,
                seq: r.u64()?,
            });
        }
        self.next_refresh = r.u64()?;
        self.write_seq = r.u64()?;
        self.busy_cycles = r.u64()?;
        self.accesses = r.u64()?;
        self.row_hits = r.u64()?;
        self.row_conflicts = r.u64()?;
        self.refreshes = r.u64()?;
        self.writes_buffered = r.u64()?;
        self.write_drains = r.u64()?;
        for v in self.transferred.iter_mut().chain(self.queued.iter_mut()) {
            *v = r.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::in_package_default()
    }

    /// A config with refresh off and unbuffered writes: every access is
    /// serviced immediately, which the timing-pinning tests rely on.
    fn bare(banks: usize) -> DramConfig {
        DramConfig {
            banks_per_channel: banks,
            write_queue_depth: 0,
            write_high_watermark: 0,
            write_low_watermark: 0,
            timing: crate::DramTiming::no_refresh(),
            ..cfg()
        }
    }

    #[test]
    fn first_access_is_row_closed() {
        let mut ch = Channel::new(&bare(8));
        let a = ch.read(0, Addr::new(0x1000), 64, TrafficClass::HitData);
        assert_eq!(a.row_outcome, RowBufferOutcome::Closed);
        assert!(a.finish > a.start);
    }

    #[test]
    fn read_queue_occupancy_counts_in_flight_requests() {
        let mut ch = Channel::new(&bare(2));
        assert_eq!(ch.read_queue_occupancy(0), 0);
        let a = ch.read(0, Addr::new(0), 64, TrafficClass::HitData);
        let b = ch.read(0, Addr::new(64), 64, TrafficClass::HitData);
        // Both requests occupy slots until their finish times pass.
        assert_eq!(ch.read_queue_occupancy(0), 2);
        let first_done = a.finish.min(b.finish);
        let last_done = a.finish.max(b.finish);
        assert_eq!(ch.read_queue_occupancy(first_done), 1);
        assert_eq!(ch.read_queue_occupancy(last_done), 0);
    }

    #[test]
    fn same_row_hits_after_first_access() {
        let mut ch = Channel::new(&bare(8));
        let first = ch.read(0, Addr::new(0x0), 64, TrafficClass::HitData);
        let second = ch.read(first.finish, Addr::new(0x40), 64, TrafficClass::HitData);
        assert_eq!(second.row_outcome, RowBufferOutcome::Hit);
        // Row hit latency should be shorter than the closed access.
        assert!(second.finish - second.start <= first.finish - first.start);
    }

    /// Pin the exact closed / hit / conflict service times of the paper
    /// timing (tCAS 40, tRCD+tCAS 81, tRP 40, tRAS 97 CPU cycles; 64 B
    /// transfer 8 cycles).
    #[test]
    fn access_latencies_pinned() {
        let c = bare(2);
        let mut ch = Channel::new(&c);
        // Closed: activate at 0, data at 81, transfer 8 → finish 89.
        let closed = ch.read(0, Addr::new(0), 64, TrafficClass::HitData);
        assert_eq!((closed.start, closed.finish), (0, 89));
        // Hit on the open row, issued after the bus is free: data at
        // 1000 + 40, transfer 8 → 1048.
        let hit = ch.read(1000, Addr::new(64), 64, TrafficClass::HitData);
        assert_eq!(hit.row_outcome, RowBufferOutcome::Hit);
        assert_eq!((hit.start, hit.finish), (1000, 1048));
        // Conflict long after tRAS expired: precharge 40 + activate+CAS 81
        // + transfer 8 → 129 cycles of service time.
        let conflict_addr = Addr::new(2 * c.row_buffer_bytes);
        let conflict = ch.read(5000, conflict_addr, 64, TrafficClass::HitData);
        assert_eq!(conflict.row_outcome, RowBufferOutcome::Conflict);
        assert_eq!((conflict.start, conflict.finish), (5000, 5129));
    }

    /// Back-to-back conflicts to one bank: the second conflict's precharge
    /// must wait for the first activate's tRAS window, and the new tRAS debt
    /// is anchored at the *new activate* (tRP after the precharge), not at
    /// the request start.
    #[test]
    fn back_to_back_conflict_timing_respects_ras_and_rp() {
        let c = bare(1); // one bank: every row maps to it
        let row = c.row_buffer_bytes;
        let mut ch = Channel::new(&c);
        // Open row 0: activate at 0 → ras_until = 97.
        ch.read(0, Addr::new(0), 64, TrafficClass::HitData);
        // Conflict at t=10 (bank busy until data_ready=81): start 81, but
        // precharge may only begin at ras_until 97 → activate at 137, data
        // at 218, finish 226.
        let second = ch.read(10, Addr::new(row), 64, TrafficClass::HitData);
        assert_eq!(second.row_outcome, RowBufferOutcome::Conflict);
        assert_eq!(second.finish, 226);
        // Third conflict right away: start at data_ready 218; the second
        // activate happened at 137, so precharge waits until 137+97=234,
        // activate 274, data 355, finish 363. If tRAS were anchored at the
        // request start (the pre-fix bug), this would finish 40 cycles
        // earlier.
        let third = ch.read(220, Addr::new(2 * row), 64, TrafficClass::HitData);
        assert_eq!(third.row_outcome, RowBufferOutcome::Conflict);
        assert_eq!(third.finish, 363);
    }

    #[test]
    fn row_hits_stream_at_bus_rate() {
        let c = bare(8);
        let mut ch = Channel::new(&c);
        let mut finishes = Vec::new();
        finishes.push(ch.read(0, Addr::new(0), 64, TrafficClass::HitData));
        for i in 1..16u64 {
            let a = ch.read(0, Addr::new(i * 64), 64, TrafficClass::HitData);
            assert_eq!(a.row_outcome, RowBufferOutcome::Hit);
            finishes.push(a);
        }
        // After the one-time CAS ramp, consecutive hits transfer
        // back-to-back on the bus (8 CPU cycles per 64 B line).
        let step = c.transfer_cycles(64);
        for w in finishes.windows(2).skip(2) {
            assert_eq!(w[1].finish, w[0].finish + step);
        }
    }

    #[test]
    fn back_to_back_accesses_queue_on_the_bus() {
        let c = bare(8);
        let mut ch = Channel::new(&c);
        // Two accesses to different banks issued at the same time must
        // serialize on the data bus.
        let a = ch.read(0, Addr::new(0), 64, TrafficClass::HitData);
        let b = ch.read(0, Addr::new(c.row_buffer_bytes), 64, TrafficClass::HitData);
        assert!(b.finish >= a.finish + c.transfer_cycles(64));
    }

    #[test]
    fn bounded_bank_queue_backpressures() {
        let mut c = bare(1);
        c.read_queue_depth = 2;
        let mut ch = Channel::new(&c);
        // Saturate one bank with same-row hits from t=0. With a depth-2
        // queue, request i must wait for request i-2 to finish.
        let mut finishes = Vec::new();
        for i in 0..8u64 {
            let a = ch.read(0, Addr::new(i * 64), 64, TrafficClass::HitData);
            finishes.push(a);
        }
        for i in 2..8usize {
            assert!(
                finishes[i].start >= finishes[i - 2].finish,
                "request {i} started at {} before request {} finished at {}",
                finishes[i].start,
                i - 2,
                finishes[i - 2].finish
            );
        }
    }

    #[test]
    fn large_transfers_occupy_bus_longer() {
        let mut ch_small = Channel::new(&bare(8));
        let mut ch_big = Channel::new(&bare(8));
        let small = ch_small.read(0, Addr::new(0), 64, TrafficClass::HitData);
        let big = ch_big.read(0, Addr::new(0), 4096, TrafficClass::HitData);
        assert!(big.finish - big.start > small.finish - small.start);
        assert!(ch_big.busy_cycles() > ch_small.busy_cycles());
    }

    #[test]
    fn writes_are_posted_and_drain_at_the_high_watermark() {
        let mut c = bare(8);
        c.write_queue_depth = 8;
        c.write_high_watermark = 4;
        c.write_low_watermark = 1;
        let mut ch = Channel::new(&c);
        for i in 0..3u64 {
            let w = ch.write(0, Addr::new(i * 64), 64, TrafficClass::Writeback);
            assert_eq!(w.row_outcome, RowBufferOutcome::Buffered);
            assert_eq!(w.finish, 0, "posted writes are acknowledged instantly");
        }
        assert_eq!(ch.pending_writes(), 3);
        assert_eq!(ch.access_count(), 0, "nothing drained yet");
        // The 4th write trips the high watermark: drain down to 1.
        ch.write(0, Addr::new(3 * 64), 64, TrafficClass::Writeback);
        assert_eq!(ch.pending_writes(), 1);
        assert_eq!(ch.access_count(), 3);
        assert_eq!(ch.write_drain_count(), 1);
        assert!(ch.busy_cycles() > 0);
    }

    #[test]
    fn fr_fcfs_drains_row_hits_first() {
        // One bank; queue writes to rows 0,1,0,0 then force a drain. Under
        // FR-FCFS the row-0 writes coalesce (1 conflict); under FCFS the
        // drain ping-pongs (2 conflicts).
        let mk = |sched| {
            let mut c = bare(1);
            c.write_queue_depth = 8;
            c.write_high_watermark = 8;
            c.write_low_watermark = 0;
            c.scheduler = sched;
            c
        };
        let row = cfg().row_buffer_bytes;
        let run = |c: &DramConfig| {
            let mut ch = Channel::new(c);
            // Open row 0.
            ch.read(0, Addr::new(0), 64, TrafficClass::HitData);
            for (i, r) in [0u64, 1, 0, 0].iter().enumerate() {
                ch.write(
                    100,
                    Addr::new(r * row + i as u64 * 64),
                    64,
                    TrafficClass::Writeback,
                );
            }
            ch.drain_all_writes(100);
            (ch.row_hit_count(), ch.row_conflict_count())
        };
        let (fr_hits, fr_conflicts) = run(&mk(SchedulerKind::FrFcfs));
        let (fcfs_hits, fcfs_conflicts) = run(&mk(SchedulerKind::Fcfs));
        assert!(fr_hits > fcfs_hits, "{fr_hits} vs {fcfs_hits}");
        assert!(
            fr_conflicts < fcfs_conflicts,
            "{fr_conflicts} vs {fcfs_conflicts}"
        );
    }

    #[test]
    fn queued_bytes_reconcile_with_transfers() {
        let mut c = bare(4);
        c.write_queue_depth = 16;
        c.write_high_watermark = 12;
        c.write_low_watermark = 2;
        let mut ch = Channel::new(&c);
        let mut posted = 0u64;
        for i in 0..40u64 {
            ch.write(
                i,
                Addr::new(i * 4096),
                64 + (i % 3) * 8,
                TrafficClass::Writeback,
            );
            posted += c.round_to_min_transfer(64 + (i % 3) * 8);
        }
        let wb = TrafficClass::Writeback.index();
        assert_eq!(
            ch.transferred_by_class()[wb] + ch.queued_by_class()[wb],
            posted
        );
        ch.drain_all_writes(10_000);
        assert_eq!(ch.queued_by_class()[wb], 0);
        assert_eq!(ch.transferred_by_class()[wb], posted);
    }

    #[test]
    fn refresh_blocks_banks_and_closes_rows() {
        let mut c = bare(2);
        c.timing = crate::DramTiming::paper_default();
        let refi = c.refresh_interval_cycles();
        let rfc = c.refresh_duration_cycles();
        let mut ch = Channel::new(&c);
        // Open a row well before the first refresh.
        ch.read(0, Addr::new(0), 64, TrafficClass::HitData);
        assert_eq!(ch.refresh_count(), 0);
        // Just past the refresh boundary: the row was closed by the refresh
        // (Closed outcome, not Hit) and service starts no earlier than the
        // refresh window's end.
        let a = ch.read(refi + 1, Addr::new(64), 64, TrafficClass::HitData);
        assert_eq!(ch.refresh_count(), 1);
        assert_eq!(a.row_outcome, RowBufferOutcome::Closed);
        assert!(a.start >= refi + rfc);
        // A long idle gap accounts all missed refreshes.
        ch.read(10 * refi + 5, Addr::new(128), 64, TrafficClass::HitData);
        assert_eq!(ch.refresh_count(), 10);
    }

    #[test]
    fn closed_page_policy_never_hits() {
        let mut c = bare(8);
        c.page_policy = PagePolicy::Closed;
        let mut ch = Channel::new(&c);
        let first = ch.read(0, Addr::new(0), 64, TrafficClass::HitData);
        let second = ch.read(first.finish, Addr::new(64), 64, TrafficClass::HitData);
        assert_eq!(second.row_outcome, RowBufferOutcome::Closed);
        assert_eq!(ch.row_hit_count(), 0);
        assert_eq!(ch.row_conflict_count(), 0);
        // Under the open policy the same pair is a hit.
        let mut open = Channel::new(&bare(8));
        let f = open.read(0, Addr::new(0), 64, TrafficClass::HitData);
        assert_eq!(
            open.read(f.finish, Addr::new(64), 64, TrafficClass::HitData)
                .row_outcome,
            RowBufferOutcome::Hit
        );
    }

    #[test]
    fn utilization_bounded() {
        let mut ch = Channel::new(&bare(8));
        for i in 0..100u64 {
            ch.read(i, Addr::new(i * 64), 64, TrafficClass::HitData);
        }
        let u = ch.utilization(ch.bus_free_at());
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        assert_eq!(ch.utilization(0), 0.0);
        assert_eq!(ch.access_count(), 100);
    }

    #[test]
    fn unbuffered_mode_accepts_default_watermarks() {
        // Disabling the write queue must not require zeroing the watermarks
        // too: depth 0 leaves them unused.
        let mut c = cfg();
        c.write_queue_depth = 0;
        let mut ch = Channel::new(&c);
        let w = ch.write(0, Addr::new(0), 64, TrafficClass::Writeback);
        assert_ne!(w.row_outcome, RowBufferOutcome::Buffered);
        assert_eq!(ch.pending_writes(), 0);
        assert_eq!(ch.access_count(), 1);
    }

    #[test]
    #[should_panic]
    fn channel_requires_banks() {
        let mut c = cfg();
        c.banks_per_channel = 0;
        let _ = Channel::new(&c);
    }

    #[test]
    #[should_panic]
    fn watermarks_must_be_ordered() {
        let mut c = cfg();
        c.write_low_watermark = c.write_high_watermark;
        let _ = Channel::new(&c);
    }
}
