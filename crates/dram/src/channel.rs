//! A single DRAM channel: banks with row-buffer state plus a shared data bus.
//!
//! Timing model per access:
//!
//! 1. The target bank is selected from the address (bank interleaving at
//!    row-buffer granularity).
//! 2. The access waits until the bank is free, then pays the row-buffer
//!    latency (hit / closed / conflict).
//! 3. The data transfer then waits for the channel's data bus and occupies it
//!    for `transfer_cycles(bytes)`.
//!
//! This is not a full DDR protocol model (no command bus, no tFAW/tWTR), but
//! it captures the two effects the paper's evaluation depends on: *queueing
//! under bandwidth pressure* and *row-buffer locality* (sequential page fills
//! are cheaper per byte than scattered line accesses).

use crate::config::{DramConfig, DramTiming};
use banshee_common::{Addr, Cycle, FastDivMod};

/// What the row buffer did for an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank had no open row (first access or after an explicit close).
    Closed,
    /// A different row was open and had to be precharged first.
    Conflict,
}

/// Per-bank state: which row is open and until when the bank is busy.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
    /// Earliest cycle a precharge may complete, i.e. activate time + tRAS.
    ras_until: Cycle,
}

impl Bank {
    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// The cycle until which the bank is busy with its current access.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

/// Result of scheduling one access on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelAccess {
    /// Cycle at which the access started being serviced (after queueing).
    pub start: Cycle,
    /// Cycle at which the requested data has fully crossed the bus.
    pub finish: Cycle,
    /// Row-buffer behaviour of this access.
    pub row_outcome: RowBufferOutcome,
}

/// One DRAM channel.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    /// Row-buffer-size divider for row addressing (shift for the usual
    /// power-of-two row sizes), fixed at construction.
    row_div: FastDivMod,
    /// Bank-count divider for bank interleaving.
    bank_div: FastDivMod,
    bus_free: Cycle,
    busy_cycles: u64,
    accesses: u64,
    row_hits: u64,
    row_conflicts: u64,
}

impl Channel {
    /// Create a channel with `banks` banks and rows of `row_buffer_bytes`.
    pub fn new(banks: usize, row_buffer_bytes: u64) -> Self {
        assert!(banks > 0, "a channel needs at least one bank");
        Channel {
            banks: vec![Bank::default(); banks],
            row_div: FastDivMod::new(row_buffer_bytes),
            bank_div: FastDivMod::new(banks as u64),
            bus_free: 0,
            busy_cycles: 0,
            accesses: 0,
            row_hits: 0,
            row_conflicts: 0,
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total cycles the data bus has been occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of accesses serviced.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hit count.
    pub fn row_hit_count(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer conflict count.
    pub fn row_conflict_count(&self) -> u64 {
        self.row_conflicts
    }

    /// Earliest cycle at which the data bus is free.
    pub fn bus_free_at(&self) -> Cycle {
        self.bus_free
    }

    /// Schedule an access of `bytes` bytes to `addr`, arriving at `now`.
    ///
    /// Returns when the access starts being serviced and when its data has
    /// fully transferred. Bank and bus state are updated.
    pub fn access(
        &mut self,
        cfg: &DramConfig,
        timing: &DramTiming,
        now: Cycle,
        addr: Addr,
        bytes: u64,
    ) -> ChannelAccess {
        self.accesses += 1;

        // Interleave banks at row-buffer granularity so a page fill streams
        // within one row. The construction-time divider matches
        // `cfg.row_buffer_bytes` on every normal path (DramDevice builds
        // both from one config); a caller passing a different config is
        // still honored exactly, just without the fast path.
        let row_id = if self.row_div.n() == cfg.row_buffer_bytes {
            self.row_div.div(addr.raw())
        } else {
            addr.raw() / cfg.row_buffer_bytes
        };
        let bank_idx = self.bank_div.rem(row_id) as usize;
        let row = self.bank_div.div(row_id);

        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.busy_until);

        let (outcome, access_latency, precharge_wait) = match bank.open_row {
            Some(open) if open == row => (RowBufferOutcome::Hit, cfg.row_hit_latency(), 0),
            Some(_) => {
                // Must respect tRAS before the precharge of the old row.
                let wait = bank.ras_until.saturating_sub(start);
                (
                    RowBufferOutcome::Conflict,
                    cfg.row_conflict_latency(timing),
                    wait,
                )
            }
            None => (RowBufferOutcome::Closed, cfg.row_closed_latency(timing), 0),
        };

        match outcome {
            RowBufferOutcome::Hit => self.row_hits += 1,
            RowBufferOutcome::Conflict => self.row_conflicts += 1,
            RowBufferOutcome::Closed => {}
        }

        let data_ready = start + precharge_wait + access_latency;
        let transfer = cfg.transfer_cycles(bytes);
        let bus_start = data_ready.max(self.bus_free);
        let finish = bus_start + transfer;

        // Update state.
        self.bus_free = finish;
        self.busy_cycles += transfer;
        let bank = &mut self.banks[bank_idx];
        bank.open_row = Some(row);
        bank.busy_until = finish;
        if outcome != RowBufferOutcome::Hit {
            bank.ras_until = start + precharge_wait + cfg.bank_busy_after_activate(timing);
        }

        ChannelAccess {
            start,
            finish,
            row_outcome: outcome,
        }
    }

    /// Bus utilization over `elapsed` cycles (clamped to [0, 1]).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy_cycles as f64 / elapsed as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::in_package_default()
    }

    #[test]
    fn first_access_is_row_closed() {
        let c = cfg();
        let t = DramTiming::default();
        let mut ch = Channel::new(8, cfg().row_buffer_bytes);
        let a = ch.access(&c, &t, 0, Addr::new(0x1000), 64);
        assert_eq!(a.row_outcome, RowBufferOutcome::Closed);
        assert!(a.finish > a.start);
    }

    #[test]
    fn same_row_hits_after_first_access() {
        let c = cfg();
        let t = DramTiming::default();
        let mut ch = Channel::new(8, cfg().row_buffer_bytes);
        let first = ch.access(&c, &t, 0, Addr::new(0x0), 64);
        let second = ch.access(&c, &t, first.finish, Addr::new(0x40), 64);
        assert_eq!(second.row_outcome, RowBufferOutcome::Hit);
        // Row hit latency should be shorter than the closed access.
        assert!(second.finish - second.start <= first.finish - first.start);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let c = cfg();
        let t = DramTiming::default();
        let mut ch = Channel::new(2, cfg().row_buffer_bytes);
        // Rows map to banks via row_id % 2; row 0 and row 2 share bank 0.
        let first = ch.access(&c, &t, 0, Addr::new(0), 64);
        let conflict_addr = Addr::new(2 * c.row_buffer_bytes);
        let second = ch.access(&c, &t, first.finish + 1000, conflict_addr, 64);
        assert_eq!(second.row_outcome, RowBufferOutcome::Conflict);
        assert_eq!(ch.row_conflict_count(), 1);
    }

    #[test]
    fn back_to_back_accesses_queue_on_the_bus() {
        let c = cfg();
        let t = DramTiming::default();
        let mut ch = Channel::new(8, cfg().row_buffer_bytes);
        // Two accesses to different banks issued at the same time must
        // serialize on the data bus.
        let a = ch.access(&c, &t, 0, Addr::new(0), 64);
        let b = ch.access(&c, &t, 0, Addr::new(c.row_buffer_bytes), 64);
        assert!(b.finish >= a.finish + c.transfer_cycles(64));
    }

    #[test]
    fn large_transfers_occupy_bus_longer() {
        let c = cfg();
        let t = DramTiming::default();
        let mut ch_small = Channel::new(8, cfg().row_buffer_bytes);
        let mut ch_big = Channel::new(8, cfg().row_buffer_bytes);
        let small = ch_small.access(&c, &t, 0, Addr::new(0), 64);
        let big = ch_big.access(&c, &t, 0, Addr::new(0), 4096);
        assert!(big.finish - big.start > small.finish - small.start);
        assert!(ch_big.busy_cycles() > ch_small.busy_cycles());
    }

    #[test]
    fn utilization_bounded() {
        let c = cfg();
        let t = DramTiming::default();
        let mut ch = Channel::new(8, cfg().row_buffer_bytes);
        for i in 0..100u64 {
            ch.access(&c, &t, i, Addr::new(i * 64), 64);
        }
        let u = ch.utilization(ch.bus_free_at());
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        assert_eq!(ch.utilization(0), 0.0);
        assert_eq!(ch.access_count(), 100);
    }

    #[test]
    #[should_panic]
    fn channel_requires_banks() {
        let _ = Channel::new(0, cfg().row_buffer_bytes);
    }
}
