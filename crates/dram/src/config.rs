//! DRAM timing and organization configuration.

use banshee_common::{Cycle, CyclesPerSec, MemSize};
use serde::{Deserialize, Serialize};

/// Raw DRAM timing parameters, expressed in DRAM *bus* clock cycles (the
/// paper's Table 2 lists 10-10-10-24 at a 667 MHz bus clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Column access strobe latency (read command → first data beat).
    pub t_cas: u64,
    /// Row-to-column delay (activate → read command).
    pub t_rcd: u64,
    /// Row precharge time (precharge → activate).
    pub t_rp: u64,
    /// Row active time (activate → precharge allowed).
    pub t_ras: u64,
}

impl DramTiming {
    /// The paper's default timing: tCAS-tRCD-tRP-tRAS = 10-10-10-24.
    pub const fn paper_default() -> Self {
        DramTiming {
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_ras: 24,
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full configuration of one DRAM device (a set of identical channels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Number of banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer (DRAM page) size per bank, in bytes.
    pub row_buffer_bytes: u64,
    /// Bus width in bytes per channel (128 bits = 16 B in the paper).
    pub bus_bytes: u64,
    /// DRAM bus clock frequency. Data rate is double (DDR).
    pub bus_clock: CyclesPerSec,
    /// CPU core clock, used to convert DRAM timing into CPU cycles.
    pub cpu_clock: CyclesPerSec,
    /// Minimum data-transfer granule in bytes (32 B for HBM-like links;
    /// this is why a 64 B line + 8 B tag costs 96 B).
    pub min_transfer_bytes: u64,
    /// Multiplier applied to the row access latency portion (1.0 = paper
    /// default). Figure 8(b) sweeps DRAM-cache latency to 66% and 50%.
    pub latency_scale: f64,
    /// Total device capacity (used for sanity checks / cache sizing, not for
    /// timing).
    pub capacity: MemSize,
}

impl DramConfig {
    /// The paper's off-package DRAM: 1 channel of DDR-1333 with a 128-bit bus
    /// (≈ 21.3 GB/s peak).
    pub fn off_package_default() -> Self {
        DramConfig {
            channels: 1,
            banks_per_channel: 8,
            row_buffer_bytes: 8 * 1024,
            bus_bytes: 16,
            bus_clock: CyclesPerSec::mhz(667.0),
            cpu_clock: CyclesPerSec::ghz(2.7),
            min_transfer_bytes: 32,
            latency_scale: 1.0,
            capacity: MemSize::gib(16),
        }
    }

    /// The paper's in-package DRAM: 4 channels of the same technology
    /// (≈ 85 GB/s peak), 1 GB capacity.
    pub fn in_package_default() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 8,
            row_buffer_bytes: 8 * 1024,
            bus_bytes: 16,
            bus_clock: CyclesPerSec::mhz(667.0),
            cpu_clock: CyclesPerSec::ghz(2.7),
            min_transfer_bytes: 32,
            latency_scale: 1.0,
            capacity: MemSize::gib(1),
        }
    }

    /// Peak bandwidth in bytes per second (DDR: two beats per bus clock).
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        self.channels as f64 * self.bus_bytes as f64 * 2.0 * self.bus_clock.hz()
    }

    /// Peak bandwidth in GB/s (decimal gigabytes, as the paper quotes).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.peak_bandwidth_bytes_per_sec() / 1e9
    }

    /// How many CPU cycles one channel's bus is occupied to move `bytes`
    /// (after rounding up to the minimum transfer granule).
    pub fn transfer_cycles(&self, bytes: u64) -> Cycle {
        let bytes = self.round_to_min_transfer(bytes);
        // Bytes moved per bus clock: bus width × 2 (DDR).
        let bytes_per_bus_clock = self.bus_bytes * 2;
        let bus_clocks = bytes.div_ceil(bytes_per_bus_clock);
        self.cpu_clock
            .convert_cycles_from(bus_clocks, self.bus_clock)
            .max(1)
    }

    /// Round a byte count up to the link's minimum transfer granule.
    pub fn round_to_min_transfer(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.min_transfer_bytes) * self.min_transfer_bytes
    }

    /// Row-buffer-hit access latency (CAS only) in CPU cycles, with the
    /// latency scale applied.
    pub fn row_hit_latency(&self) -> Cycle {
        self.scale_bus_cycles(DramTiming::paper_default().t_cas)
    }

    /// Latency for an access to a closed row (activate + CAS) in CPU cycles.
    pub fn row_closed_latency(&self, timing: &DramTiming) -> Cycle {
        self.scale_bus_cycles(timing.t_rcd + timing.t_cas)
    }

    /// Latency for a row-buffer conflict (precharge + activate + CAS) in CPU
    /// cycles.
    pub fn row_conflict_latency(&self, timing: &DramTiming) -> Cycle {
        self.scale_bus_cycles(timing.t_rp + timing.t_rcd + timing.t_cas)
    }

    /// Minimum time a bank stays busy after an activate (tRAS), in CPU cycles.
    pub fn bank_busy_after_activate(&self, timing: &DramTiming) -> Cycle {
        self.scale_bus_cycles(timing.t_ras)
    }

    fn scale_bus_cycles(&self, bus_cycles: u64) -> Cycle {
        let cpu = self
            .cpu_clock
            .convert_cycles_from(bus_cycles, self.bus_clock) as f64;
        (cpu * self.latency_scale).round().max(1.0) as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths_match_table2() {
        let off = DramConfig::off_package_default();
        let inp = DramConfig::in_package_default();
        // Paper: 21 GB/s off-package, 85 GB/s in-package.
        assert!(
            (off.peak_bandwidth_gbps() - 21.3).abs() < 0.5,
            "{}",
            off.peak_bandwidth_gbps()
        );
        assert!(
            (inp.peak_bandwidth_gbps() - 85.3).abs() < 2.0,
            "{}",
            inp.peak_bandwidth_gbps()
        );
    }

    #[test]
    fn min_transfer_rounding() {
        let c = DramConfig::in_package_default();
        assert_eq!(c.round_to_min_transfer(0), 0);
        assert_eq!(c.round_to_min_transfer(1), 32);
        assert_eq!(c.round_to_min_transfer(32), 32);
        assert_eq!(c.round_to_min_transfer(64), 64);
        assert_eq!(c.round_to_min_transfer(72), 96);
        // 64B line + tag = 96B, the paper's headline overhead example.
        assert_eq!(c.round_to_min_transfer(64 + 8), 96);
    }

    #[test]
    fn transfer_cycles_scale_with_bytes() {
        let c = DramConfig::off_package_default();
        let t64 = c.transfer_cycles(64);
        let t4096 = c.transfer_cycles(4096);
        assert!(t64 >= 1);
        assert!(
            t4096 > t64 * 32,
            "page transfer should dominate: {t64} vs {t4096}"
        );
    }

    #[test]
    fn latency_ordering_hit_lt_closed_lt_conflict() {
        let c = DramConfig::in_package_default();
        let t = DramTiming::paper_default();
        assert!(c.row_hit_latency() < c.row_closed_latency(&t));
        assert!(c.row_closed_latency(&t) < c.row_conflict_latency(&t));
    }

    #[test]
    fn latency_scale_reduces_latency() {
        let mut c = DramConfig::in_package_default();
        let t = DramTiming::paper_default();
        let base = c.row_conflict_latency(&t);
        c.latency_scale = 0.5;
        let scaled = c.row_conflict_latency(&t);
        assert!(scaled < base);
        assert!(scaled >= base / 2 - 2);
    }

    #[test]
    fn timing_default_is_paper_default() {
        assert_eq!(DramTiming::default(), DramTiming::paper_default());
        let t = DramTiming::default();
        assert_eq!((t.t_cas, t.t_rcd, t.t_rp, t.t_ras), (10, 10, 10, 24));
    }
}
