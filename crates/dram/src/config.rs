//! DRAM timing, scheduling and organization configuration.

use banshee_common::{Cycle, CyclesPerSec, MemSize};
use serde::{Deserialize, Serialize};

/// Raw DRAM timing parameters, expressed in DRAM *bus* clock cycles (the
/// paper's Table 2 lists 10-10-10-24 at a 667 MHz bus clock).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Column access strobe latency (read command → first data beat).
    pub t_cas: u64,
    /// Row-to-column delay (activate → read command).
    pub t_rcd: u64,
    /// Row precharge time (precharge → activate).
    pub t_rp: u64,
    /// Row active time (activate → precharge allowed).
    pub t_ras: u64,
    /// Refresh interval (one all-bank refresh per `t_refi` bus cycles;
    /// 0 disables refresh). DDR3's 7.8 µs is ≈ 5200 cycles at 667 MHz.
    pub t_refi: u64,
    /// Refresh cycle time: how long every bank is blocked per refresh
    /// (≈ 160 ns = 107 bus cycles at 667 MHz).
    pub t_rfc: u64,
}

impl DramTiming {
    /// The paper's default access timing, tCAS-tRCD-tRP-tRAS = 10-10-10-24,
    /// plus DDR3-class refresh (tREFI = 7.8 µs, tRFC = 160 ns).
    pub const fn paper_default() -> Self {
        DramTiming {
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_ras: 24,
            t_refi: 5200,
            t_rfc: 107,
        }
    }

    /// The paper's timing with refresh disabled (pre-refresh model, and the
    /// knob scenario files use to isolate refresh effects).
    pub const fn no_refresh() -> Self {
        DramTiming {
            t_refi: 0,
            ..Self::paper_default()
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How a channel's memory controller orders the requests it has queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// First-come-first-served: queued writes drain oldest-first.
    Fcfs,
    /// First-ready FCFS: among queued requests, row-buffer hits are serviced
    /// before older row misses (Rixner et al., ISCA 2000).
    FrFcfs,
}

/// What happens to a DRAM row after a column access completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PagePolicy {
    /// The row stays open until a conflicting access or refresh closes it
    /// (exploits row-buffer locality; conflicts pay precharge + activate).
    Open,
    /// Every access auto-precharges its row (no row hits, but also no
    /// conflict penalty — better under low-locality traffic).
    Closed,
}

/// Full configuration of one DRAM device (a set of identical channels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Number of banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer (DRAM page) size per bank, in bytes.
    pub row_buffer_bytes: u64,
    /// Bus width in bytes per channel (128 bits = 16 B in the paper).
    pub bus_bytes: u64,
    /// DRAM bus clock frequency. Data rate is double (DDR).
    pub bus_clock: CyclesPerSec,
    /// CPU core clock, used to convert DRAM timing into CPU cycles.
    pub cpu_clock: CyclesPerSec,
    /// Minimum data-transfer granule in bytes (32 B for HBM-like links;
    /// this is why a 64 B line + 8 B tag costs 96 B).
    pub min_transfer_bytes: u64,
    /// Multiplier applied to the row access latency portion (1.0 = paper
    /// default). Figure 8(b) sweeps DRAM-cache latency to 66% and 50%.
    pub latency_scale: f64,
    /// Raw command timing (bus cycles).
    pub timing: DramTiming,
    /// Request-ordering policy of the per-channel memory controller.
    pub scheduler: SchedulerKind,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Bounded per-bank read queue: at most this many requests may be
    /// outstanding (unfinished) per bank; excess arrivals are back-pressured
    /// to when a slot frees.
    pub read_queue_depth: usize,
    /// Per-channel write-queue capacity. Writes are posted into the queue
    /// and drained in scheduler order; 0 services every write immediately
    /// (no buffering).
    pub write_queue_depth: usize,
    /// Queue occupancy at which a write drain starts.
    pub write_high_watermark: usize,
    /// Queue occupancy at which a running write drain stops.
    pub write_low_watermark: usize,
    /// Total device capacity (used for sanity checks / cache sizing, not for
    /// timing).
    pub capacity: MemSize,
}

impl DramConfig {
    /// The paper's off-package DRAM: 1 channel of DDR-1333 with a 128-bit bus
    /// (≈ 21.3 GB/s peak).
    pub fn off_package_default() -> Self {
        DramConfig {
            channels: 1,
            banks_per_channel: 8,
            row_buffer_bytes: 8 * 1024,
            bus_bytes: 16,
            bus_clock: CyclesPerSec::mhz(667.0),
            cpu_clock: CyclesPerSec::ghz(2.7),
            min_transfer_bytes: 32,
            latency_scale: 1.0,
            timing: DramTiming::paper_default(),
            scheduler: SchedulerKind::FrFcfs,
            page_policy: PagePolicy::Open,
            read_queue_depth: 8,
            write_queue_depth: 32,
            write_high_watermark: 24,
            write_low_watermark: 8,
            capacity: MemSize::gib(16),
        }
    }

    /// The paper's in-package DRAM: 4 channels of the same technology
    /// (≈ 85 GB/s peak), 1 GB capacity.
    pub fn in_package_default() -> Self {
        DramConfig {
            channels: 4,
            capacity: MemSize::gib(1),
            ..Self::off_package_default()
        }
    }

    /// Peak bandwidth in bytes per second (DDR: two beats per bus clock).
    pub fn peak_bandwidth_bytes_per_sec(&self) -> f64 {
        self.channels as f64 * self.bus_bytes as f64 * 2.0 * self.bus_clock.hz()
    }

    /// Peak bandwidth in GB/s (decimal gigabytes, as the paper quotes).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.peak_bandwidth_bytes_per_sec() / 1e9
    }

    /// How many CPU cycles one channel's bus is occupied to move `bytes`
    /// (after rounding up to the minimum transfer granule).
    ///
    /// Because `min_transfer_bytes` is a multiple of the bytes moved per bus
    /// clock (32 B on the default 16 B DDR link), the bus-clock count is
    /// exact; only the final bus→CPU clock conversion rounds (to nearest),
    /// which `transfer_cycles_exact_at_min_granule` pins in tests.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycle {
        let bytes = self.round_to_min_transfer(bytes);
        // Bytes moved per bus clock: bus width × 2 (DDR).
        let bytes_per_bus_clock = self.bus_bytes * 2;
        let bus_clocks = bytes.div_ceil(bytes_per_bus_clock);
        self.cpu_clock
            .convert_cycles_from(bus_clocks, self.bus_clock)
            .max(1)
    }

    /// Round a byte count up to the link's minimum transfer granule.
    pub fn round_to_min_transfer(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.min_transfer_bytes) * self.min_transfer_bytes
    }

    /// Row-buffer-hit access latency (CAS only) in CPU cycles, with the
    /// latency scale applied.
    pub fn row_hit_latency(&self) -> Cycle {
        self.scale_bus_cycles(self.timing.t_cas)
    }

    /// Latency for an access to a closed row (activate + CAS) in CPU cycles.
    pub fn row_closed_latency(&self) -> Cycle {
        self.scale_bus_cycles(self.timing.t_rcd + self.timing.t_cas)
    }

    /// Latency for a row-buffer conflict with no outstanding tRAS debt
    /// (precharge + activate + CAS) in CPU cycles.
    pub fn row_conflict_latency(&self) -> Cycle {
        self.precharge_latency() + self.row_closed_latency()
    }

    /// Precharge duration (tRP) in CPU cycles.
    pub fn precharge_latency(&self) -> Cycle {
        self.scale_bus_cycles(self.timing.t_rp)
    }

    /// Minimum activate → precharge spacing (tRAS) in CPU cycles.
    pub fn bank_busy_after_activate(&self) -> Cycle {
        self.scale_bus_cycles(self.timing.t_ras)
    }

    /// Refresh interval (tREFI) in CPU cycles; 0 = refresh disabled. Not
    /// subject to `latency_scale` (Figure 8b scales access latency, not the
    /// retention requirement).
    pub fn refresh_interval_cycles(&self) -> Cycle {
        self.cpu_clock
            .convert_cycles_from(self.timing.t_refi, self.bus_clock)
    }

    /// Refresh duration (tRFC) in CPU cycles.
    pub fn refresh_duration_cycles(&self) -> Cycle {
        self.cpu_clock
            .convert_cycles_from(self.timing.t_rfc, self.bus_clock)
    }

    fn scale_bus_cycles(&self, bus_cycles: u64) -> Cycle {
        let cpu = self
            .cpu_clock
            .convert_cycles_from(bus_cycles, self.bus_clock) as f64;
        (cpu * self.latency_scale).round().max(1.0) as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths_match_table2() {
        let off = DramConfig::off_package_default();
        let inp = DramConfig::in_package_default();
        // Paper: 21 GB/s off-package, 85 GB/s in-package.
        assert!(
            (off.peak_bandwidth_gbps() - 21.3).abs() < 0.5,
            "{}",
            off.peak_bandwidth_gbps()
        );
        assert!(
            (inp.peak_bandwidth_gbps() - 85.3).abs() < 2.0,
            "{}",
            inp.peak_bandwidth_gbps()
        );
    }

    #[test]
    fn min_transfer_rounding() {
        let c = DramConfig::in_package_default();
        assert_eq!(c.round_to_min_transfer(0), 0);
        assert_eq!(c.round_to_min_transfer(1), 32);
        assert_eq!(c.round_to_min_transfer(32), 32);
        assert_eq!(c.round_to_min_transfer(64), 64);
        assert_eq!(c.round_to_min_transfer(72), 96);
        // 64B line + tag = 96B, the paper's headline overhead example.
        assert_eq!(c.round_to_min_transfer(64 + 8), 96);
    }

    #[test]
    fn transfer_cycles_scale_with_bytes() {
        let c = DramConfig::off_package_default();
        let t64 = c.transfer_cycles(64);
        let t4096 = c.transfer_cycles(4096);
        assert!(t64 >= 1);
        assert!(
            t4096 > t64 * 32,
            "page transfer should dominate: {t64} vs {t4096}"
        );
    }

    /// Pin the exact bus-occupancy numbers of the default link (16 B bus,
    /// DDR, 667 MHz → 2.7 GHz conversion): the bus-clock count is exact at
    /// the 32 B granule, only the clock-domain conversion rounds.
    #[test]
    fn transfer_cycles_exact_at_min_granule() {
        let c = DramConfig::in_package_default();
        // 32 B = 1 bus clock = 4.048 CPU cycles → 4.
        assert_eq!(c.transfer_cycles(32), 4);
        // 64 B = 2 bus clocks = 8.096 → 8.
        assert_eq!(c.transfer_cycles(64), 8);
        // 96 B = 3 bus clocks = 12.14 → 12 (the 64 B + tag unit).
        assert_eq!(c.transfer_cycles(96), 12);
        // 4 KiB = 128 bus clocks = 518.14 → 518.
        assert_eq!(c.transfer_cycles(4096), 518);
        // Sub-granule payloads are rounded up to the granule first.
        assert_eq!(c.transfer_cycles(1), c.transfer_cycles(32));
        assert_eq!(c.transfer_cycles(65), c.transfer_cycles(96));
    }

    #[test]
    fn latency_ordering_hit_lt_closed_lt_conflict() {
        let c = DramConfig::in_package_default();
        assert!(c.row_hit_latency() < c.row_closed_latency());
        assert!(c.row_closed_latency() < c.row_conflict_latency());
    }

    /// Pin the paper's 10-10-10-24 timing in CPU cycles at 2.7 GHz / 667 MHz.
    #[test]
    fn paper_latencies_in_cpu_cycles() {
        let c = DramConfig::in_package_default();
        assert_eq!(c.row_hit_latency(), 40); // tCAS = 10 bus = 40.48
        assert_eq!(c.row_closed_latency(), 81); // tRCD+tCAS = 20 bus = 80.96
        assert_eq!(c.precharge_latency(), 40); // tRP = 10 bus
        assert_eq!(c.row_conflict_latency(), 121); // tRP + (tRCD+tCAS)
        assert_eq!(c.bank_busy_after_activate(), 97); // tRAS = 24 bus = 97.2
        assert_eq!(c.refresh_interval_cycles(), 21_049); // 5200 bus
        assert_eq!(c.refresh_duration_cycles(), 433); // 107 bus
    }

    #[test]
    fn latency_scale_reduces_latency() {
        let mut c = DramConfig::in_package_default();
        let base = c.row_conflict_latency();
        c.latency_scale = 0.5;
        let scaled = c.row_conflict_latency();
        assert!(scaled < base);
        assert!(scaled >= base / 2 - 2);
        // Refresh timing is not sensitive to the Figure 8b latency knob.
        assert_eq!(
            c.refresh_interval_cycles(),
            DramConfig::in_package_default().refresh_interval_cycles()
        );
    }

    #[test]
    fn timing_default_is_paper_default() {
        assert_eq!(DramTiming::default(), DramTiming::paper_default());
        let t = DramTiming::default();
        assert_eq!((t.t_cas, t.t_rcd, t.t_rp, t.t_ras), (10, 10, 10, 24));
        assert_eq!((t.t_refi, t.t_rfc), (5200, 107));
        assert_eq!(DramTiming::no_refresh().t_refi, 0);
        assert_eq!(DramTiming::no_refresh().t_cas, 10);
    }

    #[test]
    fn watermarks_fit_the_queue() {
        for c in [
            DramConfig::in_package_default(),
            DramConfig::off_package_default(),
        ] {
            assert!(c.write_low_watermark < c.write_high_watermark);
            assert!(c.write_high_watermark <= c.write_queue_depth);
            assert!(c.read_queue_depth >= 1);
        }
    }
}
