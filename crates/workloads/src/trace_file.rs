//! A compact on-disk trace format, so externally captured memory traces can
//! be replayed through the simulator and any built-in workload can be
//! exported and replayed bit-identically.
//!
//! Two encodings of the same model — a file holds one or more **streams**
//! (one per core), each a finite sequence of [`MemoryAccess`]es plus the
//! stream's name and footprint:
//!
//! * **Binary** (`.btrace`): an 8-byte magic, a version word, and
//!   length-framed streams of fixed 13-byte records (vaddr `u64`, gap
//!   `u32`, flags `u8`, all little-endian). Truncation, bad magic, an
//!   unsupported version, stray flag bits and trailing garbage are all
//!   distinct, actionable errors — never panics.
//! * **Text** (`.trace`): a human-writable one-access-per-line form
//!   (`r <hex-vaddr> <gap>` / `w <hex-vaddr> <gap>`) with `stream` headers,
//!   `#` comments, and line-numbered parse errors.
//!
//! [`TraceFileReader`] is a streaming binary decoder (header → stream
//! headers → accesses) that never loads the whole file; [`TraceData`] is
//! the in-memory form used for encoding and for [`TraceReplay`], the
//! [`TraceGenerator`] that loops a finite stream so the simulator can run
//! it for any instruction budget.

use crate::trace::{MemoryAccess, TraceFactory, TraceGenerator};
use banshee_common::hash::fnv1a64;
use banshee_common::Addr;
use std::fmt;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

/// The binary format's leading magic bytes.
pub const TRACE_MAGIC: [u8; 8] = *b"BSHTRACE";
/// The binary format version this build writes and understands.
pub const TRACE_VERSION: u32 = 1;
/// First line of the text form.
pub const TEXT_HEADER: &str = "banshee-trace v1";
/// Bytes per binary access record: vaddr u64 + inst_gap u32 + flags u8.
pub const RECORD_BYTES: usize = 13;

/// Everything that can go wrong reading a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`TRACE_MAGIC`] (binary) or
    /// [`TEXT_HEADER`] (text).
    BadMagic,
    /// The file's version word is one this build cannot decode.
    UnsupportedVersion(u32),
    /// The file ended in the middle of the named structure.
    Truncated(&'static str),
    /// Structurally invalid content (bad flags, counts, or text syntax);
    /// the message says what and where.
    Corrupt(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::BadMagic => write!(
                f,
                "not a banshee trace: expected the {:?} magic (binary) or a \
                 `{TEXT_HEADER}` first line (text)",
                std::str::from_utf8(&TRACE_MAGIC).unwrap_or("BSHTRACE"),
            ),
            TraceFileError::UnsupportedVersion(v) => write!(
                f,
                "unsupported trace version {v} (this build reads version {TRACE_VERSION})"
            ),
            TraceFileError::Truncated(what) => {
                write!(f, "trace file truncated while reading {what}")
            }
            TraceFileError::Corrupt(msg) => write!(f, "corrupt trace file: {msg}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceFileError::Truncated("a record")
        } else {
            TraceFileError::Io(e)
        }
    }
}

/// One core's finite access sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStream {
    /// Stream name (usually the workload name the stream was captured from).
    pub name: String,
    /// Virtual footprint the accesses cover, in bytes.
    pub footprint_bytes: u64,
    /// The accesses, in issue order.
    pub accesses: Vec<MemoryAccess>,
}

/// An in-memory trace file: one stream per core.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceData {
    /// The per-core streams.
    pub streams: Vec<TraceStream>,
}

impl TraceData {
    /// Capture a trace from any workload: `accesses_per_core` accesses from
    /// each of the factory's per-core generators. Replaying the result is
    /// bit-identical to the original generators for that window (and loops
    /// past it).
    pub fn capture(factory: &dyn TraceFactory, cores: usize, accesses_per_core: u64) -> TraceData {
        let streams = factory
            .build_traces(cores)
            .into_iter()
            .map(|mut gen| {
                let accesses = (0..accesses_per_core).map(|_| gen.next_access()).collect();
                TraceStream {
                    name: gen.name().to_string(),
                    footprint_bytes: gen.footprint_bytes(),
                    accesses,
                }
            })
            .collect();
        TraceData { streams }
    }

    /// Encode as the canonical binary form. Decoding the result with
    /// [`TraceData::from_binary`] and re-encoding is byte-identical.
    pub fn to_binary(&self) -> Vec<u8> {
        let records: usize = self.streams.iter().map(|s| s.accesses.len()).sum();
        let mut out = Vec::with_capacity(16 + records * RECORD_BYTES);
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.streams.len() as u32).to_le_bytes());
        for s in &self.streams {
            out.extend_from_slice(&(s.name.len() as u32).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&s.footprint_bytes.to_le_bytes());
            out.extend_from_slice(&(s.accesses.len() as u64).to_le_bytes());
            for a in &s.accesses {
                out.extend_from_slice(&a.vaddr.raw().to_le_bytes());
                out.extend_from_slice(&a.inst_gap.to_le_bytes());
                out.push(a.write as u8);
            }
        }
        out
    }

    /// Decode the binary form, rejecting trailing bytes after the last
    /// stream.
    pub fn from_binary(bytes: &[u8]) -> Result<TraceData, TraceFileError> {
        let mut cursor = bytes;
        let mut reader = TraceFileReader::open(&mut cursor)?;
        let mut data = TraceData::default();
        while let Some(header) = reader.next_stream()? {
            let mut stream = TraceStream {
                name: header.name,
                footprint_bytes: header.footprint_bytes,
                // Cap the pre-allocation so a corrupt count cannot OOM us.
                accesses: Vec::with_capacity(header.access_count.min(1 << 20) as usize),
            };
            while let Some(access) = reader.next_access()? {
                stream.accesses.push(access);
            }
            data.streams.push(stream);
        }
        if !cursor.is_empty() {
            return Err(TraceFileError::Corrupt(format!(
                "{} trailing byte(s) after the last stream",
                cursor.len()
            )));
        }
        Ok(data)
    }

    /// Encode as the text form. Errors if a stream name cannot be
    /// represented (empty or containing whitespace — the text form is
    /// whitespace-delimited; the binary form length-frames names and has
    /// no such restriction), rather than silently rewriting the name and
    /// changing the trace's content identity.
    pub fn to_text(&self) -> Result<String, TraceFileError> {
        let mut out = String::new();
        out.push_str(TEXT_HEADER);
        out.push('\n');
        for s in &self.streams {
            if s.name.is_empty() || s.name.contains(char::is_whitespace) {
                return Err(TraceFileError::Corrupt(format!(
                    "stream name {:?} cannot be written in the text form (names are \
                     whitespace-delimited); rename the stream or use the binary form",
                    s.name
                )));
            }
            out.push_str(&format!(
                "stream {} footprint={} accesses={}\n",
                s.name,
                s.footprint_bytes,
                s.accesses.len()
            ));
            for a in &s.accesses {
                out.push_str(&format!(
                    "{} 0x{:x} {}\n",
                    if a.write { 'w' } else { 'r' },
                    a.vaddr.raw(),
                    a.inst_gap
                ));
            }
        }
        Ok(out)
    }

    /// Decode the text form, with line-numbered errors. Blank lines and
    /// `#` comments are allowed anywhere after the header line.
    pub fn from_text(text: &str) -> Result<TraceData, TraceFileError> {
        let corrupt =
            |line: usize, msg: String| TraceFileError::Corrupt(format!("line {}: {msg}", line + 1));
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == TEXT_HEADER => {}
            _ => return Err(TraceFileError::BadMagic),
        }
        let mut data = TraceData::default();
        let mut expected: Option<(usize, usize)> = None; // (header line, count)
        for (no, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("stream ") {
                if let Some((header_line, count)) = expected.take() {
                    let got = data.streams.last().map_or(0, |s| s.accesses.len());
                    if got != count {
                        return Err(corrupt(
                            header_line,
                            format!("stream declares accesses={count} but {got} followed"),
                        ));
                    }
                }
                let mut name = None;
                let mut footprint = None;
                let mut accesses = None;
                for part in rest.split_whitespace() {
                    if let Some(v) = part.strip_prefix("footprint=") {
                        footprint = Some(v.parse::<u64>().map_err(|_| {
                            corrupt(no, format!("invalid footprint `{v}` (want bytes)"))
                        })?);
                    } else if let Some(v) = part.strip_prefix("accesses=") {
                        accesses = Some(
                            v.parse::<usize>()
                                .map_err(|_| corrupt(no, format!("invalid access count `{v}`")))?,
                        );
                    } else if name.is_none() {
                        name = Some(part.to_string());
                    } else {
                        return Err(corrupt(no, format!("unexpected token `{part}`")));
                    }
                }
                let name = name.ok_or_else(|| corrupt(no, "stream needs a name".into()))?;
                let footprint = footprint
                    .ok_or_else(|| corrupt(no, "stream needs footprint=<bytes>".into()))?;
                let count =
                    accesses.ok_or_else(|| corrupt(no, "stream needs accesses=<count>".into()))?;
                expected = Some((no, count));
                data.streams.push(TraceStream {
                    name,
                    footprint_bytes: footprint,
                    accesses: Vec::with_capacity(count.min(1 << 20)),
                });
                continue;
            }
            let stream = data
                .streams
                .last_mut()
                .ok_or_else(|| corrupt(no, "access before the first `stream` header".into()))?;
            let mut parts = line.split_whitespace();
            let op = parts.next().unwrap_or_default();
            let write = match op {
                "r" | "R" => false,
                "w" | "W" => true,
                other => return Err(corrupt(no, format!("expected `r` or `w`, got `{other}`"))),
            };
            let addr_text = parts
                .next()
                .ok_or_else(|| corrupt(no, "missing address".into()))?;
            let vaddr = addr_text
                .strip_prefix("0x")
                .or_else(|| addr_text.strip_prefix("0X"))
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| {
                    corrupt(no, format!("invalid address `{addr_text}` (want 0x<hex>)"))
                })?;
            let gap_text = parts
                .next()
                .ok_or_else(|| corrupt(no, "missing instruction gap".into()))?;
            let inst_gap = gap_text
                .parse::<u32>()
                .map_err(|_| corrupt(no, format!("invalid instruction gap `{gap_text}`")))?;
            if let Some(extra) = parts.next() {
                return Err(corrupt(no, format!("unexpected trailing token `{extra}`")));
            }
            stream.accesses.push(MemoryAccess {
                vaddr: Addr::new(vaddr),
                write,
                inst_gap,
            });
        }
        if let Some((header_line, count)) = expected {
            let got = data.streams.last().map_or(0, |s| s.accesses.len());
            if got != count {
                return Err(corrupt(
                    header_line,
                    format!("stream declares accesses={count} but {got} followed"),
                ));
            }
        }
        if data.streams.is_empty() {
            return Err(TraceFileError::Corrupt(
                "text trace has no `stream` sections".into(),
            ));
        }
        Ok(data)
    }

    /// Read a trace file, sniffing the encoding: binary if it starts with
    /// [`TRACE_MAGIC`], text otherwise.
    pub fn read_file(path: impl AsRef<Path>) -> Result<TraceData, TraceFileError> {
        let bytes = std::fs::read(path.as_ref())?;
        if bytes.starts_with(&TRACE_MAGIC) {
            TraceData::from_binary(&bytes)
        } else {
            let text = std::str::from_utf8(&bytes).map_err(|_| TraceFileError::BadMagic)?;
            TraceData::from_text(text)
        }
    }

    /// Write the binary form to `path`.
    pub fn write_binary_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_binary())
    }

    /// Write the text form to `path` (same name restriction as
    /// [`TraceData::to_text`]).
    pub fn write_text_file(&self, path: impl AsRef<Path>) -> Result<(), TraceFileError> {
        std::fs::write(path, self.to_text()?)?;
        Ok(())
    }

    /// FNV-1a hash of the canonical binary encoding — the identity of the
    /// trace's *content*, used to key cached results for replay cells.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(&self.to_binary())
    }

    /// Total accesses across all streams.
    pub fn total_accesses(&self) -> usize {
        self.streams.iter().map(|s| s.accesses.len()).sum()
    }
}

/// A parsed binary stream header (the part before the records).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStreamHeader {
    /// Stream name.
    pub name: String,
    /// Declared footprint in bytes.
    pub footprint_bytes: u64,
    /// Declared record count (the stream's length frame).
    pub access_count: u64,
}

/// A streaming decoder over the binary form: reads the file header on open,
/// then alternates [`TraceFileReader::next_stream`] and
/// [`TraceFileReader::next_access`] without ever buffering a whole stream.
pub struct TraceFileReader<R: Read> {
    reader: R,
    streams_left: u32,
    records_left: u64,
}

impl<R: Read> TraceFileReader<R> {
    /// Validate the magic and version and position the reader before the
    /// first stream header.
    pub fn open(mut reader: R) -> Result<Self, TraceFileError> {
        let mut magic = [0u8; 8];
        reader
            .read_exact(&mut magic)
            .map_err(|_| TraceFileError::Truncated("the file magic"))?;
        if magic != TRACE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let mut word = [0u8; 4];
        reader
            .read_exact(&mut word)
            .map_err(|_| TraceFileError::Truncated("the version word"))?;
        let version = u32::from_le_bytes(word);
        if version != TRACE_VERSION {
            return Err(TraceFileError::UnsupportedVersion(version));
        }
        reader
            .read_exact(&mut word)
            .map_err(|_| TraceFileError::Truncated("the stream count"))?;
        Ok(TraceFileReader {
            reader,
            streams_left: u32::from_le_bytes(word),
            records_left: 0,
        })
    }

    /// Advance to the next stream header, skipping any unread records of
    /// the current stream. `Ok(None)` after the last stream.
    pub fn next_stream(&mut self) -> Result<Option<TraceStreamHeader>, TraceFileError> {
        while self.records_left > 0 {
            self.next_access()?;
        }
        if self.streams_left == 0 {
            return Ok(None);
        }
        self.streams_left -= 1;
        let mut word = [0u8; 4];
        self.reader
            .read_exact(&mut word)
            .map_err(|_| TraceFileError::Truncated("a stream name length"))?;
        let name_len = u32::from_le_bytes(word);
        if name_len > 4096 {
            return Err(TraceFileError::Corrupt(format!(
                "stream name length {name_len} exceeds the 4096-byte limit"
            )));
        }
        let mut name_bytes = vec![0u8; name_len as usize];
        self.reader
            .read_exact(&mut name_bytes)
            .map_err(|_| TraceFileError::Truncated("a stream name"))?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceFileError::Corrupt("stream name is not UTF-8".into()))?;
        let mut qword = [0u8; 8];
        self.reader
            .read_exact(&mut qword)
            .map_err(|_| TraceFileError::Truncated("a stream footprint"))?;
        let footprint_bytes = u64::from_le_bytes(qword);
        self.reader
            .read_exact(&mut qword)
            .map_err(|_| TraceFileError::Truncated("a stream record count"))?;
        let access_count = u64::from_le_bytes(qword);
        self.records_left = access_count;
        Ok(Some(TraceStreamHeader {
            name,
            footprint_bytes,
            access_count,
        }))
    }

    /// The next access of the current stream; `Ok(None)` at its end.
    pub fn next_access(&mut self) -> Result<Option<MemoryAccess>, TraceFileError> {
        if self.records_left == 0 {
            return Ok(None);
        }
        let mut record = [0u8; RECORD_BYTES];
        self.reader
            .read_exact(&mut record)
            .map_err(|_| TraceFileError::Truncated("an access record"))?;
        self.records_left -= 1;
        let vaddr = u64::from_le_bytes(record[0..8].try_into().unwrap());
        let inst_gap = u32::from_le_bytes(record[8..12].try_into().unwrap());
        let write = match record[12] {
            0 => false,
            1 => true,
            other => {
                return Err(TraceFileError::Corrupt(format!(
                    "access flags byte {other:#04x} has unknown bits set (want 0 or 1)"
                )))
            }
        };
        Ok(Some(MemoryAccess {
            vaddr: Addr::new(vaddr),
            write,
            inst_gap,
        }))
    }
}

/// Replays one captured stream, looping when it runs out (generators are
/// infinite by contract; the simulator decides when to stop). Holds the
/// shared [`TraceData`] and a stream index, so any number of generators
/// across any number of cells replay one in-memory copy of the trace.
pub struct TraceReplay {
    data: Arc<TraceData>,
    stream_index: usize,
    pos: usize,
}

impl TraceReplay {
    /// Replay stream `stream_index` of `data` from its start.
    pub fn new(data: Arc<TraceData>, stream_index: usize) -> Self {
        assert!(
            !data.streams[stream_index].accesses.is_empty(),
            "cannot replay an empty trace stream"
        );
        TraceReplay {
            data,
            stream_index,
            pos: 0,
        }
    }

    fn stream(&self) -> &TraceStream {
        &self.data.streams[self.stream_index]
    }
}

impl TraceGenerator for TraceReplay {
    fn next_access(&mut self) -> MemoryAccess {
        let accesses = &self.data.streams[self.stream_index].accesses;
        let access = accesses[self.pos];
        self.pos += 1;
        if self.pos == accesses.len() {
            self.pos = 0;
        }
        access
    }

    fn name(&self) -> &str {
        &self.stream().name
    }

    fn footprint_bytes(&self) -> u64 {
        self.stream().footprint_bytes
    }
}

impl TraceData {
    /// Build one replay generator per core, assigning streams round-robin
    /// (a 16-stream file on 16 cores replays 1:1; fewer streams are
    /// shared, each core replaying from the start). The `Arc` receiver
    /// means the trace is never copied, however many cells replay it.
    pub fn replay_generators(self: &Arc<Self>, cores: usize) -> Vec<Box<dyn TraceGenerator>> {
        assert!(
            !self.streams.is_empty(),
            "cannot replay a trace with no streams"
        );
        (0..cores)
            .map(|core| {
                Box::new(TraceReplay::new(
                    Arc::clone(self),
                    core % self.streams.len(),
                )) as Box<dyn TraceGenerator>
            })
            .collect()
    }

    /// The largest single-stream footprint — the trace's effective working
    /// span for reporting and store keying (replay ignores the sweep's
    /// footprint factor; the data is whatever was captured).
    pub fn max_stream_footprint_bytes(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| s.footprint_bytes)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use crate::WorkloadKind;
    use banshee_common::Addr;

    fn sample() -> TraceData {
        TraceData {
            streams: vec![
                TraceStream {
                    name: "alpha".into(),
                    footprint_bytes: 1 << 20,
                    accesses: vec![
                        MemoryAccess::load(Addr::new(0x1000), 3),
                        MemoryAccess::store(Addr::new(0x1040), 0),
                    ],
                },
                TraceStream {
                    name: "beta".into(),
                    footprint_bytes: 2 << 20,
                    accesses: vec![MemoryAccess::load(Addr::new(0xffff_ffff_0000), 9)],
                },
            ],
        }
    }

    #[test]
    fn binary_round_trip_is_byte_identical() {
        let data = sample();
        let bytes = data.to_binary();
        let back = TraceData::from_binary(&bytes).unwrap();
        assert_eq!(back, data);
        assert_eq!(back.to_binary(), bytes);
    }

    #[test]
    fn text_round_trip_preserves_content() {
        let data = sample();
        let text = data.to_text().unwrap();
        let back = TraceData::from_text(&text).unwrap();
        assert_eq!(back, data);
        assert_eq!(back.to_text().unwrap(), text);
        // Names the text form cannot carry are an error, not a rewrite.
        let mut spaced = data.clone();
        spaced.streams[0].name = "has space".into();
        assert!(spaced.to_text().is_err());
    }

    #[test]
    fn sniffing_reader_handles_both_forms() {
        let dir = std::env::temp_dir().join(format!("banshee_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = sample();
        let bin = dir.join("t.btrace");
        let txt = dir.join("t.trace");
        data.write_binary_file(&bin).unwrap();
        data.write_text_file(&txt).unwrap();
        assert_eq!(TraceData::read_file(&bin).unwrap(), data);
        assert_eq!(TraceData::read_file(&txt).unwrap(), data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupt_binaries_fail_clearly() {
        let bytes = sample().to_binary();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            TraceData::from_binary(&bad),
            Err(TraceFileError::BadMagic)
        ));
        // Future version.
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            TraceData::from_binary(&future),
            Err(TraceFileError::UnsupportedVersion(99))
        ));
        // Truncation at every prefix length must error, never panic.
        for len in 0..bytes.len() {
            assert!(
                TraceData::from_binary(&bytes[..len]).is_err(),
                "prefix of {len} bytes must fail"
            );
        }
        // Trailing garbage.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            TraceData::from_binary(&trailing),
            Err(TraceFileError::Corrupt(_))
        ));
        // Stray flag bits.
        let mut flags = bytes;
        let last = flags.len() - 1;
        flags[last] = 7;
        assert!(matches!(
            TraceData::from_binary(&flags),
            Err(TraceFileError::Corrupt(_))
        ));
    }

    #[test]
    fn text_errors_carry_line_numbers() {
        let bad = format!("{TEXT_HEADER}\nstream s footprint=10 accesses=1\nq 0x10 1\n");
        let err = TraceData::from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("line 3"), "error was: {err}");
        let wrong_count = format!("{TEXT_HEADER}\nstream s footprint=10 accesses=2\nr 0x10 1\n");
        let err = TraceData::from_text(&wrong_count).unwrap_err().to_string();
        assert!(err.contains("accesses=2"), "error was: {err}");
        assert!(matches!(
            TraceData::from_text("not a trace"),
            Err(TraceFileError::BadMagic)
        ));
    }

    #[test]
    fn capture_then_replay_is_bit_identical() {
        let workload = Workload::new(WorkloadKind::parse("mcf").unwrap(), 4 << 20, 11);
        let captured = TraceData::capture(&workload, 2, 500);
        let decoded = Arc::new(TraceData::from_binary(&captured.to_binary()).unwrap());
        let mut replays = decoded.replay_generators(2);
        let mut originals = Workload::build_traces(&workload, 2);
        for core in 0..2 {
            for i in 0..500 {
                assert_eq!(
                    replays[core].next_access(),
                    originals[core].next_access(),
                    "core {core} access {i}"
                );
            }
        }
    }

    #[test]
    fn replay_loops_past_the_end() {
        let mut gen = TraceReplay::new(Arc::new(sample()), 0);
        let first = gen.next_access();
        let _ = gen.next_access();
        assert_eq!(gen.next_access(), first, "replay must wrap around");
    }

    #[test]
    fn streaming_reader_skips_unread_records() {
        let data = sample();
        let bytes = data.to_binary();
        let mut reader = TraceFileReader::open(bytes.as_slice()).unwrap();
        let first = reader.next_stream().unwrap().unwrap();
        assert_eq!(first.name, "alpha");
        assert_eq!(first.access_count, 2);
        // Jump straight to the next stream without reading alpha's records.
        let second = reader.next_stream().unwrap().unwrap();
        assert_eq!(second.name, "beta");
        assert_eq!(
            reader.next_access().unwrap().unwrap().vaddr,
            Addr::new(0xffff_ffff_0000)
        );
        assert!(reader.next_stream().unwrap().is_none());
    }

    #[test]
    fn content_hash_tracks_content() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.content_hash(), b.content_hash());
        b.streams[0].accesses[0].inst_gap += 1;
        assert_ne!(a.content_hash(), b.content_hash());
    }
}
