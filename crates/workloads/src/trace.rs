//! The trace abstraction every workload produces.

use banshee_common::spsc::Consumer;
use banshee_common::Addr;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One memory access in a core's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Virtual address of the access (byte granularity).
    pub vaddr: Addr,
    /// True for stores.
    pub write: bool,
    /// Number of non-memory instructions executed since the previous memory
    /// access (the generator's way of expressing memory intensity).
    pub inst_gap: u32,
}

impl MemoryAccess {
    /// Convenience constructor for a load.
    pub fn load(vaddr: Addr, inst_gap: u32) -> Self {
        MemoryAccess {
            vaddr,
            write: false,
            inst_gap,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(vaddr: Addr, inst_gap: u32) -> Self {
        MemoryAccess {
            vaddr,
            write: true,
            inst_gap,
        }
    }

    /// Instructions this access accounts for (the gap plus the access
    /// itself).
    pub fn instructions(&self) -> u64 {
        self.inst_gap as u64 + 1
    }
}

/// An infinite, deterministic stream of memory accesses for one core.
pub trait TraceGenerator: Send {
    /// Produce the next access. Generators never terminate; the simulator
    /// decides when to stop.
    fn next_access(&mut self) -> MemoryAccess;

    /// Short benchmark name ("lbm", "pagerank", ...).
    fn name(&self) -> &str;

    /// The total virtual footprint this generator touches, in bytes
    /// (used for reporting and sanity checks).
    fn footprint_bytes(&self) -> u64;
}

/// Anything that can stamp out one [`TraceGenerator`] per core: the built-in
/// [`crate::Workload`] catalogue and the data-driven scenario workloads both
/// implement this, so the simulator can run either without knowing which.
pub trait TraceFactory: Send + Sync {
    /// Display name for tables and result labels.
    fn name(&self) -> String;

    /// Build one deterministic trace generator per core.
    fn build_traces(&self, cores: usize) -> Vec<Box<dyn TraceGenerator>>;
}

/// A position-tracking wrapper around a [`TraceGenerator`].
///
/// Generators are deterministic but opaque (closures over RNG state, file
/// cursors), so snapshots persist only the *number of accesses consumed*;
/// resuming rebuilds the generator through its [`TraceFactory`] and
/// fast-forwards to the recorded position. Replaying the generator alone is
/// orders of magnitude cheaper than re-simulating the machine it fed.
#[derive(Debug)]
pub struct TraceCursor {
    source: Source,
    consumed: u64,
}

/// Where the cursor's next access comes from. In both modes `pending`
/// holds accesses that were pre-generated ahead of consumption (by a shard
/// worker) and must be replayed before touching the source again, so the
/// observed stream is identical no matter how often the cursor switches
/// modes.
#[derive(Debug)]
enum Source {
    /// The generator is owned locally and called on demand.
    Local {
        gen: Box<dyn TraceGenerator>,
        pending: VecDeque<MemoryAccess>,
    },
    /// The generator lives on a shard worker that streams pre-generated
    /// accesses through a bounded ring.
    Ring {
        pending: VecDeque<MemoryAccess>,
        consumer: Consumer<MemoryAccess>,
        poison: Arc<AtomicBool>,
        name: String,
        footprint_bytes: u64,
    },
}

impl TraceCursor {
    /// Wrap a freshly built generator at position zero.
    pub fn new(gen: Box<dyn TraceGenerator>) -> Self {
        TraceCursor {
            source: Source::Local {
                gen,
                pending: VecDeque::new(),
            },
            consumed: 0,
        }
    }

    /// Produce the next access, advancing the cursor.
    pub fn next_access(&mut self) -> MemoryAccess {
        self.consumed += 1;
        match &mut self.source {
            Source::Local { gen, pending } => {
                pending.pop_front().unwrap_or_else(|| gen.next_access())
            }
            Source::Ring {
                pending,
                consumer,
                poison,
                ..
            } => {
                if let Some(access) = pending.pop_front() {
                    return access;
                }
                let mut spins = 0u32;
                loop {
                    if let Some(access) = consumer.try_pop() {
                        return access;
                    }
                    if poison.load(Ordering::Acquire) {
                        panic!("shard worker feeding this trace ring panicked");
                    }
                    banshee_common::spsc::backoff(&mut spins);
                }
            }
        }
    }

    /// Hand the generator to a shard worker and switch the cursor to
    /// consuming pre-generated accesses from `consumer`. Accesses already
    /// buffered locally keep their place ahead of the ring. `poison` turns
    /// a dead producer into a panic instead of a hang.
    ///
    /// Panics if the cursor is already sharded.
    pub fn begin_sharded(
        &mut self,
        consumer: Consumer<MemoryAccess>,
        poison: Arc<AtomicBool>,
    ) -> Box<dyn TraceGenerator> {
        let placeholder = Source::Ring {
            pending: VecDeque::new(),
            consumer,
            poison,
            name: String::new(),
            footprint_bytes: 0,
        };
        match std::mem::replace(&mut self.source, placeholder) {
            Source::Local { gen, pending } => {
                if let Source::Ring {
                    pending: p,
                    name,
                    footprint_bytes,
                    ..
                } = &mut self.source
                {
                    *p = pending;
                    *name = gen.name().to_string();
                    *footprint_bytes = gen.footprint_bytes();
                }
                gen
            }
            Source::Ring { .. } => panic!("trace cursor is already sharded"),
        }
    }

    /// Take the generator back from a finished shard worker and return to
    /// local mode. Whatever the worker pre-generated but the simulation did
    /// not yet consume is drained out of the ring and kept ahead of the
    /// generator, so the stream continues exactly where it left off.
    ///
    /// Panics if the cursor is not sharded.
    pub fn end_sharded(&mut self, gen: Box<dyn TraceGenerator>) {
        let mut pending = match std::mem::replace(
            &mut self.source,
            Source::Local {
                gen,
                pending: VecDeque::new(),
            },
        ) {
            Source::Ring {
                pending,
                mut consumer,
                ..
            } => {
                let mut pending = pending;
                while let Some(access) = consumer.try_pop() {
                    pending.push_back(access);
                }
                pending
            }
            Source::Local { .. } => panic!("trace cursor is not sharded"),
        };
        if let Source::Local { pending: p, .. } = &mut self.source {
            std::mem::swap(p, &mut pending);
        }
    }

    /// Number of accesses pulled from the generator so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The wrapped generator's benchmark name.
    pub fn name(&self) -> &str {
        match &self.source {
            Source::Local { gen, .. } => gen.name(),
            Source::Ring { name, .. } => name,
        }
    }

    /// The wrapped generator's virtual footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        match &self.source {
            Source::Local { gen, .. } => gen.footprint_bytes(),
            Source::Ring {
                footprint_bytes, ..
            } => *footprint_bytes,
        }
    }

    /// Advance a freshly built cursor to `target` accesses consumed,
    /// discarding the replayed accesses. Returns an error message if the
    /// cursor is already past `target` (the image and the generator
    /// disagree).
    pub fn fast_forward(&mut self, target: u64) -> Result<(), String> {
        if self.consumed > target {
            return Err(format!(
                "trace cursor at {} cannot rewind to {target}",
                self.consumed
            ));
        }
        while self.consumed < target {
            self.next_access();
        }
        Ok(())
    }
}

impl std::fmt::Debug for dyn TraceGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceGenerator({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingTrace(u64);
    impl TraceGenerator for CountingTrace {
        fn next_access(&mut self) -> MemoryAccess {
            self.0 += 1;
            MemoryAccess::load(Addr::new(self.0 * 64), 3)
        }
        fn name(&self) -> &str {
            "counting"
        }
        fn footprint_bytes(&self) -> u64 {
            1 << 20
        }
    }

    #[test]
    fn cursor_counts_and_fast_forwards() {
        let mut original = TraceCursor::new(Box::new(CountingTrace(0)));
        for _ in 0..57 {
            original.next_access();
        }
        assert_eq!(original.consumed(), 57);

        // A fresh cursor fast-forwarded to the same position produces the
        // same continuation.
        let mut replay = TraceCursor::new(Box::new(CountingTrace(0)));
        replay.fast_forward(57).unwrap();
        assert_eq!(replay.consumed(), 57);
        for _ in 0..10 {
            assert_eq!(replay.next_access(), original.next_access());
        }

        // Rewinding is an error, not a silent mismatch.
        assert!(replay.fast_forward(5).is_err());
    }

    /// Sharding the cursor (generator moves to a worker, accesses stream
    /// back through a ring) must be invisible: the observed access stream
    /// and the consumed count match a purely local cursor, including when
    /// the ring still holds pre-generated accesses at un-shard time.
    #[test]
    fn sharded_cursor_preserves_the_stream() {
        let mut reference = TraceCursor::new(Box::new(CountingTrace(0)));
        let mut cursor = TraceCursor::new(Box::new(CountingTrace(0)));
        for _ in 0..5 {
            assert_eq!(cursor.next_access(), reference.next_access());
        }

        // Shard: the "worker" (this thread) pre-generates ahead of demand.
        let (mut tx, rx) = banshee_common::spsc::ring(16);
        let mut gen = cursor.begin_sharded(rx, Arc::new(AtomicBool::new(false)));
        assert_eq!(cursor.name(), "counting");
        assert_eq!(cursor.footprint_bytes(), 1 << 20);
        for _ in 0..10 {
            tx.try_push(gen.next_access()).unwrap();
        }
        for _ in 0..7 {
            assert_eq!(cursor.next_access(), reference.next_access());
        }

        // Un-shard with 3 accesses still in flight, then immediately
        // re-shard so those leftovers sit ahead of the new ring.
        cursor.end_sharded(gen);
        let (mut tx2, rx2) = banshee_common::spsc::ring(16);
        let mut gen = cursor.begin_sharded(rx2, Arc::new(AtomicBool::new(false)));
        for _ in 0..4 {
            tx2.try_push(gen.next_access()).unwrap();
        }
        for _ in 0..7 {
            assert_eq!(cursor.next_access(), reference.next_access());
        }
        cursor.end_sharded(gen);
        for _ in 0..20 {
            assert_eq!(cursor.next_access(), reference.next_access());
        }
        assert_eq!(cursor.consumed(), reference.consumed());
    }

    /// A poisoned ring (dead producer) panics instead of hanging forever.
    #[test]
    #[should_panic(expected = "shard worker")]
    fn sharded_cursor_panics_on_poisoned_ring() {
        let mut cursor = TraceCursor::new(Box::new(CountingTrace(0)));
        let (_tx, rx) = banshee_common::spsc::ring::<MemoryAccess>(4);
        let poison = Arc::new(AtomicBool::new(true));
        let _gen = cursor.begin_sharded(rx, poison);
        cursor.next_access();
    }

    #[test]
    fn access_constructors() {
        let l = MemoryAccess::load(Addr::new(0x100), 7);
        assert!(!l.write);
        assert_eq!(l.instructions(), 8);
        let s = MemoryAccess::store(Addr::new(0x200), 0);
        assert!(s.write);
        assert_eq!(s.instructions(), 1);
    }
}
