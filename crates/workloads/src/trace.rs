//! The trace abstraction every workload produces.

use banshee_common::Addr;

/// One memory access in a core's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Virtual address of the access (byte granularity).
    pub vaddr: Addr,
    /// True for stores.
    pub write: bool,
    /// Number of non-memory instructions executed since the previous memory
    /// access (the generator's way of expressing memory intensity).
    pub inst_gap: u32,
}

impl MemoryAccess {
    /// Convenience constructor for a load.
    pub fn load(vaddr: Addr, inst_gap: u32) -> Self {
        MemoryAccess {
            vaddr,
            write: false,
            inst_gap,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(vaddr: Addr, inst_gap: u32) -> Self {
        MemoryAccess {
            vaddr,
            write: true,
            inst_gap,
        }
    }

    /// Instructions this access accounts for (the gap plus the access
    /// itself).
    pub fn instructions(&self) -> u64 {
        self.inst_gap as u64 + 1
    }
}

/// An infinite, deterministic stream of memory accesses for one core.
pub trait TraceGenerator: Send {
    /// Produce the next access. Generators never terminate; the simulator
    /// decides when to stop.
    fn next_access(&mut self) -> MemoryAccess;

    /// Short benchmark name ("lbm", "pagerank", ...).
    fn name(&self) -> &str;

    /// The total virtual footprint this generator touches, in bytes
    /// (used for reporting and sanity checks).
    fn footprint_bytes(&self) -> u64;
}

/// Anything that can stamp out one [`TraceGenerator`] per core: the built-in
/// [`crate::Workload`] catalogue and the data-driven scenario workloads both
/// implement this, so the simulator can run either without knowing which.
pub trait TraceFactory: Send + Sync {
    /// Display name for tables and result labels.
    fn name(&self) -> String;

    /// Build one deterministic trace generator per core.
    fn build_traces(&self, cores: usize) -> Vec<Box<dyn TraceGenerator>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        let l = MemoryAccess::load(Addr::new(0x100), 7);
        assert!(!l.write);
        assert_eq!(l.instructions(), 8);
        let s = MemoryAccess::store(Addr::new(0x200), 0);
        assert!(s.write);
        assert_eq!(s.instructions(), 1);
    }
}
