//! The trace abstraction every workload produces.

use banshee_common::Addr;

/// One memory access in a core's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Virtual address of the access (byte granularity).
    pub vaddr: Addr,
    /// True for stores.
    pub write: bool,
    /// Number of non-memory instructions executed since the previous memory
    /// access (the generator's way of expressing memory intensity).
    pub inst_gap: u32,
}

impl MemoryAccess {
    /// Convenience constructor for a load.
    pub fn load(vaddr: Addr, inst_gap: u32) -> Self {
        MemoryAccess {
            vaddr,
            write: false,
            inst_gap,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(vaddr: Addr, inst_gap: u32) -> Self {
        MemoryAccess {
            vaddr,
            write: true,
            inst_gap,
        }
    }

    /// Instructions this access accounts for (the gap plus the access
    /// itself).
    pub fn instructions(&self) -> u64 {
        self.inst_gap as u64 + 1
    }
}

/// An infinite, deterministic stream of memory accesses for one core.
pub trait TraceGenerator: Send {
    /// Produce the next access. Generators never terminate; the simulator
    /// decides when to stop.
    fn next_access(&mut self) -> MemoryAccess;

    /// Short benchmark name ("lbm", "pagerank", ...).
    fn name(&self) -> &str;

    /// The total virtual footprint this generator touches, in bytes
    /// (used for reporting and sanity checks).
    fn footprint_bytes(&self) -> u64;
}

/// Anything that can stamp out one [`TraceGenerator`] per core: the built-in
/// [`crate::Workload`] catalogue and the data-driven scenario workloads both
/// implement this, so the simulator can run either without knowing which.
pub trait TraceFactory: Send + Sync {
    /// Display name for tables and result labels.
    fn name(&self) -> String;

    /// Build one deterministic trace generator per core.
    fn build_traces(&self, cores: usize) -> Vec<Box<dyn TraceGenerator>>;
}

/// A position-tracking wrapper around a [`TraceGenerator`].
///
/// Generators are deterministic but opaque (closures over RNG state, file
/// cursors), so snapshots persist only the *number of accesses consumed*;
/// resuming rebuilds the generator through its [`TraceFactory`] and
/// fast-forwards to the recorded position. Replaying the generator alone is
/// orders of magnitude cheaper than re-simulating the machine it fed.
#[derive(Debug)]
pub struct TraceCursor {
    gen: Box<dyn TraceGenerator>,
    consumed: u64,
}

impl TraceCursor {
    /// Wrap a freshly built generator at position zero.
    pub fn new(gen: Box<dyn TraceGenerator>) -> Self {
        TraceCursor { gen, consumed: 0 }
    }

    /// Produce the next access, advancing the cursor.
    pub fn next_access(&mut self) -> MemoryAccess {
        self.consumed += 1;
        self.gen.next_access()
    }

    /// Number of accesses pulled from the generator so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The wrapped generator's benchmark name.
    pub fn name(&self) -> &str {
        self.gen.name()
    }

    /// The wrapped generator's virtual footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.gen.footprint_bytes()
    }

    /// Advance a freshly built cursor to `target` accesses consumed,
    /// discarding the replayed accesses. Returns an error message if the
    /// cursor is already past `target` (the image and the generator
    /// disagree).
    pub fn fast_forward(&mut self, target: u64) -> Result<(), String> {
        if self.consumed > target {
            return Err(format!(
                "trace cursor at {} cannot rewind to {target}",
                self.consumed
            ));
        }
        while self.consumed < target {
            self.next_access();
        }
        Ok(())
    }
}

impl std::fmt::Debug for dyn TraceGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceGenerator({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingTrace(u64);
    impl TraceGenerator for CountingTrace {
        fn next_access(&mut self) -> MemoryAccess {
            self.0 += 1;
            MemoryAccess::load(Addr::new(self.0 * 64), 3)
        }
        fn name(&self) -> &str {
            "counting"
        }
        fn footprint_bytes(&self) -> u64 {
            1 << 20
        }
    }

    #[test]
    fn cursor_counts_and_fast_forwards() {
        let mut original = TraceCursor::new(Box::new(CountingTrace(0)));
        for _ in 0..57 {
            original.next_access();
        }
        assert_eq!(original.consumed(), 57);

        // A fresh cursor fast-forwarded to the same position produces the
        // same continuation.
        let mut replay = TraceCursor::new(Box::new(CountingTrace(0)));
        replay.fast_forward(57).unwrap();
        assert_eq!(replay.consumed(), 57);
        for _ in 0..10 {
            assert_eq!(replay.next_access(), original.next_access());
        }

        // Rewinding is an error, not a silent mismatch.
        assert!(replay.fast_forward(5).is_err());
    }

    #[test]
    fn access_constructors() {
        let l = MemoryAccess::load(Addr::new(0x100), 7);
        assert!(!l.write);
        assert_eq!(l.instructions(), 8);
        let s = MemoryAccess::store(Addr::new(0x200), 0);
        assert!(s.write);
        assert_eq!(s.instructions(), 1);
    }
}
