//! Graph-analytics workloads over a synthetic power-law graph.
//!
//! The paper's throughput-computing workloads come from the IMP suite
//! (pagerank, triangle counting, graph500, SGD, LSH — Section 5.1.2). We
//! rebuild their memory behaviour by actually walking a synthetic scale-free
//! graph stored in CSR form:
//!
//! * the **vertex array** (16 B per vertex: rank/label/visited word) is the
//!   target of degree-skewed random gathers — the hot-vertex skew is what
//!   makes frequency-based replacement effective on these codes, and
//! * the **edge array** (8 B per edge) is scanned sequentially — the
//!   streaming component that drives raw bandwidth demand.
//!
//! Each kernel ([`GraphKernel`]) walks the same graph with a different mix
//! of these two behaviours (and a different store ratio), mirroring the real
//! algorithms. All cores share one graph (the workloads are multi-threaded)
//! and each core owns a contiguous vertex partition.

use crate::trace::{MemoryAccess, TraceGenerator};
use banshee_common::{Addr, XorShiftRng, ZipfSampler};
use std::collections::VecDeque;
use std::sync::Arc;

/// Bytes of per-vertex state (rank + next rank or label + visited flag).
pub const VERTEX_BYTES: u64 = 16;
/// Bytes per edge entry (destination + weight).
pub const EDGE_BYTES: u64 = 8;

/// A synthetic scale-free graph in CSR form.
#[derive(Debug)]
pub struct SyntheticGraph {
    offsets: Vec<u64>,
    edges: Vec<u32>,
}

impl SyntheticGraph {
    /// Build a graph whose in-memory footprint (vertex + edge arrays) is
    /// roughly `footprint_bytes`, with the given average degree. Edge
    /// destinations follow a Zipf distribution so a few vertices are very
    /// hot, as in real power-law graphs.
    pub fn build(footprint_bytes: u64, avg_degree: u64, seed: u64) -> Self {
        let avg_degree = avg_degree.max(1);
        // footprint = V * VERTEX_BYTES + V * avg_degree * EDGE_BYTES
        let per_vertex = VERTEX_BYTES + avg_degree * EDGE_BYTES;
        let vertices = (footprint_bytes / per_vertex).max(64) as usize;
        let zipf = ZipfSampler::new(vertices, 0.9);
        let mut rng = XorShiftRng::new(seed);
        let mut offsets = Vec::with_capacity(vertices + 1);
        let mut edges = Vec::with_capacity(vertices * avg_degree as usize);
        offsets.push(0);
        for _u in 0..vertices {
            // Degree varies around the average (1..2*avg).
            let degree = rng.range_inclusive(1, 2 * avg_degree - 1);
            for _ in 0..degree {
                edges.push(zipf.sample(&mut rng) as u32);
            }
            offsets.push(edges.len() as u64);
        }
        SyntheticGraph { offsets, edges }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The neighbours of `u`.
    pub fn neighbours(&self, u: usize) -> &[u32] {
        let start = self.offsets[u] as usize;
        let end = self.offsets[u + 1] as usize;
        &self.edges[start..end]
    }

    /// Byte offset of vertex `u`'s state within the workload's region.
    pub fn vertex_addr(&self, u: usize) -> u64 {
        u as u64 * VERTEX_BYTES
    }

    /// Byte offset of edge slot `i` within the workload's region (the edge
    /// array is laid out after the vertex array).
    pub fn edge_addr(&self, i: usize) -> u64 {
        self.vertex_count() as u64 * VERTEX_BYTES + i as u64 * EDGE_BYTES
    }

    /// Total footprint in bytes (vertex array + edge array).
    pub fn footprint_bytes(&self) -> u64 {
        self.vertex_count() as u64 * VERTEX_BYTES + self.edge_count() as u64 * EDGE_BYTES
    }
}

/// Which graph kernel to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum GraphKernel {
    PageRank,
    TriangleCount,
    Graph500,
    Sgd,
    Lsh,
}

impl GraphKernel {
    /// All kernels, in the paper's figure order.
    pub const ALL: [GraphKernel; 5] = [
        GraphKernel::PageRank,
        GraphKernel::TriangleCount,
        GraphKernel::Graph500,
        GraphKernel::Sgd,
        GraphKernel::Lsh,
    ];

    /// Display name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            GraphKernel::PageRank => "pagerank",
            GraphKernel::TriangleCount => "tri_count",
            GraphKernel::Graph500 => "graph500",
            GraphKernel::Sgd => "sgd",
            GraphKernel::Lsh => "lsh",
        }
    }

    /// Mean instruction gap between memory accesses for this kernel
    /// (graph kernels are memory-bound; SGD and LSH do more arithmetic per
    /// byte).
    fn inst_gap(&self) -> u32 {
        match self {
            GraphKernel::PageRank => 3,
            GraphKernel::TriangleCount => 3,
            GraphKernel::Graph500 => 4,
            GraphKernel::Sgd => 6,
            GraphKernel::Lsh => 5,
        }
    }
}

/// One core's trace over the shared graph.
pub struct GraphKernelTrace {
    graph: Arc<SyntheticGraph>,
    kernel: GraphKernel,
    /// Base virtual address of the shared graph region.
    base: u64,
    /// Vertex partition owned by this core.
    part_start: usize,
    part_end: usize,
    cursor: usize,
    pending: VecDeque<MemoryAccess>,
    rng: XorShiftRng,
    name: String,
}

impl GraphKernelTrace {
    /// Create core `core_id` of `cores` total, walking `graph` with `kernel`.
    pub fn new(
        graph: Arc<SyntheticGraph>,
        kernel: GraphKernel,
        base: u64,
        core_id: usize,
        cores: usize,
        seed: u64,
    ) -> Self {
        assert!(cores > 0 && core_id < cores);
        let v = graph.vertex_count();
        let part = v.div_ceil(cores);
        let part_start = (core_id * part).min(v.saturating_sub(1));
        let part_end = ((core_id + 1) * part).min(v).max(part_start + 1);
        GraphKernelTrace {
            graph,
            kernel,
            base,
            part_start,
            part_end,
            cursor: part_start,
            pending: VecDeque::new(),
            rng: XorShiftRng::new(seed ^ (core_id as u64).wrapping_mul(0x9E37_79B9)),
            name: kernel.name().to_string(),
        }
    }

    fn push(&mut self, offset: u64, write: bool) {
        let gap = self.kernel.inst_gap();
        self.pending.push_back(MemoryAccess {
            vaddr: Addr::new(self.base + offset),
            write,
            inst_gap: gap,
        });
    }

    /// Emit the access pattern for processing one vertex, then advance.
    fn process_next_vertex(&mut self) {
        let u = self.cursor;
        self.cursor += 1;
        if self.cursor >= self.part_end {
            self.cursor = self.part_start;
        }
        let graph = Arc::clone(&self.graph);
        let degree = graph.neighbours(u).len();
        let edge_base = graph.offsets[u] as usize;

        match self.kernel {
            GraphKernel::PageRank => {
                // Read own state, scan the edge list, gather each
                // neighbour's rank, then write the new rank.
                self.push(graph.vertex_addr(u), false);
                for (i, &v) in graph.neighbours(u).iter().enumerate() {
                    self.push(graph.edge_addr(edge_base + i), false);
                    self.push(graph.vertex_addr(v as usize), false);
                }
                self.push(graph.vertex_addr(u), true);
            }
            GraphKernel::TriangleCount => {
                // For each neighbour, also scan a prefix of the neighbour's
                // own adjacency list (set intersection).
                self.push(graph.vertex_addr(u), false);
                for (i, &v) in graph.neighbours(u).iter().enumerate() {
                    self.push(graph.edge_addr(edge_base + i), false);
                    let v = v as usize;
                    let v_base = graph.offsets[v] as usize;
                    let v_deg = graph.neighbours(v).len().min(8);
                    for j in 0..v_deg {
                        self.push(graph.edge_addr(v_base + j), false);
                    }
                }
            }
            GraphKernel::Graph500 => {
                // BFS-like: visit a vertex chosen partly at random (frontier
                // order is irregular), scan its adjacency, and touch the
                // visited word of each target (a store roughly 1 time in 4).
                let u = self.part_start
                    + self
                        .rng
                        .next_below((self.part_end - self.part_start) as u64)
                        as usize;
                let edge_base = graph.offsets[u] as usize;
                self.push(graph.vertex_addr(u), false);
                for (i, &v) in graph.neighbours(u).iter().enumerate() {
                    self.push(graph.edge_addr(edge_base + i), false);
                    let write = i % 4 == 0;
                    self.push(graph.vertex_addr(v as usize), write);
                }
            }
            GraphKernel::Sgd => {
                // Stream ratings (edges) and update the two latent-factor
                // blocks they connect: read-modify-write both endpoints.
                self.push(graph.vertex_addr(u), false);
                for (i, &v) in graph.neighbours(u).iter().enumerate().take(8) {
                    self.push(graph.edge_addr(edge_base + i), false);
                    self.push(graph.vertex_addr(v as usize), false);
                    self.push(graph.vertex_addr(v as usize), true);
                }
                self.push(graph.vertex_addr(u), true);
            }
            GraphKernel::Lsh => {
                // Stream the point (a long sequential run over the edge
                // array) and probe a few random hash buckets in the vertex
                // array.
                for i in 0..16.min(degree.max(1)) {
                    self.push(graph.edge_addr(edge_base + i), false);
                }
                for _ in 0..4 {
                    let bucket = self.rng.next_below(graph.vertex_count() as u64) as usize;
                    self.push(graph.vertex_addr(bucket), false);
                }
            }
        }
    }
}

impl TraceGenerator for GraphKernelTrace {
    fn next_access(&mut self) -> MemoryAccess {
        while self.pending.is_empty() {
            self.process_next_vertex();
        }
        self.pending.pop_front().expect("pending refilled")
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn footprint_bytes(&self) -> u64 {
        self.graph.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_graph() -> Arc<SyntheticGraph> {
        Arc::new(SyntheticGraph::build(1 << 20, 8, 7))
    }

    #[test]
    fn graph_footprint_close_to_budget() {
        let g = SyntheticGraph::build(8 << 20, 16, 1);
        let fp = g.footprint_bytes();
        assert!(fp > 4 << 20 && fp < 12 << 20, "footprint {fp}");
        assert!(g.vertex_count() > 1000);
        assert_eq!(g.offsets.len(), g.vertex_count() + 1);
        assert_eq!(*g.offsets.last().unwrap() as usize, g.edge_count());
    }

    #[test]
    fn degrees_are_positive_and_edges_valid() {
        let g = SyntheticGraph::build(1 << 20, 8, 3);
        for u in 0..g.vertex_count() {
            let n = g.neighbours(u);
            assert!(!n.is_empty());
            for &v in n {
                assert!((v as usize) < g.vertex_count());
            }
        }
    }

    #[test]
    fn edge_destinations_are_skewed() {
        // Power-law targets: the most popular 1% of vertices should attract
        // far more than 1% of the edges.
        let g = SyntheticGraph::build(2 << 20, 16, 5);
        let mut indeg: HashMap<u32, u64> = HashMap::new();
        for u in 0..g.vertex_count() {
            for &v in g.neighbours(u) {
                *indeg.entry(v).or_insert(0) += 1;
            }
        }
        let mut counts: Vec<u64> = indeg.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct = (g.vertex_count() / 100).max(1);
        let top_sum: u64 = counts.iter().take(top1pct).sum();
        let total: u64 = counts.iter().sum();
        assert!(
            top_sum as f64 / total as f64 > 0.05,
            "top-1% in-degree share {}",
            top_sum as f64 / total as f64
        );
    }

    #[test]
    fn traces_stay_inside_the_graph_region() {
        let g = small_graph();
        let fp = g.footprint_bytes();
        for kernel in GraphKernel::ALL {
            let mut t = GraphKernelTrace::new(Arc::clone(&g), kernel, 0x4000_0000, 0, 4, 1);
            for _ in 0..5000 {
                let a = t.next_access();
                assert!(a.vaddr.raw() >= 0x4000_0000);
                assert!(
                    a.vaddr.raw() < 0x4000_0000 + fp,
                    "{} escaped the region",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn partitions_do_not_overlap_for_sequential_kernels() {
        let g = small_graph();
        let mut t0 = GraphKernelTrace::new(Arc::clone(&g), GraphKernel::PageRank, 0, 0, 2, 1);
        let mut t1 = GraphKernelTrace::new(Arc::clone(&g), GraphKernel::PageRank, 0, 1, 2, 1);
        // The vertex *being processed* (first access of each batch) must come
        // from disjoint halves. Gathers may touch any vertex — that is the
        // point of a shared graph.
        let first0 = t0.next_access().vaddr.raw() / VERTEX_BYTES;
        let first1 = t1.next_access().vaddr.raw() / VERTEX_BYTES;
        assert!(first0 < (g.vertex_count() as u64).div_ceil(2));
        assert!(first1 >= (g.vertex_count() as u64).div_ceil(2));
    }

    #[test]
    fn pagerank_mixes_reads_and_rank_writes() {
        let g = small_graph();
        let mut t = GraphKernelTrace::new(g, GraphKernel::PageRank, 0, 0, 1, 1);
        let writes = (0..10_000).filter(|_| t.next_access().write).count();
        assert!(writes > 0 && writes < 5000);
    }

    #[test]
    fn sgd_writes_more_than_pagerank() {
        let g = small_graph();
        let count_writes = |kernel| {
            let mut t = GraphKernelTrace::new(Arc::clone(&g), kernel, 0, 0, 1, 1);
            (0..20_000).filter(|_| t.next_access().write).count()
        };
        assert!(count_writes(GraphKernel::Sgd) > count_writes(GraphKernel::PageRank));
    }

    #[test]
    fn kernel_names_match_figures() {
        let names: Vec<_> = GraphKernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["pagerank", "tri_count", "graph500", "sgd", "lsh"]);
    }
}
