//! The workload catalogue: everything Figure 4 puts on its x-axis, plus a
//! factory that builds per-core trace generators.

use crate::graph::{GraphKernel, GraphKernelTrace, SyntheticGraph};
use crate::mix::SpecMix;
use crate::spec::SpecProgram;
use crate::trace::{TraceFactory, TraceGenerator};
use std::sync::Arc;

/// Every workload evaluated in the paper's Figures 4–6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// A multi-threaded graph kernel over a shared power-law graph.
    Graph(GraphKernel),
    /// A homogeneous SPEC workload: every core runs its own copy.
    Spec(SpecProgram),
    /// A heterogeneous SPEC mix (Table 4).
    Mix(SpecMix),
}

impl WorkloadKind {
    /// The 16 workloads of Figure 4, in the figure's x-axis order:
    /// 5 graph kernels, 8 SPEC programs, 3 mixes.
    pub fn figure4_suite() -> Vec<WorkloadKind> {
        let mut v = Vec::new();
        for k in GraphKernel::ALL {
            v.push(WorkloadKind::Graph(k));
        }
        for p in SpecProgram::FIGURE4 {
            v.push(WorkloadKind::Spec(p));
        }
        for m in SpecMix::ALL {
            v.push(WorkloadKind::Mix(m));
        }
        v
    }

    /// Only the graph kernels (used by the large-page study, Section 5.4.1).
    pub fn graph_suite() -> Vec<WorkloadKind> {
        GraphKernel::ALL
            .iter()
            .map(|&k| WorkloadKind::Graph(k))
            .collect()
    }

    /// Display name as printed on the figure axes.
    pub fn name(&self) -> String {
        match self {
            WorkloadKind::Graph(k) => k.name().to_string(),
            WorkloadKind::Spec(p) => p.name().to_string(),
            WorkloadKind::Mix(m) => m.name().to_string(),
        }
    }

    /// Whether this workload shares one address space across cores
    /// (multi-threaded) rather than running per-core programs.
    pub fn is_shared(&self) -> bool {
        matches!(self, WorkloadKind::Graph(_))
    }

    /// Every workload the catalogue can name: graph kernels, all SPEC
    /// programs (including the mix-only ones) and the Table 4 mixes.
    pub fn catalogue() -> Vec<WorkloadKind> {
        let mut v = Vec::new();
        for k in GraphKernel::ALL {
            v.push(WorkloadKind::Graph(k));
        }
        for p in SpecProgram::ALL {
            v.push(WorkloadKind::Spec(p));
        }
        for m in SpecMix::ALL {
            v.push(WorkloadKind::Mix(m));
        }
        v
    }

    /// All parsable workload names, in catalogue order (what a scenario
    /// file's `"builtin"` field may contain).
    pub fn all_names() -> Vec<String> {
        Self::catalogue().iter().map(|w| w.name()).collect()
    }

    /// Resolve a display name ("pagerank", "mcf", "mix1", ...) back to its
    /// workload, or `None` if no built-in workload has that name.
    pub fn parse(name: &str) -> Option<WorkloadKind> {
        Self::catalogue().into_iter().find(|w| w.name() == name)
    }
}

/// A fully specified workload: what to run and how big its data is.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark(s) to run.
    pub kind: WorkloadKind,
    /// Total data footprint across the machine, in bytes. The interesting
    /// regime is a footprint a few times larger than the DRAM cache.
    pub total_footprint_bytes: u64,
    /// RNG seed (traces are fully deterministic given the seed).
    pub seed: u64,
}

impl Workload {
    /// Create a workload description.
    pub fn new(kind: WorkloadKind, total_footprint_bytes: u64, seed: u64) -> Self {
        Workload {
            kind,
            total_footprint_bytes,
            seed,
        }
    }

    /// The workload's display name.
    pub fn name(&self) -> String {
        self.kind.name()
    }

    /// Build one trace generator per core.
    ///
    /// * Graph kernels share one graph; each core owns a vertex partition.
    /// * Homogeneous SPEC workloads give every core a private copy (disjoint
    ///   virtual regions) of the same program, splitting the footprint
    ///   budget evenly.
    /// * Mixes assign Table 4's program list round-robin over the cores.
    pub fn build_traces(&self, cores: usize) -> Vec<Box<dyn TraceGenerator>> {
        assert!(cores > 0, "need at least one core");
        // Each core's virtual region starts at a widely separated base so
        // per-core footprints can never collide.
        let region_stride: u64 = 1 << 40;
        match self.kind {
            WorkloadKind::Graph(kernel) => {
                let graph = Arc::new(SyntheticGraph::build(
                    self.total_footprint_bytes,
                    16,
                    self.seed,
                ));
                (0..cores)
                    .map(|core| {
                        Box::new(GraphKernelTrace::new(
                            Arc::clone(&graph),
                            kernel,
                            0,
                            core,
                            cores,
                            self.seed.wrapping_add(core as u64),
                        )) as Box<dyn TraceGenerator>
                    })
                    .collect()
            }
            WorkloadKind::Spec(program) => {
                let per_core = (self.total_footprint_bytes / cores as u64).max(2 * 4096);
                (0..cores)
                    .map(|core| {
                        program.build(
                            per_core,
                            core as u64 * region_stride,
                            self.seed.wrapping_add(core as u64 * 1013),
                        )
                    })
                    .collect()
            }
            WorkloadKind::Mix(mix) => {
                let per_core = (self.total_footprint_bytes / cores as u64).max(2 * 4096);
                (0..cores)
                    .map(|core| {
                        mix.program_for_core(core).build(
                            per_core,
                            core as u64 * region_stride,
                            self.seed.wrapping_add(core as u64 * 7919),
                        )
                    })
                    .collect()
            }
        }
    }
}

impl TraceFactory for Workload {
    fn name(&self) -> String {
        Workload::name(self)
    }

    fn build_traces(&self, cores: usize) -> Vec<Box<dyn TraceGenerator>> {
        Workload::build_traces(self, cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn figure4_suite_has_sixteen_workloads() {
        let suite = WorkloadKind::figure4_suite();
        assert_eq!(suite.len(), 16);
        let names: HashSet<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 16);
        assert_eq!(suite[0].name(), "pagerank");
        assert_eq!(suite[15].name(), "mix3");
    }

    #[test]
    fn graph_workloads_share_one_region() {
        let w = Workload::new(WorkloadKind::Graph(GraphKernel::PageRank), 4 << 20, 1);
        let mut traces = w.build_traces(4);
        assert_eq!(traces.len(), 4);
        // All cores' accesses fall in the same (shared) footprint.
        let fp = traces[0].footprint_bytes();
        for t in traces.iter_mut() {
            for _ in 0..200 {
                assert!(t.next_access().vaddr.raw() < fp);
            }
        }
    }

    #[test]
    fn spec_workloads_are_private_per_core() {
        let w = Workload::new(WorkloadKind::Spec(SpecProgram::Mcf), 16 << 20, 2);
        let mut traces = w.build_traces(4);
        // Core regions are separated by the region stride.
        let mut bases = HashSet::new();
        for t in traces.iter_mut() {
            bases.insert(t.next_access().vaddr.raw() >> 40);
        }
        assert_eq!(bases.len(), 4);
    }

    #[test]
    fn mix_assigns_different_programs_to_cores() {
        let w = Workload::new(WorkloadKind::Mix(SpecMix::Mix1), 32 << 20, 3);
        let traces = w.build_traces(16);
        let names: HashSet<_> = traces.iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names.len(), 8, "Table 4 mixes have 8 distinct programs");
    }

    #[test]
    fn workload_is_deterministic() {
        let w = Workload::new(WorkloadKind::Spec(SpecProgram::Soplex), 8 << 20, 7);
        let mut a = w.build_traces(2);
        let mut b = w.build_traces(2);
        for core in 0..2 {
            for _ in 0..500 {
                assert_eq!(a[core].next_access(), b[core].next_access());
            }
        }
    }
}
