//! A phase-changing multi-tenant mix (scenario family `"phased"`).
//!
//! Models a consolidated machine whose *active* tenant changes over time —
//! the regime that stresses a DRAM cache's replacement policy hardest.
//! Each tenant owns a private sub-region with its own two-region
//! ([`SyntheticParams`]) behaviour; execution proceeds in phases of
//! `phase_accesses` accesses, and in phase `p` tenant `p % tenants` receives
//! `active_share` of the accesses while the rest are spread round-robin over
//! the other tenants (background load).
//!
//! A frequency-based policy (Banshee) has to *unlearn* the previous phase's
//! hot set every phase change; an LRU policy adapts instantly but thrashes
//! inside a phase. Phase length relative to the epoch/counter dynamics is
//! the interesting knob, and it is scenario data, not code.

use crate::synthetic::{SyntheticParams, SyntheticTrace};
use crate::trace::{MemoryAccess, TraceGenerator};
use banshee_common::{XorShiftRng, PAGE_SIZE};

/// Parameters of the phase-changing multi-tenant model.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedParams {
    /// Display name for reporting.
    pub name: String,
    /// Accesses per phase (per core).
    pub phase_accesses: u64,
    /// Fraction of a phase's accesses that go to the active tenant
    /// (the rest are background load on the other tenants).
    pub active_share: f64,
    /// The tenants. Each entry's `footprint_bytes` sizes that tenant's
    /// private sub-region; regions are laid out consecutively.
    pub tenants: Vec<SyntheticParams>,
}

impl PhasedParams {
    /// Total footprint: the sum of the tenants' regions.
    pub fn footprint_bytes(&self) -> u64 {
        self.tenants.iter().map(|t| t.footprint_bytes).sum()
    }
}

/// The generator state for one core.
pub struct PhasedTrace {
    params: PhasedParams,
    tenants: Vec<SyntheticTrace>,
    rng: XorShiftRng,
    /// Accesses issued so far (drives the phase schedule).
    issued: u64,
    /// Round-robin cursor over the background tenants.
    background_cursor: usize,
}

impl PhasedTrace {
    /// Create a generator whose tenant regions start at `base`.
    pub fn new(params: PhasedParams, base: u64, seed: u64) -> Self {
        assert!(!params.tenants.is_empty(), "phased mix needs tenants");
        assert!(params.phase_accesses > 0, "phase length must be positive");
        let mut offset = base;
        let mut tenants = Vec::with_capacity(params.tenants.len());
        for (i, t) in params.tenants.iter().enumerate() {
            assert!(
                t.footprint_bytes >= 2 * PAGE_SIZE,
                "tenant footprint too small"
            );
            tenants.push(SyntheticTrace::new(
                t.clone(),
                offset,
                seed.wrapping_add(i as u64 * 0x9E37),
            ));
            offset += t.footprint_bytes;
        }
        PhasedTrace {
            tenants,
            rng: XorShiftRng::new(seed),
            issued: 0,
            background_cursor: 0,
            params,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &PhasedParams {
        &self.params
    }

    /// The tenant index active at the current access count.
    pub fn active_tenant(&self) -> usize {
        ((self.issued / self.params.phase_accesses) % self.tenants.len() as u64) as usize
    }
}

impl TraceGenerator for PhasedTrace {
    fn next_access(&mut self) -> MemoryAccess {
        let active = self.active_tenant();
        self.issued += 1;
        let n = self.tenants.len();
        let tenant = if n == 1 || self.rng.chance(self.params.active_share) {
            active
        } else {
            // Background load: round-robin over the non-active tenants so
            // every tenant keeps a deterministic trickle of traffic.
            self.background_cursor = (self.background_cursor + 1) % (n - 1);
            let t = self.background_cursor;
            if t >= active {
                t + 1
            } else {
                t
            }
        };
        self.tenants[tenant].next_access()
    }

    fn name(&self) -> &str {
        &self.params.name
    }

    fn footprint_bytes(&self) -> u64 {
        self.params.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_params(phase: u64) -> PhasedParams {
        PhasedParams {
            name: "phased".to_string(),
            phase_accesses: phase,
            active_share: 0.95,
            tenants: vec![
                SyntheticParams::base("tenant0", 1 << 20),
                SyntheticParams::base("tenant1", 1 << 20),
            ],
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = two_tenant_params(1000);
        let mut a = PhasedTrace::new(p.clone(), 0, 4);
        let mut b = PhasedTrace::new(p, 0, 4);
        for _ in 0..5000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn phases_shift_the_hot_region() {
        let p = two_tenant_params(2000);
        let region = |t: &mut PhasedTrace| {
            // Count which tenant region the next phase's accesses hit.
            let mut counts = [0usize; 2];
            for _ in 0..2000 {
                let a = t.next_access();
                counts[(a.vaddr.raw() >= (1 << 20)) as usize] += 1;
            }
            counts
        };
        let mut t = PhasedTrace::new(p, 0, 7);
        let first = region(&mut t);
        let second = region(&mut t);
        // Phase 0 favours tenant 0; phase 1 favours tenant 1.
        assert!(first[0] > first[1] * 3, "phase 0 counts {first:?}");
        assert!(second[1] > second[0] * 3, "phase 1 counts {second:?}");
    }

    #[test]
    fn footprint_sums_tenants() {
        let p = two_tenant_params(100);
        assert_eq!(p.footprint_bytes(), 2 << 20);
        let t = PhasedTrace::new(p, 0, 1);
        assert_eq!(t.footprint_bytes(), 2 << 20);
    }

    #[test]
    fn accesses_stay_inside_the_union_region() {
        let p = two_tenant_params(500);
        let total = p.footprint_bytes();
        let mut t = PhasedTrace::new(p, 0x40_0000, 3);
        for _ in 0..10_000 {
            let a = t.next_access();
            assert!(a.vaddr.raw() >= 0x40_0000);
            assert!(a.vaddr.raw() < 0x40_0000 + total);
        }
    }

    #[test]
    #[should_panic]
    fn empty_tenant_list_rejected() {
        let _ = PhasedTrace::new(
            PhasedParams {
                name: "x".into(),
                phase_accesses: 1,
                active_share: 0.9,
                tenants: vec![],
            },
            0,
            1,
        );
    }
}
