//! Per-benchmark parameterizations of the two-region synthetic model for the
//! SPEC CPU2006 programs the paper uses (Section 5.1.2 and Table 4).
//!
//! The parameters are calibrated from the qualitative characterizations in
//! the paper itself (and the general literature on these benchmarks):
//!
//! * `lbm` — streaming stencil with excellent intra-page spatial locality but
//!   little page reuse ("a page is only accessed a small number of times
//!   before it gets evicted", Section 5.2), which is exactly the pattern that
//!   punishes selective caching.
//! * `bwaves`, `libquantum`, `leslie`, `gems` — bandwidth-hungry streaming
//!   HPC codes with large footprints.
//! * `mcf`, `omnetpp` — pointer-chasing with poor spatial locality
//!   (Section 5.2 calls out the lack of spatial locality for `omnetpp`);
//!   `mcf` has a very large footprint with a hot core.
//! * `milc` — large sparse lattice arrays, poor spatial locality.
//! * `soplex`, `gcc`, `bzip2`, `cactus` — moderate intensity with a clear hot
//!   working set, so a well-managed DRAM cache captures them well.

use crate::synthetic::{SyntheticParams, SyntheticTrace};
use crate::trace::TraceGenerator;
use serde::{Deserialize, Serialize};

/// The SPEC CPU2006 programs used by the paper (alone or in mixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecProgram {
    Bwaves,
    Lbm,
    Mcf,
    Omnetpp,
    Libquantum,
    Gcc,
    Milc,
    Soplex,
    Gems,
    Bzip2,
    Leslie,
    Cactus,
}

impl SpecProgram {
    /// Every program the model knows, including the mix-only ones.
    pub const ALL: [SpecProgram; 12] = [
        SpecProgram::Bwaves,
        SpecProgram::Lbm,
        SpecProgram::Mcf,
        SpecProgram::Omnetpp,
        SpecProgram::Libquantum,
        SpecProgram::Gcc,
        SpecProgram::Milc,
        SpecProgram::Soplex,
        SpecProgram::Gems,
        SpecProgram::Bzip2,
        SpecProgram::Leslie,
        SpecProgram::Cactus,
    ];

    /// All programs that appear in the homogeneous Figure 4/5/6 lineup.
    pub const FIGURE4: [SpecProgram; 8] = [
        SpecProgram::Bwaves,
        SpecProgram::Lbm,
        SpecProgram::Mcf,
        SpecProgram::Omnetpp,
        SpecProgram::Libquantum,
        SpecProgram::Gcc,
        SpecProgram::Milc,
        SpecProgram::Soplex,
    ];

    /// The benchmark's display name (lowercase, as the paper prints it).
    pub fn name(&self) -> &'static str {
        match self {
            SpecProgram::Bwaves => "bwaves",
            SpecProgram::Lbm => "lbm",
            SpecProgram::Mcf => "mcf",
            SpecProgram::Omnetpp => "omnetpp",
            SpecProgram::Libquantum => "libquantum",
            SpecProgram::Gcc => "gcc",
            SpecProgram::Milc => "milc",
            SpecProgram::Soplex => "soplex",
            SpecProgram::Gems => "gems",
            SpecProgram::Bzip2 => "bzip2",
            SpecProgram::Leslie => "leslie",
            SpecProgram::Cactus => "cactus",
        }
    }

    /// Relative footprint of this program compared to the workload's
    /// per-core footprint budget (1.0 = exactly the budget).
    pub fn footprint_factor(&self) -> f64 {
        match self {
            SpecProgram::Mcf => 1.6,
            SpecProgram::Libquantum => 1.4,
            SpecProgram::Lbm => 1.3,
            SpecProgram::Bwaves => 1.2,
            SpecProgram::Milc => 1.2,
            SpecProgram::Gems => 1.1,
            SpecProgram::Leslie => 1.0,
            SpecProgram::Soplex => 0.9,
            SpecProgram::Cactus => 0.9,
            SpecProgram::Omnetpp => 0.8,
            SpecProgram::Gcc => 0.6,
            SpecProgram::Bzip2 => 0.5,
        }
    }

    /// The two-region parameters for this program, given a per-core
    /// footprint budget in bytes.
    pub fn params(&self, footprint_budget: u64) -> SyntheticParams {
        let footprint = ((footprint_budget as f64 * self.footprint_factor()) as u64).max(2 * 4096);
        let mut p = SyntheticParams::base(self.name(), footprint);
        match self {
            SpecProgram::Lbm => {
                // Pure streaming, excellent spatial locality, minimal reuse.
                p.streaming_fraction = 0.95;
                p.streaming_access_fraction = 0.95;
                p.streaming_burst_lines = 64;
                p.zipf_exponent = 0.2;
                p.lines_per_visit = 8;
                p.mean_inst_gap = 3;
                p.write_fraction = 0.45;
            }
            SpecProgram::Bwaves => {
                p.streaming_fraction = 0.8;
                p.streaming_access_fraction = 0.8;
                p.streaming_burst_lines = 48;
                p.zipf_exponent = 0.6;
                p.lines_per_visit = 8;
                p.mean_inst_gap = 3;
                p.write_fraction = 0.3;
            }
            SpecProgram::Libquantum => {
                p.streaming_fraction = 0.9;
                p.streaming_access_fraction = 0.85;
                p.streaming_burst_lines = 64;
                p.zipf_exponent = 0.5;
                p.lines_per_visit = 16;
                p.mean_inst_gap = 2;
                p.write_fraction = 0.25;
            }
            SpecProgram::Mcf => {
                // Pointer chasing over a big graph with a hot core.
                p.streaming_fraction = 0.2;
                p.streaming_access_fraction = 0.15;
                p.zipf_exponent = 0.95;
                p.lines_per_visit = 2;
                p.mean_inst_gap = 3;
                p.write_fraction = 0.25;
            }
            SpecProgram::Omnetpp => {
                // Discrete-event simulation: poor spatial locality, skewed
                // event structures.
                p.streaming_fraction = 0.1;
                p.streaming_access_fraction = 0.1;
                p.zipf_exponent = 1.0;
                p.lines_per_visit = 1;
                p.mean_inst_gap = 5;
                p.write_fraction = 0.35;
            }
            SpecProgram::Milc => {
                p.streaming_fraction = 0.4;
                p.streaming_access_fraction = 0.35;
                p.zipf_exponent = 0.4;
                p.lines_per_visit = 2;
                p.mean_inst_gap = 4;
                p.write_fraction = 0.35;
            }
            SpecProgram::Gcc => {
                p.streaming_fraction = 0.3;
                p.streaming_access_fraction = 0.3;
                p.zipf_exponent = 1.1;
                p.lines_per_visit = 4;
                p.mean_inst_gap = 8;
                p.write_fraction = 0.3;
            }
            SpecProgram::Soplex => {
                p.streaming_fraction = 0.5;
                p.streaming_access_fraction = 0.45;
                p.zipf_exponent = 0.9;
                p.lines_per_visit = 4;
                p.mean_inst_gap = 5;
                p.write_fraction = 0.25;
            }
            SpecProgram::Gems => {
                p.streaming_fraction = 0.7;
                p.streaming_access_fraction = 0.7;
                p.streaming_burst_lines = 32;
                p.zipf_exponent = 0.6;
                p.mean_inst_gap = 4;
                p.write_fraction = 0.3;
            }
            SpecProgram::Bzip2 => {
                p.streaming_fraction = 0.5;
                p.streaming_access_fraction = 0.5;
                p.zipf_exponent = 1.0;
                p.lines_per_visit = 8;
                p.mean_inst_gap = 10;
                p.write_fraction = 0.4;
            }
            SpecProgram::Leslie => {
                p.streaming_fraction = 0.75;
                p.streaming_access_fraction = 0.75;
                p.streaming_burst_lines = 32;
                p.zipf_exponent = 0.5;
                p.mean_inst_gap = 4;
                p.write_fraction = 0.35;
            }
            SpecProgram::Cactus => {
                p.streaming_fraction = 0.6;
                p.streaming_access_fraction = 0.55;
                p.zipf_exponent = 0.8;
                p.lines_per_visit = 4;
                p.mean_inst_gap = 6;
                p.write_fraction = 0.3;
            }
        }
        p
    }

    /// Build a trace generator for this program.
    pub fn build(
        &self,
        footprint_budget: u64,
        base_vaddr: u64,
        seed: u64,
    ) -> Box<dyn TraceGenerator> {
        Box::new(SyntheticTrace::new(
            self.params(footprint_budget),
            base_vaddr,
            seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_program_has_distinct_name() {
        let all = [
            SpecProgram::Bwaves,
            SpecProgram::Lbm,
            SpecProgram::Mcf,
            SpecProgram::Omnetpp,
            SpecProgram::Libquantum,
            SpecProgram::Gcc,
            SpecProgram::Milc,
            SpecProgram::Soplex,
            SpecProgram::Gems,
            SpecProgram::Bzip2,
            SpecProgram::Leslie,
            SpecProgram::Cactus,
        ];
        let names: HashSet<_> = all.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn figure4_lineup_has_eight_programs() {
        assert_eq!(SpecProgram::FIGURE4.len(), 8);
    }

    #[test]
    fn parameters_reflect_characterization() {
        let budget = 16 << 20;
        let lbm = SpecProgram::Lbm.params(budget);
        let omnetpp = SpecProgram::Omnetpp.params(budget);
        // lbm streams; omnetpp pointer-chases.
        assert!(lbm.streaming_access_fraction > 0.9);
        assert!(omnetpp.streaming_access_fraction < 0.2);
        // omnetpp touches single lines per page visit (poor spatial
        // locality); lbm touches long runs.
        assert!(omnetpp.lines_per_visit <= 2);
        assert!(lbm.streaming_burst_lines >= 32);
        // mcf has the largest footprint of the suite.
        let mcf = SpecProgram::Mcf.params(budget);
        assert!(mcf.footprint_bytes > lbm.footprint_bytes);
    }

    #[test]
    fn generators_build_and_run() {
        for prog in SpecProgram::FIGURE4 {
            let mut gen = prog.build(4 << 20, 0x1000_0000, 1);
            assert_eq!(gen.name(), prog.name());
            for _ in 0..100 {
                let a = gen.next_access();
                assert!(a.vaddr.raw() >= 0x1000_0000);
            }
            assert!(gen.footprint_bytes() >= 2 * 4096);
        }
    }
}
