//! A zipfian key-value store workload (scenario family `"kv"`).
//!
//! Models the memory behaviour of an in-memory key-value cache serving a
//! skewed request stream (the classic YCSB/memcached shape):
//!
//! * point operations pick a key from a Zipf distribution and touch the
//!   key's value — `value_bytes` of consecutive lines at a hash-scattered
//!   slot, so hot keys are spread across the address space the way a hash
//!   table spreads them;
//! * an occasional **scan** walks a run of consecutive slots sequentially
//!   (range queries, compaction, dump/restore), providing the streaming
//!   component; and
//! * writes are a configurable fraction of point operations.
//!
//! This is the family the built-in suite lacks: request-skewed, with value
//! granularity decoupled from both line and page size, so page-granularity
//! designs (Banshee, Unison) and line-granularity designs (Alloy) see very
//! different locality from the same stream.

use crate::trace::{MemoryAccess, TraceGenerator};
use banshee_common::{Addr, XorShiftRng, ZipfSampler, CACHE_LINE_SIZE, PAGE_SIZE};

/// Parameters of the zipfian key-value model.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyValueParams {
    /// Display name for reporting.
    pub name: String,
    /// Total footprint in bytes (the slot array; key count is derived as
    /// `footprint_bytes / value_bytes`).
    pub footprint_bytes: u64,
    /// Bytes per value; rounded up to whole cache lines.
    pub value_bytes: u64,
    /// Zipf exponent of the key popularity distribution
    /// (0 = uniform, ~0.99 = YCSB-like, >1 = extremely hot-key heavy).
    pub zipf_exponent: f64,
    /// Fraction of point operations that are writes (updates).
    pub write_fraction: f64,
    /// Probability that an operation is a sequential scan instead of a
    /// point lookup.
    pub scan_fraction: f64,
    /// Lines touched per scan operation.
    pub scan_lines: u64,
    /// Mean instruction gap between memory accesses (memory intensity).
    pub mean_inst_gap: u32,
}

impl KeyValueParams {
    /// A memcached-flavoured default: 256 B values, YCSB-like 0.99 skew,
    /// 10% writes, rare scans.
    pub fn base(name: &str, footprint_bytes: u64) -> Self {
        KeyValueParams {
            name: name.to_string(),
            footprint_bytes,
            value_bytes: 256,
            zipf_exponent: 0.99,
            write_fraction: 0.1,
            scan_fraction: 0.02,
            scan_lines: 64,
            mean_inst_gap: 6,
        }
    }

    /// Lines per value (at least one), clamped so the footprint always
    /// holds at least two whole values — a `value_bytes` larger than half
    /// the footprint is effectively shrunk rather than letting accesses
    /// spill past the declared region.
    pub fn value_lines(&self) -> u64 {
        let requested = self.value_bytes.div_ceil(CACHE_LINE_SIZE).max(1);
        let half_footprint = (self.footprint_bytes / CACHE_LINE_SIZE / 2).max(1);
        requested.min(half_footprint)
    }

    /// Number of key slots the footprint holds. `slots() * value_lines()`
    /// lines never exceed the footprint.
    pub fn slots(&self) -> u64 {
        (self.footprint_bytes / (self.value_lines() * CACHE_LINE_SIZE)).max(2)
    }
}

/// The generator state for one core's request stream.
pub struct KeyValueTrace {
    params: KeyValueParams,
    base: u64,
    slots: u64,
    value_lines: u64,
    zipf: ZipfSampler,
    rng: XorShiftRng,
    scan_cursor: u64,
    /// Remaining lines in the current operation and the next line index.
    burst_remaining: u64,
    burst_next_line: u64,
    burst_is_write: bool,
}

impl KeyValueTrace {
    /// Create a generator over `[base, base + footprint)`.
    pub fn new(params: KeyValueParams, base: u64, seed: u64) -> Self {
        assert!(
            params.footprint_bytes >= 2 * PAGE_SIZE,
            "key-value footprint too small"
        );
        let slots = params.slots();
        let value_lines = params.value_lines();
        let zipf = ZipfSampler::new(slots.min(1 << 22) as usize, params.zipf_exponent);
        KeyValueTrace {
            base,
            slots,
            value_lines,
            zipf,
            rng: XorShiftRng::new(seed),
            scan_cursor: 0,
            burst_remaining: 0,
            burst_next_line: 0,
            burst_is_write: false,
            params,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &KeyValueParams {
        &self.params
    }

    fn start_new_op(&mut self) {
        let total_lines = self.slots * self.value_lines;
        if self.rng.chance(self.params.scan_fraction) {
            // Sequential scan from a persistent cursor.
            self.burst_next_line = self.scan_cursor % total_lines;
            self.burst_remaining = self.params.scan_lines.max(1);
            self.scan_cursor = (self.scan_cursor + self.burst_remaining) % total_lines;
            self.burst_is_write = false;
        } else {
            // Point op: a zipf-ranked key, hash-scattered over the slots so
            // popular keys are not physically adjacent.
            let key = self.zipf.sample(&mut self.rng) as u64;
            let slot = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.slots;
            self.burst_next_line = slot * self.value_lines;
            self.burst_remaining = self.value_lines;
            self.burst_is_write = self.rng.chance(self.params.write_fraction);
        }
    }
}

impl TraceGenerator for KeyValueTrace {
    fn next_access(&mut self) -> MemoryAccess {
        if self.burst_remaining == 0 {
            self.start_new_op();
        }
        let line = self.burst_next_line;
        self.burst_next_line += 1;
        self.burst_remaining -= 1;
        let gap = if self.params.mean_inst_gap == 0 {
            0
        } else {
            let m = self.params.mean_inst_gap as u64;
            self.rng.range_inclusive(m / 2, m + m / 2) as u32
        };
        MemoryAccess {
            vaddr: Addr::new(
                self.base + (line % (self.slots * self.value_lines)) * CACHE_LINE_SIZE,
            ),
            write: self.burst_is_write,
            inst_gap: gap,
        }
    }

    fn name(&self) -> &str {
        &self.params.name
    }

    fn footprint_bytes(&self) -> u64 {
        self.params.footprint_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn params(footprint: u64) -> KeyValueParams {
        KeyValueParams::base("kv", footprint)
    }

    #[test]
    fn accesses_stay_inside_the_region() {
        let p = params(4 << 20);
        let mut t = KeyValueTrace::new(p.clone(), 0x200_0000, 1);
        for _ in 0..20_000 {
            let a = t.next_access();
            assert!(a.vaddr.raw() >= 0x200_0000);
            assert!(a.vaddr.raw() < 0x200_0000 + p.footprint_bytes);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = params(4 << 20);
        let mut a = KeyValueTrace::new(p.clone(), 0, 9);
        let mut b = KeyValueTrace::new(p, 0, 9);
        for _ in 0..2000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn skew_concentrates_on_hot_values() {
        let mut hot = params(8 << 20);
        hot.zipf_exponent = 1.2;
        hot.scan_fraction = 0.0;
        let mut uniform = hot.clone();
        uniform.zipf_exponent = 0.0;
        let distinct = |mut t: KeyValueTrace| {
            let mut pages = HashSet::new();
            for _ in 0..30_000 {
                pages.insert(t.next_access().vaddr.page());
            }
            pages.len()
        };
        let h = distinct(KeyValueTrace::new(hot, 0, 3));
        let u = distinct(KeyValueTrace::new(uniform, 0, 3));
        assert!(
            h * 2 < u * 3,
            "skewed kv should touch notably fewer distinct pages: {h} vs {u}"
        );
    }

    #[test]
    fn value_spans_whole_lines() {
        let mut p = params(4 << 20);
        p.value_bytes = 100; // rounds up to 2 lines
        p.scan_fraction = 0.0;
        assert_eq!(p.value_lines(), 2);
        let mut t = KeyValueTrace::new(p, 0, 5);
        // Every point op touches exactly value_lines consecutive lines.
        let first = t.next_access();
        let second = t.next_access();
        assert_eq!(second.vaddr.raw(), first.vaddr.raw() + CACHE_LINE_SIZE);
    }

    #[test]
    fn scans_are_sequential() {
        let mut p = params(4 << 20);
        p.scan_fraction = 1.0;
        p.scan_lines = 32;
        let mut t = KeyValueTrace::new(p, 0, 7);
        let mut prev = t.next_access().vaddr.raw();
        for _ in 0..20 {
            let next = t.next_access().vaddr.raw();
            assert_eq!(next, prev + CACHE_LINE_SIZE);
            prev = next;
        }
    }

    #[test]
    fn write_fraction_respected() {
        let mut p = params(4 << 20);
        p.write_fraction = 0.4;
        p.scan_fraction = 0.0;
        let mut t = KeyValueTrace::new(p, 0, 11);
        let writes = (0..30_000).filter(|_| t.next_access().write).count();
        let frac = writes as f64 / 30_000.0;
        assert!((0.25..0.55).contains(&frac), "write fraction {frac}");
    }

    #[test]
    #[should_panic]
    fn tiny_footprint_rejected() {
        let _ = KeyValueTrace::new(params(PAGE_SIZE), 0, 1);
    }

    #[test]
    fn oversized_values_are_clamped_inside_the_region() {
        // A value larger than half the footprint must not push accesses
        // past the declared region.
        let mut p = params(1 << 20);
        p.value_bytes = 1 << 20;
        assert!(p.slots() * p.value_lines() * CACHE_LINE_SIZE <= p.footprint_bytes);
        let mut t = KeyValueTrace::new(p.clone(), 0x800_0000, 13);
        for _ in 0..20_000 {
            let a = t.next_access();
            assert!(a.vaddr.raw() >= 0x800_0000);
            assert!(a.vaddr.raw() < 0x800_0000 + p.footprint_bytes);
        }
    }
}
