//! Data-driven scenario specifications: workloads, system-config overrides
//! and a sweep matrix as a JSON file instead of Rust code.
//!
//! A scenario file names a set of workloads (built-in catalogue entries,
//! fully parameterized synthetic/key-value/phased families, or external
//! trace replays), the designs to run them under, a sweep matrix
//! (footprint factors × seeds × optional DRAM page-policy and
//! write-queue-depth axes) and optional [`ScenarioOverrides`] applied
//! to the base `banshee_sim::SimConfig` of every cell. Parsing is
//! strict — unknown fields, out-of-range values and malformed entries fail
//! with the JSON path and the list of valid options, never a silent
//! default.
//!
//! The schema (all fields except `name` and `workloads` optional):
//!
//! ```json
//! {
//!   "name": "kv_pressure",
//!   "description": "zipfian kv vs the figure-4 designs",
//!   "workloads": [
//!     {"type": "builtin", "name": "mcf"},
//!     {"type": "kv", "name": "kv99", "zipf_exponent": 0.99},
//!     {"type": "synthetic", "name": "stream", "streaming_fraction": 0.9},
//!     {"type": "phased", "name": "tenants", "phase_accesses": 200000,
//!      "tenants": [{"like": "mcf", "share": 0.5}, {"like": "lbm", "share": 0.5}]},
//!     {"type": "trace", "path": "traces/captured.btrace"}
//!   ],
//!   "designs": ["NoCache", "Banshee"],
//!   "sweep": {"footprint_factors": [2, 4], "seeds": [42],
//!             "page_policies": ["open", "closed"], "write_queue_depths": [0, 32]},
//!   "config": {"cores": 8, "large_pages": true, "dram_scheduler": "frfcfs"}
//! }
//! ```

use crate::kv::{KeyValueParams, KeyValueTrace};
use crate::phased::{PhasedParams, PhasedTrace};
use crate::spec::SpecProgram;
use crate::synthetic::{SyntheticParams, SyntheticTrace};
use crate::trace::{TraceFactory, TraceGenerator};
use crate::trace_file::TraceData;
use crate::workload::{Workload, WorkloadKind};
use serde::Value;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A scenario file failed to parse or validate. The message always names
/// the offending JSON path and what would have been valid.
#[derive(Debug, Clone)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn err(path: &str, msg: impl fmt::Display) -> ScenarioError {
    ScenarioError(format!("{path}: {msg}"))
}

/// DRAM scheduler selection in a scenario file. Pure data — the sim crate
/// maps it onto `banshee_dram::SchedulerKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramSchedulerOverride {
    /// First-come-first-served write draining.
    Fcfs,
    /// First-ready FCFS (row hits first).
    FrFcfs,
}

impl DramSchedulerOverride {
    /// The scenario-file spelling.
    pub fn label(self) -> &'static str {
        match self {
            DramSchedulerOverride::Fcfs => "fcfs",
            DramSchedulerOverride::FrFcfs => "frfcfs",
        }
    }

    fn parse(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        match as_string(v, path)?.as_str() {
            "fcfs" => Ok(DramSchedulerOverride::Fcfs),
            "frfcfs" => Ok(DramSchedulerOverride::FrFcfs),
            other => Err(err(
                path,
                format!("unknown scheduler `{other}`; valid values: fcfs, frfcfs"),
            )),
        }
    }
}

/// DRAM page-policy selection in a scenario file (mapped onto
/// `banshee_dram::PagePolicy` by the sim crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramPagePolicyOverride {
    /// Rows stay open between accesses.
    Open,
    /// Rows auto-precharge after every access.
    Closed,
}

impl DramPagePolicyOverride {
    /// The scenario-file spelling.
    pub fn label(self) -> &'static str {
        match self {
            DramPagePolicyOverride::Open => "open",
            DramPagePolicyOverride::Closed => "closed",
        }
    }

    fn parse(v: &Value, path: &str) -> Result<Self, ScenarioError> {
        match as_string(v, path)?.as_str() {
            "open" => Ok(DramPagePolicyOverride::Open),
            "closed" => Ok(DramPagePolicyOverride::Closed),
            other => Err(err(
                path,
                format!("unknown page policy `{other}`; valid values: open, closed"),
            )),
        }
    }
}

/// System-configuration overrides a scenario may apply to every cell.
/// Pure data — `banshee_sim::SimConfig::apply_scenario_overrides` interprets
/// it (the sim crate depends on this one, not vice versa).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioOverrides {
    /// Number of cores to simulate.
    pub cores: Option<usize>,
    /// Measured instructions per cell.
    pub total_instructions: Option<u64>,
    /// Warm-up instructions per cell.
    pub warmup_instructions: Option<u64>,
    /// Instructions between controller epochs.
    pub epoch_instructions: Option<u64>,
    /// Outstanding-miss window per core.
    pub mlp_per_core: Option<usize>,
    /// Per-core TLB entries.
    pub tlb_entries: Option<usize>,
    /// Core issue width.
    pub issue_width: Option<u32>,
    /// DRAM-cache capacity in MiB (rescales the LLC and in-package DRAM
    /// the same way the built-in scales do).
    pub dram_cache_mib: Option<u64>,
    /// In-package : off-package bandwidth ratio (channel count).
    pub bandwidth_ratio: Option<usize>,
    /// In-package latency scale (Figure 8b's knob).
    pub latency_scale: Option<f64>,
    /// Run with 2 MiB large pages.
    pub large_pages: Option<bool>,
    /// Wrap designs with BATMAN bandwidth balancing.
    pub use_batman: Option<bool>,
    /// Memory-scheduler policy for both DRAM devices.
    pub dram_scheduler: Option<DramSchedulerOverride>,
    /// Row-buffer page policy for both DRAM devices.
    pub dram_page_policy: Option<DramPagePolicyOverride>,
    /// Per-channel write-queue capacity for both DRAM devices (0 services
    /// writes immediately; watermarks are rescaled proportionally).
    pub dram_write_queue_depth: Option<usize>,
    /// Bounded per-bank read-queue depth for both DRAM devices.
    pub dram_read_queue_depth: Option<usize>,
    /// Enable/disable periodic refresh (tREFI/tRFC) on both DRAM devices.
    pub dram_refresh: Option<bool>,
    /// Frequency-tracking backend for every design (`"exact"` or
    /// `"cms:<width>x<depth>"`).
    pub frequency_backend: Option<banshee_common::FrequencyBackendKind>,
}

impl ScenarioOverrides {
    /// True if no override is set.
    pub fn is_empty(&self) -> bool {
        *self == ScenarioOverrides::default()
    }
}

/// Telemetry-recorder knobs a scenario may carry. Pure parameterization:
/// the block does *not* turn telemetry on — activation stays with the
/// harness (`--telemetry DIR` / `BANSHEE_TELEMETRY`), so running the same
/// scenario with telemetry off is bit-for-bit unchanged. When telemetry is
/// active, set fields replace the recorder defaults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioTelemetry {
    /// Instructions between time-series samples.
    pub interval_instructions: Option<u64>,
    /// Time-series buffer capacity (samples beyond it are dropped).
    pub max_samples: Option<usize>,
    /// Event-ring capacity (oldest events are overwritten beyond it).
    pub max_events: Option<usize>,
}

/// The sweep matrix: cells are the cross product of workloads × designs ×
/// `footprint_factors` × `seeds` × the optional axes (`page_policies`,
/// `write_queue_depths`, `frequency_backends` — empty means "use the
/// config's value", one cell).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSweep {
    /// Workload footprint as a multiple of the DRAM-cache capacity.
    pub footprint_factors: Vec<f64>,
    /// RNG seeds (one full matrix per seed).
    pub seeds: Vec<u64>,
    /// DRAM page policies to sweep (empty: no sweep on this axis).
    pub page_policies: Vec<DramPagePolicyOverride>,
    /// DRAM write-queue depths to sweep (empty: no sweep on this axis).
    pub write_queue_depths: Vec<usize>,
    /// Frequency-tracking backends to sweep (empty: no sweep on this axis).
    pub frequency_backends: Vec<banshee_common::FrequencyBackendKind>,
}

impl Default for ScenarioSweep {
    fn default() -> Self {
        ScenarioSweep {
            footprint_factors: vec![4.0],
            seeds: vec![42],
            page_policies: Vec::new(),
            write_queue_depths: Vec::new(),
            frequency_backends: Vec::new(),
        }
    }
}

/// One tenant of a phased multi-tenant workload: a SPEC program's two-region
/// shape at a share of the workload's footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Which program's behaviour this tenant mimics.
    pub like: SpecProgram,
    /// Fraction of the workload footprint this tenant owns.
    pub share: f64,
}

/// One workload entry of a scenario.
#[derive(Debug, Clone)]
pub enum ScenarioWorkloadSpec {
    /// A built-in catalogue workload ("pagerank", "mcf", "mix1", ...).
    Builtin {
        /// The resolved catalogue entry.
        kind: WorkloadKind,
    },
    /// A fully parameterized two-region synthetic program (per-core private
    /// copies, like the SPEC models). The template's `footprint_bytes` is a
    /// placeholder; each cell sets the real footprint.
    Synthetic {
        /// Parameter template (name + shape; footprint filled per cell).
        template: SyntheticParams,
    },
    /// A zipfian key-value store (one region shared by all cores).
    KeyValue {
        /// Parameter template (name + shape; footprint filled per cell).
        template: KeyValueParams,
    },
    /// A phase-changing multi-tenant mix (one region shared by all cores).
    Phased {
        /// Display name.
        name: String,
        /// Accesses per phase, per core.
        phase_accesses: u64,
        /// Fraction of accesses going to the active tenant.
        active_share: f64,
        /// The tenants.
        tenants: Vec<TenantSpec>,
    },
    /// Replay of an external trace file.
    Trace {
        /// The path as written in the scenario (for display).
        path: String,
        /// The decoded trace.
        data: Arc<TraceData>,
    },
}

/// One fully-resolved workload entry (spec + optional absolute footprint).
#[derive(Debug, Clone)]
pub struct ScenarioWorkloadEntry {
    /// What to run.
    pub spec: ScenarioWorkloadSpec,
    /// Absolute footprint in bytes, overriding the sweep's footprint
    /// factor for this entry.
    pub footprint_bytes: Option<u64>,
}

impl ScenarioWorkloadSpec {
    /// The entry's display name (tables, result labels).
    pub fn display_name(&self) -> String {
        match self {
            ScenarioWorkloadSpec::Builtin { kind } => kind.name(),
            ScenarioWorkloadSpec::Synthetic { template } => template.name.clone(),
            ScenarioWorkloadSpec::KeyValue { template } => template.name.clone(),
            ScenarioWorkloadSpec::Phased { name, .. } => name.clone(),
            ScenarioWorkloadSpec::Trace { path, data } => data
                .streams
                .first()
                .map(|s| s.name.clone())
                .unwrap_or_else(|| path.clone()),
        }
    }

    /// A canonical description of everything about this entry that affects
    /// simulation results — the workload half of a cell's store key. Trace
    /// entries key on the trace *content* hash, so editing the file
    /// invalidates cached cells while renaming it does not.
    pub fn key_material(&self) -> String {
        match self {
            ScenarioWorkloadSpec::Builtin { kind } => format!("builtin={kind:?}"),
            ScenarioWorkloadSpec::Synthetic { template } => {
                format!("synthetic={template:?}")
            }
            ScenarioWorkloadSpec::KeyValue { template } => format!("kv={template:?}"),
            ScenarioWorkloadSpec::Phased {
                name,
                phase_accesses,
                active_share,
                tenants,
            } => format!(
                "phased={name}|phase_accesses={phase_accesses}|active_share={active_share}|tenants={tenants:?}"
            ),
            ScenarioWorkloadSpec::Trace { data, .. } => {
                format!("trace-content={:016x}", data.content_hash())
            }
        }
    }

    /// The footprint this workload has regardless of the sweep's footprint
    /// factor, if any. Trace replays are whatever was captured — scaling a
    /// factor cannot change the data — so sweeping factors over a trace
    /// entry must neither re-key nor re-simulate it.
    pub fn fixed_footprint_bytes(&self) -> Option<u64> {
        match self {
            ScenarioWorkloadSpec::Trace { data, .. } => Some(data.max_stream_footprint_bytes()),
            _ => None,
        }
    }

    /// Bind the spec to a concrete footprint and seed, yielding a
    /// [`TraceFactory`] the simulator can run.
    pub fn instantiate(&self, total_footprint_bytes: u64, seed: u64) -> ScenarioWorkloadInstance {
        ScenarioWorkloadInstance {
            spec: self.clone(),
            total_footprint_bytes,
            seed,
        }
    }
}

/// A [`ScenarioWorkloadSpec`] bound to a footprint and seed (one cell's
/// workload). Implements [`TraceFactory`], so `run_one` accepts it exactly
/// like a built-in [`Workload`].
#[derive(Debug, Clone)]
pub struct ScenarioWorkloadInstance {
    spec: ScenarioWorkloadSpec,
    total_footprint_bytes: u64,
    seed: u64,
}

impl ScenarioWorkloadInstance {
    /// The full store-key material for this instance: spec content plus
    /// the bound footprint and seed.
    pub fn key_material(&self) -> String {
        format!(
            "{}|footprint={}|seed={}",
            self.spec.key_material(),
            self.total_footprint_bytes,
            self.seed
        )
    }
}

impl TraceFactory for ScenarioWorkloadInstance {
    fn name(&self) -> String {
        self.spec.display_name()
    }

    fn build_traces(&self, cores: usize) -> Vec<Box<dyn TraceGenerator>> {
        assert!(cores > 0, "need at least one core");
        let region_stride: u64 = 1 << 40;
        let total = self.total_footprint_bytes;
        match &self.spec {
            ScenarioWorkloadSpec::Builtin { kind } => {
                Workload::new(*kind, total, self.seed).build_traces(cores)
            }
            ScenarioWorkloadSpec::Synthetic { template } => {
                // Per-core private copies, like the SPEC models.
                let per_core = (total / cores as u64).max(2 * 4096);
                (0..cores)
                    .map(|core| {
                        let mut params = template.clone();
                        params.footprint_bytes = per_core;
                        Box::new(SyntheticTrace::new(
                            params,
                            core as u64 * region_stride,
                            self.seed.wrapping_add(core as u64 * 1013),
                        )) as Box<dyn TraceGenerator>
                    })
                    .collect()
            }
            ScenarioWorkloadSpec::KeyValue { template } => {
                // One keyspace shared by every core (a multi-threaded
                // server), with per-core request streams.
                let mut params = template.clone();
                params.footprint_bytes = total.max(2 * 4096 * 2);
                (0..cores)
                    .map(|core| {
                        Box::new(KeyValueTrace::new(
                            params.clone(),
                            0,
                            self.seed.wrapping_add(core as u64 * 7919),
                        )) as Box<dyn TraceGenerator>
                    })
                    .collect()
            }
            ScenarioWorkloadSpec::Phased {
                name,
                phase_accesses,
                active_share,
                tenants,
            } => {
                // All cores see the same tenant layout over one shared
                // region; per-core RNG streams differ.
                let params = PhasedParams {
                    name: name.clone(),
                    phase_accesses: *phase_accesses,
                    active_share: *active_share,
                    tenants: tenants
                        .iter()
                        .enumerate()
                        .map(|(i, t)| {
                            let budget = ((total as f64 * t.share) as u64).max(2 * 4096);
                            let mut p = t.like.params(budget);
                            p.footprint_bytes = budget.max(2 * 4096);
                            p.name = format!("{name}.t{i}");
                            p
                        })
                        .collect(),
                };
                (0..cores)
                    .map(|core| {
                        Box::new(PhasedTrace::new(
                            params.clone(),
                            0,
                            self.seed.wrapping_add(core as u64 * 2459),
                        )) as Box<dyn TraceGenerator>
                    })
                    .collect()
            }
            ScenarioWorkloadSpec::Trace { data, .. } => data.replay_generators(cores),
        }
    }
}

/// A parsed, validated scenario file.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (used for output files; `[a-z0-9_-]+`).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// The workload entries.
    pub workloads: Vec<ScenarioWorkloadEntry>,
    /// Design labels to run each workload under. Empty means "the harness
    /// default lineup"; labels are validated by the experiment harness,
    /// which knows the design catalogue.
    pub designs: Vec<String>,
    /// The sweep matrix.
    pub sweep: ScenarioSweep,
    /// System-config overrides applied to every cell.
    pub overrides: ScenarioOverrides,
    /// Telemetry-recorder knobs, applied only when the harness activates
    /// telemetry (never turns it on by itself).
    pub telemetry: Option<ScenarioTelemetry>,
}

impl ScenarioSpec {
    /// Parse and validate a scenario file. Relative trace paths resolve
    /// against the file's directory.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ScenarioSpec, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError(format!("cannot read {}: {e}", path.display())))?;
        let base = path.parent().unwrap_or_else(|| Path::new("."));
        Self::from_json_str(&text, base)
            .map_err(|e| ScenarioError(format!("{}: {}", path.display(), e.0)))
    }

    /// Parse and validate scenario JSON. `base_dir` anchors relative trace
    /// paths.
    pub fn from_json_str(text: &str, base_dir: &Path) -> Result<ScenarioSpec, ScenarioError> {
        let value = serde_json::parse_value(text)
            .map_err(|e| ScenarioError(format!("not valid JSON ({e})")))?;
        Self::from_value(&value, base_dir)
    }

    /// Expand the number of cells this scenario describes (per design, if
    /// `designs` is empty).
    pub fn cells_per_design(&self) -> usize {
        self.workloads.len()
            * self.sweep.footprint_factors.len()
            * self.sweep.seeds.len()
            * self.sweep.page_policies.len().max(1)
            * self.sweep.write_queue_depths.len().max(1)
            * self.sweep.frequency_backends.len().max(1)
    }

    fn from_value(value: &Value, base_dir: &Path) -> Result<ScenarioSpec, ScenarioError> {
        let obj = as_object(value, "scenario")?;
        check_fields(
            obj,
            "scenario",
            &[
                "name",
                "description",
                "workloads",
                "designs",
                "sweep",
                "config",
                "telemetry",
            ],
        )?;
        let name = req_string(obj, "name", "scenario")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(err(
                "scenario.name",
                format!("`{name}` must be non-empty [a-z0-9_-] (it names output files)"),
            ));
        }
        let description = opt_string(obj, "description", "scenario")?.unwrap_or_default();

        let workloads_value = get(obj, "workloads")
            .ok_or_else(|| err("scenario", "missing required field `workloads`"))?;
        let entries = as_array(workloads_value, "scenario.workloads")?;
        if entries.is_empty() {
            return Err(err("scenario.workloads", "needs at least one workload"));
        }
        let mut workloads = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            workloads.push(parse_workload(
                entry,
                &format!("scenario.workloads[{i}]"),
                base_dir,
            )?);
        }
        let mut names: Vec<String> = workloads.iter().map(|w| w.spec.display_name()).collect();
        names.sort();
        names.dedup();
        if names.len() != workloads.len() {
            return Err(err(
                "scenario.workloads",
                "workload names must be unique (they label result cells)",
            ));
        }

        let designs = match get(obj, "designs") {
            None => Vec::new(),
            Some(v) => {
                let items = as_array(v, "scenario.designs")?;
                items
                    .iter()
                    .enumerate()
                    .map(|(i, d)| as_string(d, &format!("scenario.designs[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        let sweep = match get(obj, "sweep") {
            None => ScenarioSweep::default(),
            Some(v) => parse_sweep(v)?,
        };
        let overrides = match get(obj, "config") {
            None => ScenarioOverrides::default(),
            Some(v) => parse_overrides(v)?,
        };
        let telemetry = match get(obj, "telemetry") {
            None => None,
            Some(v) => Some(parse_telemetry(v)?),
        };

        Ok(ScenarioSpec {
            name,
            description,
            workloads,
            designs,
            sweep,
            overrides,
            telemetry,
        })
    }
}

// ---------------------------------------------------------------------------
// Parsing helpers: strict, path-labelled decoding over `serde::Value`.

fn as_object<'v>(v: &'v Value, path: &str) -> Result<&'v [(String, Value)], ScenarioError> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(err(
            path,
            format!("expected an object, got {}", other.kind()),
        )),
    }
}

fn as_array<'v>(v: &'v Value, path: &str) -> Result<&'v [Value], ScenarioError> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(err(
            path,
            format!("expected an array, got {}", other.kind()),
        )),
    }
}

fn as_string(v: &Value, path: &str) -> Result<String, ScenarioError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(err(
            path,
            format!("expected a string, got {}", other.kind()),
        )),
    }
}

fn as_u64(v: &Value, path: &str) -> Result<u64, ScenarioError> {
    match v {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        other => Err(err(
            path,
            format!("expected a non-negative integer, got {}", other.kind()),
        )),
    }
}

fn as_f64(v: &Value, path: &str) -> Result<f64, ScenarioError> {
    match v {
        Value::Float(x) => Ok(*x),
        Value::UInt(n) => Ok(*n as f64),
        Value::Int(n) => Ok(*n as f64),
        other => Err(err(
            path,
            format!("expected a number, got {}", other.kind()),
        )),
    }
}

fn as_bool(v: &Value, path: &str) -> Result<bool, ScenarioError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(err(
            path,
            format!("expected a boolean, got {}", other.kind()),
        )),
    }
}

fn get<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req_string(obj: &[(String, Value)], key: &str, path: &str) -> Result<String, ScenarioError> {
    get(obj, key)
        .ok_or_else(|| err(path, format!("missing required field `{key}`")))
        .and_then(|v| as_string(v, &format!("{path}.{key}")))
}

fn opt_string(
    obj: &[(String, Value)],
    key: &str,
    path: &str,
) -> Result<Option<String>, ScenarioError> {
    get(obj, key)
        .map(|v| as_string(v, &format!("{path}.{key}")))
        .transpose()
}

/// Reject unknown fields so typos fail loudly instead of being ignored.
fn check_fields(obj: &[(String, Value)], path: &str, valid: &[&str]) -> Result<(), ScenarioError> {
    for (key, _) in obj {
        if !valid.contains(&key.as_str()) {
            return Err(err(
                path,
                format!("unknown field `{key}`; valid fields: {}", valid.join(", ")),
            ));
        }
    }
    Ok(())
}

fn fraction(v: &Value, path: &str) -> Result<f64, ScenarioError> {
    let x = as_f64(v, path)?;
    if !(0.0..=1.0).contains(&x) {
        return Err(err(path, format!("{x} is outside [0, 1]")));
    }
    Ok(x)
}

fn parse_workload(
    value: &Value,
    path: &str,
    base_dir: &Path,
) -> Result<ScenarioWorkloadEntry, ScenarioError> {
    let obj = as_object(value, path)?;
    let kind = req_string(obj, "type", path)?;
    let footprint_bytes = get(obj, "footprint_mib")
        .map(|v| bounded_u64(v, &format!("{path}.footprint_mib"), 1, 65_536).map(|m| m << 20))
        .transpose()?;
    let spec = match kind.as_str() {
        "builtin" => {
            check_fields(obj, path, &["type", "name", "footprint_mib"])?;
            let name = req_string(obj, "name", path)?;
            let kind = WorkloadKind::parse(&name).ok_or_else(|| {
                err(
                    &format!("{path}.name"),
                    format!(
                        "unknown built-in workload `{name}`; valid names: {}",
                        WorkloadKind::all_names().join(", ")
                    ),
                )
            })?;
            ScenarioWorkloadSpec::Builtin { kind }
        }
        "synthetic" => {
            check_fields(
                obj,
                path,
                &[
                    "type",
                    "name",
                    "footprint_mib",
                    "streaming_fraction",
                    "streaming_access_fraction",
                    "zipf_exponent",
                    "lines_per_visit",
                    "streaming_burst_lines",
                    "mean_inst_gap",
                    "write_fraction",
                ],
            )?;
            let name = req_string(obj, "name", path)?;
            let mut t = SyntheticParams::base(&name, 2 * 4096);
            if let Some(v) = get(obj, "streaming_fraction") {
                t.streaming_fraction = fraction(v, &format!("{path}.streaming_fraction"))?;
            }
            if let Some(v) = get(obj, "streaming_access_fraction") {
                t.streaming_access_fraction =
                    fraction(v, &format!("{path}.streaming_access_fraction"))?;
            }
            if let Some(v) = get(obj, "zipf_exponent") {
                t.zipf_exponent = bounded_f64(v, &format!("{path}.zipf_exponent"), 0.0, 3.0)?;
            }
            if let Some(v) = get(obj, "lines_per_visit") {
                t.lines_per_visit = bounded_u64(v, &format!("{path}.lines_per_visit"), 1, 64)?;
            }
            if let Some(v) = get(obj, "streaming_burst_lines") {
                t.streaming_burst_lines =
                    bounded_u64(v, &format!("{path}.streaming_burst_lines"), 1, 1024)?;
            }
            if let Some(v) = get(obj, "mean_inst_gap") {
                t.mean_inst_gap =
                    bounded_u64(v, &format!("{path}.mean_inst_gap"), 0, 10_000)? as u32;
            }
            if let Some(v) = get(obj, "write_fraction") {
                t.write_fraction = fraction(v, &format!("{path}.write_fraction"))?;
            }
            ScenarioWorkloadSpec::Synthetic { template: t }
        }
        "kv" => {
            check_fields(
                obj,
                path,
                &[
                    "type",
                    "name",
                    "footprint_mib",
                    "value_bytes",
                    "zipf_exponent",
                    "write_fraction",
                    "scan_fraction",
                    "scan_lines",
                    "mean_inst_gap",
                ],
            )?;
            let name = req_string(obj, "name", path)?;
            let mut t = KeyValueParams::base(&name, 2 * 4096);
            if let Some(v) = get(obj, "value_bytes") {
                t.value_bytes = bounded_u64(v, &format!("{path}.value_bytes"), 1, 1 << 20)?;
            }
            if let Some(v) = get(obj, "zipf_exponent") {
                t.zipf_exponent = bounded_f64(v, &format!("{path}.zipf_exponent"), 0.0, 3.0)?;
            }
            if let Some(v) = get(obj, "write_fraction") {
                t.write_fraction = fraction(v, &format!("{path}.write_fraction"))?;
            }
            if let Some(v) = get(obj, "scan_fraction") {
                t.scan_fraction = fraction(v, &format!("{path}.scan_fraction"))?;
            }
            if let Some(v) = get(obj, "scan_lines") {
                t.scan_lines = bounded_u64(v, &format!("{path}.scan_lines"), 1, 65_536)?;
            }
            if let Some(v) = get(obj, "mean_inst_gap") {
                t.mean_inst_gap =
                    bounded_u64(v, &format!("{path}.mean_inst_gap"), 0, 10_000)? as u32;
            }
            ScenarioWorkloadSpec::KeyValue { template: t }
        }
        "phased" => {
            check_fields(
                obj,
                path,
                &[
                    "type",
                    "name",
                    "footprint_mib",
                    "phase_accesses",
                    "active_share",
                    "tenants",
                ],
            )?;
            let name = req_string(obj, "name", path)?;
            let phase_accesses = match get(obj, "phase_accesses") {
                Some(v) => bounded_u64(v, &format!("{path}.phase_accesses"), 1, u64::MAX)?,
                None => 200_000,
            };
            let active_share = match get(obj, "active_share") {
                Some(v) => fraction(v, &format!("{path}.active_share"))?,
                None => 0.9,
            };
            let tenants_value = get(obj, "tenants")
                .ok_or_else(|| err(path, "phased workloads need a `tenants` array"))?;
            let tenant_items = as_array(tenants_value, &format!("{path}.tenants"))?;
            if tenant_items.len() < 2 {
                return Err(err(
                    &format!("{path}.tenants"),
                    "needs at least two tenants (one tenant never changes phase)",
                ));
            }
            let mut tenants = Vec::with_capacity(tenant_items.len());
            for (i, t) in tenant_items.iter().enumerate() {
                let tpath = format!("{path}.tenants[{i}]");
                let tobj = as_object(t, &tpath)?;
                check_fields(tobj, &tpath, &["like", "share"])?;
                let like_name = req_string(tobj, "like", &tpath)?;
                let like = SpecProgram::ALL
                    .iter()
                    .copied()
                    .find(|p| p.name() == like_name)
                    .ok_or_else(|| {
                        err(
                            &format!("{tpath}.like"),
                            format!(
                                "unknown program `{like_name}`; valid names: {}",
                                SpecProgram::ALL.map(|p| p.name()).join(", ")
                            ),
                        )
                    })?;
                let share = match get(tobj, "share") {
                    Some(v) => fraction(v, &format!("{tpath}.share"))?,
                    None => 1.0 / tenant_items.len() as f64,
                };
                tenants.push(TenantSpec { like, share });
            }
            let total_share: f64 = tenants.iter().map(|t| t.share).sum();
            if total_share < 1.0 - 1e-3 {
                return Err(err(
                    &format!("{path}.tenants"),
                    format!(
                        "tenant shares sum to {total_share:.3}; they must sum to 1.0 \
                         (the workload footprint is divided among tenants, so a \
                         smaller sum would silently shrink the simulated working set)"
                    ),
                ));
            }
            if total_share > 1.0 + 1e-9 {
                return Err(err(
                    &format!("{path}.tenants"),
                    format!("tenant shares sum to {total_share:.3}, which exceeds 1.0"),
                ));
            }
            ScenarioWorkloadSpec::Phased {
                name,
                phase_accesses,
                active_share,
                tenants,
            }
        }
        "trace" => {
            // No `footprint_mib` here: a replay's footprint is whatever was
            // captured, so accepting the knob would be a silent no-op.
            check_fields(obj, path, &["type", "path"])?;
            let rel = req_string(obj, "path", path)?;
            let resolved = if Path::new(&rel).is_absolute() {
                PathBuf::from(&rel)
            } else {
                base_dir.join(&rel)
            };
            let data = TraceData::read_file(&resolved).map_err(|e| {
                err(
                    &format!("{path}.path"),
                    format!("cannot load trace {}: {e}", resolved.display()),
                )
            })?;
            if data.streams.is_empty() || data.total_accesses() == 0 {
                return Err(err(
                    &format!("{path}.path"),
                    format!("trace {} has no accesses to replay", resolved.display()),
                ));
            }
            // Replay round-robins cores over streams, so every stream must
            // have at least one access — catch it here as a parse error
            // rather than a panic mid-simulation.
            if let Some(empty) = data.streams.iter().find(|s| s.accesses.is_empty()) {
                return Err(err(
                    &format!("{path}.path"),
                    format!(
                        "trace {}: stream `{}` has no accesses; every stream must be \
                         non-empty to be replayed",
                        resolved.display(),
                        empty.name
                    ),
                ));
            }
            ScenarioWorkloadSpec::Trace {
                path: rel,
                data: Arc::new(data),
            }
        }
        other => {
            return Err(err(
                &format!("{path}.type"),
                format!(
                    "unknown workload type `{other}`; valid types: builtin, synthetic, kv, phased, trace"
                ),
            ))
        }
    };
    Ok(ScenarioWorkloadEntry {
        spec,
        footprint_bytes,
    })
}

fn bounded_u64(v: &Value, path: &str, lo: u64, hi: u64) -> Result<u64, ScenarioError> {
    let n = as_u64(v, path)?;
    if n < lo || n > hi {
        return Err(err(path, format!("{n} is outside [{lo}, {hi}]")));
    }
    Ok(n)
}

fn bounded_f64(v: &Value, path: &str, lo: f64, hi: f64) -> Result<f64, ScenarioError> {
    let x = as_f64(v, path)?;
    if !(lo..=hi).contains(&x) {
        return Err(err(path, format!("{x} is outside [{lo}, {hi}]")));
    }
    Ok(x)
}

fn parse_sweep(value: &Value) -> Result<ScenarioSweep, ScenarioError> {
    let obj = as_object(value, "scenario.sweep")?;
    check_fields(
        obj,
        "scenario.sweep",
        &[
            "footprint_factors",
            "seeds",
            "page_policies",
            "write_queue_depths",
            "frequency_backends",
        ],
    )?;
    let mut sweep = ScenarioSweep::default();
    if let Some(v) = get(obj, "footprint_factors") {
        let items = as_array(v, "scenario.sweep.footprint_factors")?;
        if items.is_empty() {
            return Err(err("scenario.sweep.footprint_factors", "must not be empty"));
        }
        sweep.footprint_factors = items
            .iter()
            .enumerate()
            .map(|(i, x)| {
                bounded_f64(
                    x,
                    &format!("scenario.sweep.footprint_factors[{i}]"),
                    0.125,
                    64.0,
                )
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = get(obj, "seeds") {
        let items = as_array(v, "scenario.sweep.seeds")?;
        if items.is_empty() {
            return Err(err("scenario.sweep.seeds", "must not be empty"));
        }
        sweep.seeds = items
            .iter()
            .enumerate()
            .map(|(i, x)| as_u64(x, &format!("scenario.sweep.seeds[{i}]")))
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = get(obj, "page_policies") {
        let items = as_array(v, "scenario.sweep.page_policies")?;
        if items.is_empty() {
            return Err(err(
                "scenario.sweep.page_policies",
                "must not be empty (omit the field to skip the sweep)",
            ));
        }
        sweep.page_policies = items
            .iter()
            .enumerate()
            .map(|(i, x)| {
                DramPagePolicyOverride::parse(x, &format!("scenario.sweep.page_policies[{i}]"))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = get(obj, "write_queue_depths") {
        let items = as_array(v, "scenario.sweep.write_queue_depths")?;
        if items.is_empty() {
            return Err(err(
                "scenario.sweep.write_queue_depths",
                "must not be empty (omit the field to skip the sweep)",
            ));
        }
        sweep.write_queue_depths = items
            .iter()
            .enumerate()
            .map(|(i, x)| {
                bounded_u64(
                    x,
                    &format!("scenario.sweep.write_queue_depths[{i}]"),
                    0,
                    4096,
                )
                .map(|n| n as usize)
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(v) = get(obj, "frequency_backends") {
        let items = as_array(v, "scenario.sweep.frequency_backends")?;
        if items.is_empty() {
            return Err(err(
                "scenario.sweep.frequency_backends",
                "must not be empty (omit the field to skip the sweep)",
            ));
        }
        sweep.frequency_backends = items
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let path = format!("scenario.sweep.frequency_backends[{i}]");
                let label = as_string(x, &path)?;
                banshee_common::FrequencyBackendKind::parse(&label).map_err(|e| err(&path, e))
            })
            .collect::<Result<_, _>>()?;
    }
    Ok(sweep)
}

fn parse_overrides(value: &Value) -> Result<ScenarioOverrides, ScenarioError> {
    let obj = as_object(value, "scenario.config")?;
    check_fields(
        obj,
        "scenario.config",
        &[
            "cores",
            "total_instructions",
            "warmup_instructions",
            "epoch_instructions",
            "mlp_per_core",
            "tlb_entries",
            "issue_width",
            "dram_cache_mib",
            "bandwidth_ratio",
            "latency_scale",
            "large_pages",
            "use_batman",
            "dram_scheduler",
            "dram_page_policy",
            "dram_write_queue_depth",
            "dram_read_queue_depth",
            "dram_refresh",
            "frequency_backend",
        ],
    )?;
    let mut o = ScenarioOverrides::default();
    let p = "scenario.config";
    if let Some(v) = get(obj, "cores") {
        o.cores = Some(bounded_u64(v, &format!("{p}.cores"), 1, 1024)? as usize);
    }
    if let Some(v) = get(obj, "total_instructions") {
        o.total_instructions = Some(bounded_u64(
            v,
            &format!("{p}.total_instructions"),
            1000,
            u64::MAX,
        )?);
    }
    if let Some(v) = get(obj, "warmup_instructions") {
        o.warmup_instructions = Some(bounded_u64(
            v,
            &format!("{p}.warmup_instructions"),
            0,
            u64::MAX,
        )?);
    }
    if let Some(v) = get(obj, "epoch_instructions") {
        o.epoch_instructions = Some(bounded_u64(
            v,
            &format!("{p}.epoch_instructions"),
            1000,
            u64::MAX,
        )?);
    }
    if let Some(v) = get(obj, "mlp_per_core") {
        o.mlp_per_core = Some(bounded_u64(v, &format!("{p}.mlp_per_core"), 1, 1024)? as usize);
    }
    if let Some(v) = get(obj, "tlb_entries") {
        o.tlb_entries = Some(bounded_u64(v, &format!("{p}.tlb_entries"), 1, 1 << 20)? as usize);
    }
    if let Some(v) = get(obj, "issue_width") {
        o.issue_width = Some(bounded_u64(v, &format!("{p}.issue_width"), 1, 64)? as u32);
    }
    if let Some(v) = get(obj, "dram_cache_mib") {
        o.dram_cache_mib = Some(bounded_u64(v, &format!("{p}.dram_cache_mib"), 1, 1 << 20)?);
    }
    if let Some(v) = get(obj, "bandwidth_ratio") {
        o.bandwidth_ratio = Some(bounded_u64(v, &format!("{p}.bandwidth_ratio"), 1, 64)? as usize);
    }
    if let Some(v) = get(obj, "latency_scale") {
        o.latency_scale = Some(bounded_f64(v, &format!("{p}.latency_scale"), 0.05, 4.0)?);
    }
    if let Some(v) = get(obj, "large_pages") {
        o.large_pages = Some(as_bool(v, &format!("{p}.large_pages"))?);
    }
    if let Some(v) = get(obj, "use_batman") {
        o.use_batman = Some(as_bool(v, &format!("{p}.use_batman"))?);
    }
    if let Some(v) = get(obj, "dram_scheduler") {
        o.dram_scheduler = Some(DramSchedulerOverride::parse(
            v,
            &format!("{p}.dram_scheduler"),
        )?);
    }
    if let Some(v) = get(obj, "dram_page_policy") {
        o.dram_page_policy = Some(DramPagePolicyOverride::parse(
            v,
            &format!("{p}.dram_page_policy"),
        )?);
    }
    if let Some(v) = get(obj, "dram_write_queue_depth") {
        o.dram_write_queue_depth =
            Some(bounded_u64(v, &format!("{p}.dram_write_queue_depth"), 0, 4096)? as usize);
    }
    if let Some(v) = get(obj, "dram_read_queue_depth") {
        o.dram_read_queue_depth =
            Some(bounded_u64(v, &format!("{p}.dram_read_queue_depth"), 1, 1024)? as usize);
    }
    if let Some(v) = get(obj, "dram_refresh") {
        o.dram_refresh = Some(as_bool(v, &format!("{p}.dram_refresh"))?);
    }
    if let Some(v) = get(obj, "frequency_backend") {
        let path = format!("{p}.frequency_backend");
        let label = as_string(v, &path)?;
        o.frequency_backend = Some(
            banshee_common::FrequencyBackendKind::parse(&label).map_err(|e| err(&path, e))?,
        );
    }
    Ok(o)
}

fn parse_telemetry(value: &Value) -> Result<ScenarioTelemetry, ScenarioError> {
    let obj = as_object(value, "scenario.telemetry")?;
    check_fields(
        obj,
        "scenario.telemetry",
        &["interval_instructions", "max_samples", "max_events"],
    )?;
    let mut t = ScenarioTelemetry::default();
    let p = "scenario.telemetry";
    if let Some(v) = get(obj, "interval_instructions") {
        t.interval_instructions = Some(bounded_u64(
            v,
            &format!("{p}.interval_instructions"),
            1,
            u64::MAX,
        )?);
    }
    if let Some(v) = get(obj, "max_samples") {
        t.max_samples = Some(bounded_u64(v, &format!("{p}.max_samples"), 1, 1 << 24)? as usize);
    }
    if let Some(v) = get(obj, "max_events") {
        t.max_events = Some(bounded_u64(v, &format!("{p}.max_events"), 1, 1 << 24)? as usize);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> &'static Path {
        Path::new(".")
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let spec = ScenarioSpec::from_json_str(
            r#"{"name": "mini", "workloads": [{"type": "builtin", "name": "mcf"}]}"#,
            base(),
        )
        .unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.workloads.len(), 1);
        assert!(spec.designs.is_empty());
        assert_eq!(spec.sweep, ScenarioSweep::default());
        assert!(spec.overrides.is_empty());
        assert_eq!(spec.cells_per_design(), 1);
    }

    #[test]
    fn full_scenario_parses() {
        let json = r#"{
            "name": "full",
            "description": "everything at once",
            "workloads": [
                {"type": "builtin", "name": "pagerank"},
                {"type": "kv", "name": "kv99", "zipf_exponent": 0.99, "value_bytes": 512},
                {"type": "synthetic", "name": "stream", "streaming_fraction": 0.9},
                {"type": "phased", "name": "tenants", "phase_accesses": 50000,
                 "active_share": 0.85,
                 "tenants": [{"like": "mcf", "share": 0.6}, {"like": "lbm", "share": 0.4}]}
            ],
            "designs": ["NoCache", "Banshee"],
            "sweep": {"footprint_factors": [2, 4], "seeds": [1, 2]},
            "config": {"cores": 8, "large_pages": true}
        }"#;
        let spec = ScenarioSpec::from_json_str(json, base()).unwrap();
        assert_eq!(spec.workloads.len(), 4);
        assert_eq!(spec.designs, ["NoCache", "Banshee"]);
        assert_eq!(spec.sweep.footprint_factors, [2.0, 4.0]);
        assert_eq!(spec.sweep.seeds, [1, 2]);
        assert_eq!(spec.overrides.cores, Some(8));
        assert_eq!(spec.overrides.large_pages, Some(true));
        assert_eq!(spec.cells_per_design(), 16);
        assert!(spec.telemetry.is_none());
    }

    #[test]
    fn telemetry_block_parses() {
        let json = r#"{
            "name": "tel",
            "workloads": [{"type": "builtin", "name": "mcf"}],
            "telemetry": {"interval_instructions": 50000, "max_samples": 2048,
                          "max_events": 512}
        }"#;
        let spec = ScenarioSpec::from_json_str(json, base()).unwrap();
        let tel = spec.telemetry.unwrap();
        assert_eq!(tel.interval_instructions, Some(50_000));
        assert_eq!(tel.max_samples, Some(2048));
        assert_eq!(tel.max_events, Some(512));

        // Partial blocks leave the rest at recorder defaults.
        let spec = ScenarioSpec::from_json_str(
            r#"{"name": "tel2", "workloads": [{"type": "builtin", "name": "mcf"}],
                "telemetry": {"interval_instructions": 1}}"#,
            base(),
        )
        .unwrap();
        let tel = spec.telemetry.unwrap();
        assert_eq!(tel.interval_instructions, Some(1));
        assert_eq!(tel.max_samples, None);
    }

    #[test]
    fn telemetry_block_rejects_bad_values() {
        // Unknown keys are rejected (strict schema).
        let err = ScenarioSpec::from_json_str(
            r#"{"name": "tel", "workloads": [{"type": "builtin", "name": "mcf"}],
                "telemetry": {"intervall": 5}}"#,
            base(),
        )
        .unwrap_err();
        assert!(err.0.contains("scenario.telemetry"), "{}", err.0);
        // A zero interval would never sample.
        let err = ScenarioSpec::from_json_str(
            r#"{"name": "tel", "workloads": [{"type": "builtin", "name": "mcf"}],
                "telemetry": {"interval_instructions": 0}}"#,
            base(),
        )
        .unwrap_err();
        assert!(err.0.contains("interval_instructions"), "{}", err.0);
    }

    #[test]
    fn dram_knobs_parse_in_config_and_sweep() {
        let json = r#"{
            "name": "dram",
            "workloads": [{"type": "builtin", "name": "mcf"}],
            "sweep": {"page_policies": ["open", "closed"],
                      "write_queue_depths": [0, 8, 32]},
            "config": {"dram_scheduler": "fcfs", "dram_page_policy": "closed",
                       "dram_write_queue_depth": 16, "dram_read_queue_depth": 4,
                       "dram_refresh": false}
        }"#;
        let spec = ScenarioSpec::from_json_str(json, base()).unwrap();
        assert_eq!(
            spec.overrides.dram_scheduler,
            Some(DramSchedulerOverride::Fcfs)
        );
        assert_eq!(
            spec.overrides.dram_page_policy,
            Some(DramPagePolicyOverride::Closed)
        );
        assert_eq!(spec.overrides.dram_write_queue_depth, Some(16));
        assert_eq!(spec.overrides.dram_read_queue_depth, Some(4));
        assert_eq!(spec.overrides.dram_refresh, Some(false));
        assert_eq!(
            spec.sweep.page_policies,
            vec![DramPagePolicyOverride::Open, DramPagePolicyOverride::Closed]
        );
        assert_eq!(spec.sweep.write_queue_depths, vec![0, 8, 32]);
        // 1 workload × 1 factor × 1 seed × 2 policies × 3 depths.
        assert_eq!(spec.cells_per_design(), 6);
    }

    #[test]
    fn frequency_backend_parses_in_config_and_sweep() {
        use banshee_common::FrequencyBackendKind;
        let json = r#"{
            "name": "freq",
            "workloads": [{"type": "builtin", "name": "mcf"}],
            "sweep": {"frequency_backends": ["exact", "cms:4096x4", "cms:1024x2"]},
            "config": {"frequency_backend": "cms:8192x4"}
        }"#;
        let spec = ScenarioSpec::from_json_str(json, base()).unwrap();
        assert_eq!(
            spec.overrides.frequency_backend,
            Some(FrequencyBackendKind::Cms {
                width: 8192,
                depth: 4
            })
        );
        assert_eq!(
            spec.sweep.frequency_backends,
            vec![
                FrequencyBackendKind::Exact,
                FrequencyBackendKind::Cms {
                    width: 4096,
                    depth: 4
                },
                FrequencyBackendKind::Cms {
                    width: 1024,
                    depth: 2
                },
            ]
        );
        // 1 workload × 1 factor × 1 seed × 3 backends.
        assert_eq!(spec.cells_per_design(), 3);
    }

    #[test]
    fn frequency_backend_errors_name_the_path_and_grammar() {
        let bad_config = r#"{"name": "x", "workloads": [{"type": "builtin", "name": "mcf"}],
            "config": {"frequency_backend": "sketchy"}}"#;
        let e = ScenarioSpec::from_json_str(bad_config, base())
            .unwrap_err()
            .to_string();
        assert!(
            e.contains("scenario.config.frequency_backend") && e.contains("cms:<width>x<depth>"),
            "{e}"
        );

        let bad_axis = r#"{"name": "x", "workloads": [{"type": "builtin", "name": "mcf"}],
            "sweep": {"frequency_backends": ["cms:4096"]}}"#;
        let e = ScenarioSpec::from_json_str(bad_axis, base())
            .unwrap_err()
            .to_string();
        assert!(e.contains("frequency_backends[0]"), "{e}");

        let empty_axis = r#"{"name": "x", "workloads": [{"type": "builtin", "name": "mcf"}],
            "sweep": {"frequency_backends": []}}"#;
        let e = ScenarioSpec::from_json_str(empty_axis, base())
            .unwrap_err()
            .to_string();
        assert!(e.contains("omit the field"), "{e}");
    }

    #[test]
    fn dram_knob_errors_name_valid_values() {
        let bad_sched = r#"{"name": "x", "workloads": [{"type": "builtin", "name": "mcf"}],
            "config": {"dram_scheduler": "lifo"}}"#;
        let e = ScenarioSpec::from_json_str(bad_sched, base())
            .unwrap_err()
            .to_string();
        assert!(e.contains("fcfs, frfcfs"), "{e}");

        let bad_policy = r#"{"name": "x", "workloads": [{"type": "builtin", "name": "mcf"}],
            "sweep": {"page_policies": ["ajar"]}}"#;
        let e = ScenarioSpec::from_json_str(bad_policy, base())
            .unwrap_err()
            .to_string();
        assert!(
            e.contains("open, closed") && e.contains("page_policies[0]"),
            "{e}"
        );

        let empty_axis = r#"{"name": "x", "workloads": [{"type": "builtin", "name": "mcf"}],
            "sweep": {"write_queue_depths": []}}"#;
        let e = ScenarioSpec::from_json_str(empty_axis, base())
            .unwrap_err()
            .to_string();
        assert!(e.contains("omit the field"), "{e}");
    }

    #[test]
    fn errors_name_the_json_path_and_valid_options() {
        let cases: &[(&str, &[&str])] = &[
            (r#"{"workloads": []}"#, &["missing required field `name`"]),
            (
                r#"{"name": "x", "workloads": []}"#,
                &["scenario.workloads", "at least one"],
            ),
            (
                r#"{"name": "x", "workloads": [{"type": "builtin", "name": "nope"}]}"#,
                &["workloads[0]", "nope", "pagerank"],
            ),
            (
                r#"{"name": "x", "workloads": [{"type": "alien"}]}"#,
                &["workloads[0].type", "builtin, synthetic, kv, phased, trace"],
            ),
            (
                r#"{"name": "x", "typo": 1, "workloads": [{"type": "builtin", "name": "mcf"}]}"#,
                &["unknown field `typo`", "valid fields"],
            ),
            (
                r#"{"name": "x", "workloads": [{"type": "kv", "name": "kv", "zipf_exponent": 9}]}"#,
                &["zipf_exponent", "outside"],
            ),
            (
                r#"{"name": "x", "workloads": [{"type": "phased", "name": "p",
                    "tenants": [{"like": "mcf"}]}]}"#,
                &["tenants", "two tenants"],
            ),
            (
                r#"{"name": "BAD NAME", "workloads": [{"type": "builtin", "name": "mcf"}]}"#,
                &["scenario.name"],
            ),
            (
                r#"{"name": "x", "workloads": [{"type": "builtin", "name": "mcf"},
                    {"type": "builtin", "name": "mcf"}]}"#,
                &["unique"],
            ),
            ("{", &["not valid JSON"]),
        ];
        for (json, needles) in cases {
            let e = ScenarioSpec::from_json_str(json, base())
                .unwrap_err()
                .to_string();
            for needle in *needles {
                assert!(e.contains(needle), "error {e:?} should mention {needle:?}");
            }
        }
    }

    #[test]
    fn instances_build_per_core_traces() {
        let json = r#"{
            "name": "build",
            "workloads": [
                {"type": "kv", "name": "kv99"},
                {"type": "phased", "name": "ph", "phase_accesses": 1000,
                 "tenants": [{"like": "mcf", "share": 0.5}, {"like": "lbm", "share": 0.5}]},
                {"type": "synthetic", "name": "syn"},
                {"type": "builtin", "name": "gcc"}
            ]
        }"#;
        let spec = ScenarioSpec::from_json_str(json, base()).unwrap();
        for entry in &spec.workloads {
            let instance = entry.spec.instantiate(8 << 20, 7);
            let mut traces = instance.build_traces(4);
            assert_eq!(traces.len(), 4);
            for t in traces.iter_mut() {
                for _ in 0..50 {
                    let _ = t.next_access();
                }
            }
            // Deterministic: a second instance replays identically.
            let mut again = entry.spec.instantiate(8 << 20, 7).build_traces(4);
            let mut first = entry.spec.instantiate(8 << 20, 7).build_traces(4);
            for core in 0..4 {
                for _ in 0..50 {
                    assert_eq!(again[core].next_access(), first[core].next_access());
                }
            }
        }
    }

    #[test]
    fn key_material_distinguishes_specs_and_bindings() {
        let spec = ScenarioSpec::from_json_str(
            r#"{"name": "km", "workloads": [
                {"type": "kv", "name": "a", "zipf_exponent": 0.9},
                {"type": "kv", "name": "b", "zipf_exponent": 1.1}
            ]}"#,
            base(),
        )
        .unwrap();
        let a = &spec.workloads[0].spec;
        let b = &spec.workloads[1].spec;
        assert_ne!(a.key_material(), b.key_material());
        assert_ne!(
            a.instantiate(1 << 20, 1).key_material(),
            a.instantiate(1 << 20, 2).key_material()
        );
        assert_ne!(
            a.instantiate(1 << 20, 1).key_material(),
            a.instantiate(2 << 20, 1).key_material()
        );
        assert_eq!(
            a.instantiate(1 << 20, 1).key_material(),
            a.instantiate(1 << 20, 1).key_material()
        );
    }

    #[test]
    fn trace_workloads_key_on_content() {
        let dir = std::env::temp_dir().join(format!("banshee_scn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = TraceData {
            streams: vec![crate::trace_file::TraceStream {
                name: "cap".into(),
                footprint_bytes: 1 << 20,
                accesses: vec![crate::MemoryAccess::load(banshee_common::Addr::new(64), 1)],
            }],
        };
        data.write_binary_file(dir.join("t.btrace")).unwrap();
        let json = r#"{"name": "tr", "workloads": [{"type": "trace", "path": "t.btrace"}]}"#;
        let spec = ScenarioSpec::from_json_str(json, &dir).unwrap();
        let km1 = spec.workloads[0].spec.key_material();
        assert!(km1.contains("trace-content="));

        // Same path, different content => different key material.
        let mut data2 = data.clone();
        data2.streams[0].accesses[0].inst_gap = 9;
        data2.write_binary_file(dir.join("t.btrace")).unwrap();
        let spec2 = ScenarioSpec::from_json_str(json, &dir).unwrap();
        assert_ne!(km1, spec2.workloads[0].spec.key_material());

        // Missing file is an actionable error.
        let missing = r#"{"name": "tr", "workloads": [{"type": "trace", "path": "no.btrace"}]}"#;
        let e = ScenarioSpec::from_json_str(missing, &dir)
            .unwrap_err()
            .to_string();
        assert!(e.contains("no.btrace"), "error was: {e}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
