//! The multi-programmed SPEC mixes of Table 4.
//!
//! Heterogeneous workloads model a multi-programming environment: each of
//! the 16 cores runs its own program, and the listed 8-program mixes are
//! instantiated twice ("× 2" in Table 4) to fill the machine.

use crate::spec::SpecProgram;

/// Which mix from Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpecMix {
    Mix1,
    Mix2,
    Mix3,
}

impl SpecMix {
    /// All mixes in figure order.
    pub const ALL: [SpecMix; 3] = [SpecMix::Mix1, SpecMix::Mix2, SpecMix::Mix3];

    /// Display name ("mix1" ...).
    pub fn name(&self) -> &'static str {
        match self {
            SpecMix::Mix1 => "mix1",
            SpecMix::Mix2 => "mix2",
            SpecMix::Mix3 => "mix3",
        }
    }

    /// The 8 programs of this mix (Table 4); assign to cores round-robin,
    /// repeating the list to cover all cores ("× 2" for 16 cores).
    pub fn programs(&self) -> [SpecProgram; 8] {
        match self {
            SpecMix::Mix1 => [
                SpecProgram::Libquantum,
                SpecProgram::Mcf,
                SpecProgram::Soplex,
                SpecProgram::Milc,
                SpecProgram::Bwaves,
                SpecProgram::Lbm,
                SpecProgram::Omnetpp,
                SpecProgram::Gcc,
            ],
            SpecMix::Mix2 => [
                SpecProgram::Libquantum,
                SpecProgram::Mcf,
                SpecProgram::Soplex,
                SpecProgram::Milc,
                SpecProgram::Lbm,
                SpecProgram::Omnetpp,
                SpecProgram::Gems,
                SpecProgram::Bzip2,
            ],
            SpecMix::Mix3 => [
                SpecProgram::Mcf,
                SpecProgram::Soplex,
                SpecProgram::Milc,
                SpecProgram::Bwaves,
                SpecProgram::Gcc,
                SpecProgram::Lbm,
                SpecProgram::Leslie,
                SpecProgram::Cactus,
            ],
        }
    }

    /// The program core `core_id` runs.
    pub fn program_for_core(&self, core_id: usize) -> SpecProgram {
        self.programs()[core_id % 8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_match_table4() {
        // Spot-check the Table 4 contents.
        assert_eq!(SpecMix::Mix1.programs()[0], SpecProgram::Libquantum);
        assert_eq!(SpecMix::Mix1.programs()[7], SpecProgram::Gcc);
        assert!(SpecMix::Mix2.programs().contains(&SpecProgram::Gems));
        assert!(SpecMix::Mix2.programs().contains(&SpecProgram::Bzip2));
        assert!(SpecMix::Mix3.programs().contains(&SpecProgram::Leslie));
        assert!(SpecMix::Mix3.programs().contains(&SpecProgram::Cactus));
        // Mix2 and Mix3 do not contain bwaves/gcc respectively per Table 4.
        assert!(!SpecMix::Mix2.programs().contains(&SpecProgram::Bwaves));
        assert!(!SpecMix::Mix3.programs().contains(&SpecProgram::Omnetpp));
    }

    #[test]
    fn sixteen_cores_run_each_program_twice() {
        let mut counts = banshee_common::FnvHashMap::default();
        for core in 0..16 {
            *counts
                .entry(SpecMix::Mix1.program_for_core(core))
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 8);
        assert!(counts.values().all(|&c| c == 2));
    }

    #[test]
    fn names() {
        assert_eq!(SpecMix::ALL.map(|m| m.name()), ["mix1", "mix2", "mix3"]);
    }
}
