//! The two-region synthetic trace model used for SPEC-like programs.
//!
//! Each generator owns a virtual address region split into:
//!
//! * a **streaming region** traversed sequentially in bursts (modelling
//!   array sweeps — `lbm`, `bwaves`, `libquantum`), and
//! * a **working-set region** whose pages are selected with a Zipf
//!   distribution (modelling pointer-heavy structures with hot and cold data
//!   — `mcf`, `omnetpp`), with a configurable number of lines touched per
//!   page visit (spatial locality).
//!
//! The mix between the two, the skew, the burst lengths and the instruction
//! gaps are the per-benchmark parameters in [`crate::spec`].

use crate::trace::{MemoryAccess, TraceGenerator};
use banshee_common::{Addr, XorShiftRng, ZipfSampler, CACHE_LINE_SIZE, PAGE_SIZE};

/// Parameters of the two-region model.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticParams {
    /// Benchmark name for reporting.
    pub name: String,
    /// Total footprint in bytes (streaming + working set).
    pub footprint_bytes: u64,
    /// Fraction of the footprint that belongs to the streaming region.
    pub streaming_fraction: f64,
    /// Probability that the next access burst comes from the streaming
    /// region (as opposed to the Zipf-selected working set).
    pub streaming_access_fraction: f64,
    /// Zipf exponent for page selection in the working-set region
    /// (0 = uniform, 1.0+ = heavily skewed towards hot pages).
    pub zipf_exponent: f64,
    /// Number of consecutive lines touched per visit to a working-set page.
    pub lines_per_visit: u64,
    /// Number of consecutive lines touched per streaming burst.
    pub streaming_burst_lines: u64,
    /// Mean instruction gap between memory accesses (memory intensity).
    pub mean_inst_gap: u32,
    /// Fraction of accesses that are stores.
    pub write_fraction: f64,
}

impl SyntheticParams {
    /// A generic memory-intensive default; benchmarks override fields.
    pub fn base(name: &str, footprint_bytes: u64) -> Self {
        SyntheticParams {
            name: name.to_string(),
            footprint_bytes,
            streaming_fraction: 0.5,
            streaming_access_fraction: 0.5,
            zipf_exponent: 0.8,
            lines_per_visit: 4,
            streaming_burst_lines: 16,
            mean_inst_gap: 4,
            write_fraction: 0.3,
        }
    }
}

/// The generator state.
pub struct SyntheticTrace {
    params: SyntheticParams,
    /// Base virtual address of this generator's region.
    base: u64,
    streaming_pages: u64,
    working_pages: u64,
    zipf: ZipfSampler,
    rng: XorShiftRng,
    /// Streaming cursor (line index within the streaming region).
    stream_cursor: u64,
    /// Remaining lines in the current burst and its next line address.
    burst_remaining: u64,
    burst_next_line: u64,
    burst_is_write: bool,
}

impl SyntheticTrace {
    /// Create a generator over `[base, base + footprint)` with the given
    /// parameters and seed.
    pub fn new(params: SyntheticParams, base: u64, seed: u64) -> Self {
        assert!(
            params.footprint_bytes >= 2 * PAGE_SIZE,
            "footprint too small"
        );
        let total_pages = params.footprint_bytes / PAGE_SIZE;
        let streaming_pages =
            ((total_pages as f64 * params.streaming_fraction) as u64).clamp(1, total_pages - 1);
        let working_pages = total_pages - streaming_pages;
        let zipf = ZipfSampler::new(working_pages as usize, params.zipf_exponent);
        SyntheticTrace {
            base,
            streaming_pages,
            working_pages,
            zipf,
            rng: XorShiftRng::new(seed),
            stream_cursor: 0,
            burst_remaining: 0,
            burst_next_line: 0,
            burst_is_write: false,
            params,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &SyntheticParams {
        &self.params
    }

    fn start_new_burst(&mut self) {
        let streaming = self.rng.chance(self.params.streaming_access_fraction);
        self.burst_is_write = self.rng.chance(self.params.write_fraction);
        if streaming {
            let lines_in_region = self.streaming_pages * (PAGE_SIZE / CACHE_LINE_SIZE);
            self.burst_next_line = self.stream_cursor % lines_in_region;
            self.burst_remaining = self.params.streaming_burst_lines.max(1);
            self.stream_cursor =
                (self.stream_cursor + self.params.streaming_burst_lines) % lines_in_region;
        } else {
            let page = self.zipf.sample(&mut self.rng) as u64;
            // Working-set pages live after the streaming region.
            let page_line_base =
                (self.streaming_pages + page % self.working_pages) * (PAGE_SIZE / CACHE_LINE_SIZE);
            let lines_per_page = PAGE_SIZE / CACHE_LINE_SIZE;
            // Real programs revisit the *same* lines of a hot page (a node's
            // fields, a row of a matrix), so the visit usually starts at a
            // per-page preferred offset; only occasionally does it land
            // somewhere else. This preserves line-level temporal locality,
            // which line-granularity caches (Alloy) depend on just as much
            // as page-granularity designs depend on page-level locality.
            let span = lines_per_page
                .saturating_sub(self.params.lines_per_visit)
                .max(1);
            let preferred = (page.wrapping_mul(0x9E37_79B9) >> 7) % span;
            let start = if self.rng.chance(0.8) {
                preferred
            } else {
                self.rng.next_below(span)
            };
            self.burst_next_line = page_line_base + start;
            self.burst_remaining = self.params.lines_per_visit.max(1);
        }
    }
}

impl TraceGenerator for SyntheticTrace {
    fn next_access(&mut self) -> MemoryAccess {
        if self.burst_remaining == 0 {
            self.start_new_burst();
        }
        let line = self.burst_next_line;
        self.burst_next_line += 1;
        self.burst_remaining -= 1;

        let vaddr = Addr::new(self.base + line * CACHE_LINE_SIZE);
        // Jitter the instruction gap a little around the mean.
        let gap = if self.params.mean_inst_gap == 0 {
            0
        } else {
            let m = self.params.mean_inst_gap as u64;
            self.rng.range_inclusive(m / 2, m + m / 2) as u32
        };
        MemoryAccess {
            vaddr,
            write: self.burst_is_write,
            inst_gap: gap,
        }
    }

    fn name(&self) -> &str {
        &self.params.name
    }

    fn footprint_bytes(&self) -> u64 {
        self.params.footprint_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn params(footprint: u64) -> SyntheticParams {
        SyntheticParams::base("test", footprint)
    }

    #[test]
    fn accesses_stay_inside_the_region() {
        let p = params(1 << 20);
        let mut t = SyntheticTrace::new(p.clone(), 0x100_0000, 1);
        for _ in 0..10_000 {
            let a = t.next_access();
            assert!(a.vaddr.raw() >= 0x100_0000);
            assert!(a.vaddr.raw() < 0x100_0000 + p.footprint_bytes);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let p = params(1 << 20);
        let mut a = SyntheticTrace::new(p.clone(), 0, 42);
        let mut b = SyntheticTrace::new(p, 0, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = params(1 << 20);
        let mut a = SyntheticTrace::new(p.clone(), 0, 1);
        let mut b = SyntheticTrace::new(p, 0, 2);
        let same = (0..200)
            .filter(|_| a.next_access().vaddr == b.next_access().vaddr)
            .count();
        assert!(same < 100);
    }

    #[test]
    fn zipf_skew_concentrates_accesses() {
        let mut skewed = SyntheticParams::base("skewed", 4 << 20);
        skewed.streaming_access_fraction = 0.0;
        skewed.zipf_exponent = 1.1;
        let mut uniform = skewed.clone();
        uniform.zipf_exponent = 0.0;
        uniform.name = "uniform".to_string();

        let distinct_pages = |mut t: SyntheticTrace| -> usize {
            let mut pages = HashSet::new();
            for _ in 0..20_000 {
                pages.insert(t.next_access().vaddr.page());
            }
            pages.len()
        };
        let s = distinct_pages(SyntheticTrace::new(skewed, 0, 3));
        let u = distinct_pages(SyntheticTrace::new(uniform, 0, 3));
        assert!(
            s * 2 < u * 3,
            "skewed stream should touch notably fewer distinct pages: {s} vs {u}"
        );
    }

    #[test]
    fn streaming_mode_is_sequential() {
        let mut p = params(1 << 20);
        p.streaming_access_fraction = 1.0;
        p.streaming_burst_lines = 64;
        let mut t = SyntheticTrace::new(p, 0, 7);
        let first = t.next_access().vaddr.raw();
        let mut prev = first;
        for _ in 0..32 {
            let next = t.next_access().vaddr.raw();
            assert_eq!(
                next,
                prev + 64,
                "streaming accesses must be sequential lines"
            );
            prev = next;
        }
    }

    #[test]
    fn write_fraction_respected() {
        let mut p = params(1 << 20);
        p.write_fraction = 0.5;
        let mut t = SyntheticTrace::new(p, 0, 9);
        let writes = (0..20_000).filter(|_| t.next_access().write).count();
        let frac = writes as f64 / 20_000.0;
        assert!((0.35..0.65).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn instruction_gap_tracks_intensity() {
        let mut hungry = params(1 << 20);
        hungry.mean_inst_gap = 2;
        let mut light = params(1 << 20);
        light.mean_inst_gap = 40;
        let sum_gap = |mut t: SyntheticTrace| -> u64 {
            (0..5000).map(|_| t.next_access().instructions()).sum()
        };
        let h = sum_gap(SyntheticTrace::new(hungry, 0, 5));
        let l = sum_gap(SyntheticTrace::new(light, 0, 5));
        assert!(
            l > 5 * h,
            "light workload should have many more instructions per access"
        );
    }

    #[test]
    #[should_panic]
    fn tiny_footprint_rejected() {
        let _ = SyntheticTrace::new(params(PAGE_SIZE), 0, 1);
    }
}
