//! Synthetic workloads reproducing the memory behaviour of the paper's
//! benchmark suite (Section 5.1.2).
//!
//! The paper evaluates SPEC CPU2006 benchmarks with large memory footprints
//! (homogeneous copies and three mixes, Table 4) and the multi-threaded graph
//! analytics workloads of the IMP suite (pagerank, triangle counting,
//! graph500/BFS, SGD, LSH). We cannot redistribute those binaries, so each
//! benchmark is replaced by a deterministic address-stream generator that
//! reproduces the properties a DRAM cache can observe:
//!
//! * memory intensity (memory accesses per instruction),
//! * total footprint,
//! * hot-page skew (how concentrated accesses are on a small set of pages),
//! * intra-page spatial locality (how many lines of a page are touched per
//!   visit),
//! * the streaming vs. pointer-chasing mix, and
//! * the store fraction.
//!
//! SPEC-like programs use the two-region model of [`synthetic`]; graph
//! workloads actually walk a synthetic power-law graph in CSR form
//! ([`graph`]), which produces the characteristic mix of sequential
//! edge-array scans and degree-skewed vertex gathers.
//!
//! See `DESIGN.md` ("Substitutions") for why this preserves the behaviours
//! the paper's figures depend on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod kv;
pub mod mix;
pub mod phased;
pub mod scenario;
pub mod spec;
pub mod synthetic;
pub mod trace;
pub mod trace_file;
pub mod workload;

pub use graph::{GraphKernel, GraphKernelTrace, SyntheticGraph};
pub use kv::{KeyValueParams, KeyValueTrace};
pub use mix::SpecMix;
pub use phased::{PhasedParams, PhasedTrace};
pub use scenario::{
    DramPagePolicyOverride, DramSchedulerOverride, ScenarioError, ScenarioOverrides, ScenarioSpec,
    ScenarioSweep, ScenarioTelemetry, ScenarioWorkloadEntry, ScenarioWorkloadInstance,
    ScenarioWorkloadSpec,
};
pub use spec::SpecProgram;
pub use synthetic::{SyntheticParams, SyntheticTrace};
pub use trace::{MemoryAccess, TraceCursor, TraceFactory, TraceGenerator};
pub use trace_file::{TraceData, TraceFileError, TraceFileReader, TraceReplay, TraceStream};
pub use workload::{Workload, WorkloadKind};
