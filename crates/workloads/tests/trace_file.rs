//! Property tests for the trace-file format: arbitrary access streams must
//! round-trip through both encodings, and mangled files must fail with
//! errors, never panics.

use banshee_common::Addr;
use banshee_workloads::trace_file::{TraceData, TraceStream, TRACE_MAGIC};
use banshee_workloads::MemoryAccess;
use proptest::collection::vec;
use proptest::prelude::*;

type RawAccess = (u64, bool, u32);
type RawStream = Vec<RawAccess>;

fn build(streams: Vec<RawStream>) -> TraceData {
    TraceData {
        streams: streams
            .into_iter()
            .enumerate()
            .map(|(i, accesses)| TraceStream {
                name: format!("s{i}"),
                footprint_bytes: 1 << 30,
                accesses: accesses
                    .into_iter()
                    .map(|(vaddr, write, inst_gap)| MemoryAccess {
                        vaddr: Addr::new(vaddr),
                        write,
                        inst_gap,
                    })
                    .collect(),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip_is_byte_identical(
        streams in vec(vec((0u64..(1 << 48), any::<bool>(), 0u32..100_000), 0..200), 1..5)
    ) {
        let data = build(streams);
        let bytes = data.to_binary();
        let back = TraceData::from_binary(&bytes).expect("canonical bytes decode");
        prop_assert_eq!(&back, &data);
        prop_assert_eq!(back.to_binary(), bytes);
    }

    #[test]
    fn text_round_trip_preserves_every_access(
        streams in vec(vec((0u64..(1 << 48), any::<bool>(), 0u32..100_000), 0..100), 1..4)
    ) {
        let data = build(streams);
        let text = data.to_text().expect("whitespace-free names encode");
        let back = TraceData::from_text(&text).expect("canonical text decodes");
        prop_assert_eq!(&back, &data);
        prop_assert_eq!(back.to_text().expect("round-trip re-encodes"), text);
    }

    #[test]
    fn truncation_never_panics_and_always_errors(
        streams in vec(vec((0u64..(1 << 48), any::<bool>(), 0u32..100_000), 1..50), 1..3),
        cut_fraction in 0u32..1000
    ) {
        let data = build(streams);
        let bytes = data.to_binary();
        let cut = (bytes.len() as u64 * cut_fraction as u64 / 1000) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(TraceData::from_binary(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_byte_flips_in_the_header_error_or_change_content(
        accesses in vec((0u64..(1 << 48), any::<bool>(), 0u32..100_000), 1..50),
        flip_at in 0usize..16,
        flip_bit in 0u8..8
    ) {
        // Flipping any bit in the magic/version/stream-count header must
        // either fail cleanly or (for the stream count) fail as truncated —
        // never panic, never succeed with the same content.
        let data = build(vec![accesses]);
        let mut bytes = data.to_binary();
        bytes[flip_at] ^= 1 << flip_bit;
        match TraceData::from_binary(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert!(
                decoded != data,
                "a corrupted header byte decoded to the identical trace"
            ),
        }
    }
}

#[test]
fn magic_is_the_advertised_constant() {
    let data = build(vec![vec![(64, false, 1)]]);
    assert_eq!(&data.to_binary()[..8], &TRACE_MAGIC);
}
