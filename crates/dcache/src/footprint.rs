//! Footprint prediction for page-granularity DRAM caches.
//!
//! Unison Cache and TDC fetch a whole page's worth of data on every miss,
//! which wastes off-package bandwidth when only a few lines of the page are
//! actually used before eviction ("over-fetching", Section 2.2.1). The
//! footprint-cache idea (Jevdjic et al. ISCA 2013, Jang et al. HPCA 2016)
//! fetches only the lines the page is predicted to need.
//!
//! The paper evaluates Unison/TDC with a *perfect* footprint predictor: they
//! profile each workload for the average number of blocks touched per page
//! fill and charge exactly that much replacement traffic, managed at 4-line
//! granularity. [`FootprintPredictor`] reproduces that methodology online:
//! it measures the number of distinct lines touched in each cached page
//! between fill and eviction, keeps a running average, and rounds it up to
//! the footprint granularity. The prediction therefore converges to the
//! profiled per-workload average the paper uses.
//!
//! The touched-line sets live behind the [`FrequencyTracker`] lane API: the
//! default `exact` backend keeps one 64-bit mask per cached page (the
//! historical behaviour, byte-identical), while the `cms` backend folds the
//! lanes into a fixed-size sketch so tracking memory stops growing with the
//! resident set.

use banshee_common::addr::LINES_PER_PAGE;
use banshee_common::freq::{restore_tracker, save_tracker, FrequencyBackendKind, FrequencyTracker};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::PageNum;

pub use banshee_common::addr::LINES_PER_PAGE as PAGE_LINES;

/// Online estimator of the average page footprint (distinct lines touched
/// per page residency), managed at a configurable line granularity.
#[derive(Debug, Clone)]
pub struct FootprintPredictor {
    /// Touched-line lane state for every currently tracked (cached) page.
    tracker: Box<dyn FrequencyTracker>,
    /// Granularity (in lines) at which footprints are managed: touched-line
    /// counts are rounded up to a multiple of this.
    granularity: u64,
    /// Sum of footprints of all evicted pages (in lines, already rounded).
    footprint_sum: u64,
    /// Number of completed (evicted) page residencies measured.
    completed: u64,
}

impl FootprintPredictor {
    /// Create a predictor managing footprints at `granularity` lines
    /// (the paper models 4), with exact per-page tracking.
    pub fn new(granularity: u64) -> Self {
        Self::with_backend(granularity, FrequencyBackendKind::Exact)
    }

    /// Create a predictor whose touched-line state lives on the given
    /// frequency-tracking backend.
    pub fn with_backend(granularity: u64, backend: FrequencyBackendKind) -> Self {
        FootprintPredictor {
            tracker: backend.build(),
            granularity: granularity.clamp(1, LINES_PER_PAGE),
            footprint_sum: 0,
            completed: 0,
        }
    }

    /// Start tracking a page that was just filled into the DRAM cache. The
    /// line that triggered the fill counts as touched.
    pub fn on_fill(&mut self, page: PageNum, trigger_line_index: u64) {
        self.tracker.lane_clear(page.raw());
        self.tracker.lane_touch(page.raw(), trigger_line_index, false);
    }

    /// Record an access to a cached page.
    pub fn on_access(&mut self, page: PageNum, line_index: u64) {
        self.tracker.lane_touch(page.raw(), line_index, true);
    }

    /// Stop tracking an evicted page and fold its measured footprint into the
    /// running average. Returns the page's own (rounded) footprint in lines.
    pub fn on_evict(&mut self, page: PageNum) -> u64 {
        let touched = self.tracker.lane_count(page.raw());
        self.tracker.lane_clear(page.raw());
        let rounded = self.round(touched.max(1));
        self.footprint_sum += rounded;
        self.completed += 1;
        rounded
    }

    /// The predicted footprint (in lines) to fetch on the next page fill:
    /// the running average of completed residencies, rounded up to the
    /// granularity. Before any residency completes, predict a full page
    /// (the conservative cold-start choice).
    pub fn predicted_lines(&self) -> u64 {
        if self.completed == 0 {
            LINES_PER_PAGE
        } else {
            let avg = (self.footprint_sum as f64 / self.completed as f64).ceil() as u64;
            self.round(avg).min(LINES_PER_PAGE)
        }
    }

    /// Predicted footprint in bytes.
    pub fn predicted_bytes(&self) -> u64 {
        self.predicted_lines() * banshee_common::CACHE_LINE_SIZE
    }

    /// Number of completed residencies measured so far.
    pub fn completed_residencies(&self) -> u64 {
        self.completed
    }

    /// Mean measured footprint in lines (unrounded average of rounded
    /// residencies); 0 if nothing completed yet.
    pub fn mean_footprint(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.footprint_sum as f64 / self.completed as f64
        }
    }

    /// The backend the touched-line state lives on.
    pub fn backend(&self) -> FrequencyBackendKind {
        self.tracker.kind()
    }

    /// Append the tracker's telemetry gauges to `out`.
    pub fn tracker_gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        self.tracker.gauges(out);
    }

    fn round(&self, lines: u64) -> u64 {
        lines.div_ceil(self.granularity) * self.granularity
    }
}

impl Persist for FootprintPredictor {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.granularity);
        w.u64(self.footprint_sum);
        w.u64(self.completed);
        save_tracker(self.tracker.as_ref(), w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let granularity = r.u64()?;
        if granularity == 0 || granularity > LINES_PER_PAGE {
            return Err(SnapshotError::Corrupt(format!(
                "footprint granularity {granularity} out of range"
            )));
        }
        let footprint_sum = r.u64()?;
        let completed = r.u64()?;
        let tracker = restore_tracker(r)?;
        Ok(FootprintPredictor {
            tracker,
            granularity,
            footprint_sum,
            completed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_start_predicts_full_page() {
        let p = FootprintPredictor::new(4);
        assert_eq!(p.predicted_lines(), 64);
        assert_eq!(p.predicted_bytes(), 4096);
        assert_eq!(p.backend(), FrequencyBackendKind::Exact);
    }

    #[test]
    fn footprint_measured_per_residency() {
        let mut p = FootprintPredictor::new(4);
        let page = PageNum::new(1);
        p.on_fill(page, 0);
        p.on_access(page, 1);
        p.on_access(page, 2);
        p.on_access(page, 2); // repeated touch counts once
        let fp = p.on_evict(page);
        // 3 distinct lines rounded up to 4-line granularity.
        assert_eq!(fp, 4);
        assert_eq!(p.predicted_lines(), 4);
    }

    #[test]
    fn average_converges_over_pages() {
        let mut p = FootprintPredictor::new(4);
        // Two pages: one touches 8 lines, one touches 16 lines.
        let a = PageNum::new(1);
        p.on_fill(a, 0);
        for i in 1..8 {
            p.on_access(a, i);
        }
        p.on_evict(a);
        let b = PageNum::new(2);
        p.on_fill(b, 0);
        for i in 1..16 {
            p.on_access(b, i);
        }
        p.on_evict(b);
        assert_eq!(p.predicted_lines(), 12);
        assert_eq!(p.completed_residencies(), 2);
        assert!((p.mean_footprint() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn untracked_page_access_is_ignored() {
        let mut p = FootprintPredictor::new(4);
        p.on_access(PageNum::new(9), 5); // never filled
        let fp = p.on_evict(PageNum::new(9));
        // An untracked eviction still records the minimum footprint.
        assert_eq!(fp, 4);
    }

    #[test]
    fn granularity_one_gives_exact_counts() {
        let mut p = FootprintPredictor::new(1);
        let page = PageNum::new(3);
        p.on_fill(page, 10);
        p.on_access(page, 11);
        assert_eq!(p.on_evict(page), 2);
        assert_eq!(p.predicted_lines(), 2);
    }

    #[test]
    fn sketch_backend_measures_footprints_approximately() {
        let backend = FrequencyBackendKind::Cms {
            width: 4096,
            depth: 4,
        };
        let mut p = FootprintPredictor::with_backend(1, backend);
        assert_eq!(p.backend(), backend);
        let page = PageNum::new(11);
        p.on_fill(page, 0);
        for i in 1..8 {
            p.on_access(page, i);
        }
        // A sketch never undercounts lanes (it may overcount on collision).
        let fp = p.on_evict(page);
        assert!((8..=64).contains(&fp), "footprint {fp}");
        // The sketch cannot test membership, so accesses to untracked
        // pages are recorded too — the documented approximation.
        let mut gauges = Vec::new();
        p.tracker_gauges(&mut gauges);
        assert!(gauges.iter().any(|(n, _)| *n == "freq_sketch_occupancy"));
    }

    proptest! {
        /// The predicted footprint never exceeds a full page and is always a
        /// positive multiple of the granularity.
        #[test]
        fn prop_prediction_bounded(
            touches in proptest::collection::vec((0u64..64, 1u64..64), 1..50),
            gran in 1u64..16,
        ) {
            let mut p = FootprintPredictor::new(gran);
            for (i, (first, extra)) in touches.iter().enumerate() {
                let page = PageNum::new(i as u64);
                p.on_fill(page, *first);
                for j in 0..*extra {
                    p.on_access(page, (first + j) % 64);
                }
                p.on_evict(page);
                let pred = p.predicted_lines();
                prop_assert!((1..=64).contains(&pred));
                // Predictions are multiples of the granularity except when
                // capped at the full page.
                prop_assert!(pred.is_multiple_of(gran) || pred == 64);
            }
        }

        /// save → restore → save is byte-identical and predictions survive
        /// the round trip, including the in-flight (filled, not yet
        /// evicted) pages — on both backends.
        #[test]
        fn prop_persist_round_trip(
            touches in proptest::collection::vec((0u64..64, 0u64..64, 0u8..2), 0..80),
            gran in 1u64..16,
            sketch in proptest::arbitrary::any::<bool>(),
        ) {
            let backend = if sketch {
                FrequencyBackendKind::Cms { width: 256, depth: 2 }
            } else {
                FrequencyBackendKind::Exact
            };
            let mut p = FootprintPredictor::with_backend(gran, backend);
            for (i, (first, line, evict)) in touches.iter().enumerate() {
                let page = PageNum::new((i % 8) as u64);
                p.on_fill(page, *first);
                p.on_access(page, *line);
                if *evict == 1 {
                    p.on_evict(page);
                }
            }
            let snap = |p: &FootprintPredictor| {
                let mut w = SnapshotWriter::new();
                p.save(&mut w);
                w.into_bytes()
            };
            let bytes = snap(&p);
            let mut r = SnapshotReader::new(&bytes);
            let back = FootprintPredictor::restore(&mut r).unwrap();
            prop_assert!(r.is_exhausted());
            prop_assert_eq!(snap(&back), bytes.clone());
            prop_assert_eq!(p.predicted_lines(), back.predicted_lines());
            prop_assert_eq!(p.backend(), back.backend());
            // Truncation anywhere strictly inside the image is typed.
            let cut = bytes.len() / 2;
            let mut r = SnapshotReader::new(&bytes[..cut]);
            if bytes.len() > cut {
                prop_assert!(FootprintPredictor::restore(&mut r).is_err());
            }
        }
    }
}
