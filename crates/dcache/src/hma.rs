//! HMA: software-managed heterogeneous memory architecture (Meswani et al.,
//! HPCA 2015).
//!
//! The OS periodically ranks pages by access count and migrates hot pages
//! into the in-package DRAM (and cold pages out). Because remapping changes
//! the page's physical address (NUMA-style management), every migrated page
//! must also be scrubbed from the on-chip caches, all PTEs must be updated
//! and all TLBs flushed — which is why the period is 100 ms – 1 s and why
//! every program stops while it happens (Section 2.1.2).
//!
//! On the access path HMA is the cheapest possible design (Table 1): a hit is
//! a 64 B in-package access, a miss is a 64 B off-package access, and there
//! is no replacement or tag traffic at all. All of the cost is concentrated
//! in the periodic software routine, modelled here by the [`SideEffect`]s
//! returned from [`DramCacheController::epoch`].

use crate::controller::{DemandStats, DramCacheController};
use crate::design::DCacheConfig;
use crate::plan::{DramOp, MemRequest, PlanSink, RequestKind, SideEffect};
use banshee_common::freq::{restore_tracker, save_tracker, FrequencyBackendKind, FrequencyTracker};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{
    Cycle, CyclesPerSec, FnvHashSet, PageNum, ReplaySet, StatSet, TrafficClass, PAGE_SIZE,
};
use banshee_memhier::PteMapInfo;

/// Tuning knobs for the software remapping routine.
#[derive(Debug, Clone, Copy)]
pub struct HmaPolicy {
    /// Per-migrated-page software cost in microseconds (PTE updates, TLB
    /// shootdown share, cache scrubbing).
    pub per_page_cost_us: f64,
    /// Fixed cost of one remapping interval in microseconds.
    pub base_cost_us: f64,
    /// Upper bound on pages migrated (in each direction) per interval.
    pub max_migrations: usize,
}

impl Default for HmaPolicy {
    fn default() -> Self {
        HmaPolicy {
            per_page_cost_us: 2.0,
            base_cost_us: 50.0,
            max_migrations: 4096,
        }
    }
}

/// The software-managed controller.
#[derive(Debug)]
pub struct Hma {
    capacity_pages: u64,
    /// Resident pages. A [`ReplaySet`] rather than a plain hash set because
    /// the eviction scan in [`DramCacheController::epoch`] iterates it, and
    /// iteration order must survive a snapshot round trip for a resumed run
    /// to stay byte-identical with a cold one — while staying bit-identical
    /// to plain `FnvHashSet` iteration on cold runs.
    cached: ReplaySet<PageNum>,
    /// Access counts within the current interval, behind the unified
    /// frequency API. The `exact` backend reproduces the historical
    /// per-page map byte-for-byte; the `cms` backend bounds the memory.
    tracker: Box<dyn FrequencyTracker>,
    /// Candidate pages for backends that cannot enumerate their keys (the
    /// sketch): the distinct pages recorded this interval, in first-touch
    /// order, capped at `candidate_cap`. Unused (and empty) with `exact`.
    candidates: ReplaySet<PageNum>,
    /// Bound on `candidates`: everything rankable plus one interval's worth
    /// of migrations. Later first touches are not ranked this interval —
    /// the price of bounded memory.
    candidate_cap: usize,
    policy: HmaPolicy,
    cpu_clock: CyclesPerSec,
    demand: DemandStats,
    migrations_in: u64,
    migrations_out: u64,
    intervals: u64,
}

impl Hma {
    /// Build an HMA controller with the default policy and exact counting.
    pub fn new(config: &DCacheConfig) -> Self {
        Self::with_policy(config, HmaPolicy::default())
    }

    /// Build an HMA controller with the default policy on the given
    /// frequency-tracking backend.
    pub fn with_backend(config: &DCacheConfig, backend: FrequencyBackendKind) -> Self {
        Self::with_policy_backend(config, HmaPolicy::default(), backend)
    }

    /// Build an HMA controller with an explicit policy and exact counting.
    pub fn with_policy(config: &DCacheConfig, policy: HmaPolicy) -> Self {
        Self::with_policy_backend(config, policy, FrequencyBackendKind::Exact)
    }

    /// Build an HMA controller with an explicit policy and backend.
    pub fn with_policy_backend(
        config: &DCacheConfig,
        policy: HmaPolicy,
        backend: FrequencyBackendKind,
    ) -> Self {
        let capacity_pages = config.capacity_pages().max(1);
        Hma {
            capacity_pages,
            cached: ReplaySet::new(),
            tracker: backend.build(),
            candidates: ReplaySet::new(),
            candidate_cap: capacity_pages as usize + policy.max_migrations,
            policy,
            cpu_clock: CyclesPerSec::ghz(2.7),
            demand: DemandStats::new(4096),
            migrations_in: 0,
            migrations_out: 0,
            intervals: 0,
        }
    }

    /// Pages currently resident in the in-package DRAM.
    pub fn resident_pages(&self) -> usize {
        self.cached.len()
    }
}

impl DramCacheController for Hma {
    fn name(&self) -> &str {
        "HMA"
    }

    fn access(&mut self, req: &MemRequest, _now: Cycle, sink: &mut PlanSink) {
        let page = req.page();
        let hit = self.cached.contains(&page);
        match req.kind {
            RequestKind::DemandMiss => {
                self.tracker.record(page.raw());
                // Sketch backends cannot enumerate their keys at ranking
                // time, so remember (a bounded number of) the distinct
                // pages seen this interval.
                if matches!(self.tracker.kind(), FrequencyBackendKind::Cms { .. })
                    && self.candidates.len() < self.candidate_cap
                    && !self.candidates.contains(&page)
                {
                    self.candidates.insert(page);
                }
                self.demand.record(hit);
                if hit {
                    sink.then(DramOp::in_package(req.addr, 64, TrafficClass::HitData))
                        .hit();
                } else {
                    sink.then(DramOp::off_package(req.addr, 64, TrafficClass::MissData));
                }
            }
            RequestKind::Writeback => {
                let op = if hit {
                    DramOp::in_package_write(req.addr, 64, TrafficClass::Writeback)
                } else {
                    DramOp::off_package_write(req.addr, 64, TrafficClass::Writeback)
                };
                sink.also(op);
            }
        }
    }

    fn epoch(&mut self, _now: Cycle, sink: &mut PlanSink) -> bool {
        self.intervals += 1;
        // Rank pages by access count in this interval. Exact backends
        // enumerate every counted page; the sketch is ranked through the
        // bounded candidate list (estimates may collide upward, and a key
        // halved to zero drops out, exactly as an uncounted page would).
        let mut ranked: Vec<(PageNum, u64)> = match self.tracker.enumerate_sorted() {
            Some(entries) => entries
                .into_iter()
                .map(|(page, count)| (PageNum::new(page), count))
                .collect(),
            None => self
                .candidates
                .iter()
                .map(|page| (*page, self.tracker.estimate(page.raw())))
                .filter(|&(_, count)| count > 0)
                .collect(),
        };
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
        let want: FnvHashSet<PageNum> = ranked
            .iter()
            .take(self.capacity_pages as usize)
            .map(|(p, _)| *p)
            .collect();

        let to_insert: Vec<PageNum> = want
            .iter()
            .filter(|p| !self.cached.contains(p))
            .take(self.policy.max_migrations)
            .copied()
            .collect();
        let to_evict: Vec<PageNum> = self
            .cached
            .iter()
            .filter(|p| !want.contains(p))
            .take(
                to_insert.len().max(
                    self.cached
                        .len()
                        .saturating_sub(self.capacity_pages as usize),
                ),
            )
            .copied()
            .collect();

        self.tracker.reset();
        if !self.candidates.is_empty() {
            self.candidates = ReplaySet::new();
        }
        if to_insert.is_empty() && to_evict.is_empty() {
            return false;
        }

        // Evictions: read page from in-package, write to off-package, scrub
        // the on-chip caches of its (old) physical address.
        for page in &to_evict {
            self.cached.remove(page);
            self.migrations_out += 1;
            sink.also(DramOp::in_package(
                page.base_addr(),
                PAGE_SIZE,
                TrafficClass::Replacement,
            ))
            .also(DramOp::off_package_write(
                page.base_addr(),
                PAGE_SIZE,
                TrafficClass::Replacement,
            ))
            .with_side_effect(SideEffect::FlushPage { page: *page });
        }
        // Insertions: read page from off-package, write into in-package,
        // scrub caches (its physical address changes under NUMA management).
        for page in &to_insert {
            self.cached.insert(*page);
            self.migrations_in += 1;
            sink.also(DramOp::off_package(
                page.base_addr(),
                PAGE_SIZE,
                TrafficClass::Replacement,
            ))
            .also(DramOp::in_package_write(
                page.base_addr(),
                PAGE_SIZE,
                TrafficClass::Replacement,
            ))
            .with_side_effect(SideEffect::FlushPage { page: *page });
        }

        // The OS stops every program while it migrates (Section 2.1.2).
        let pages_moved = (to_insert.len() + to_evict.len()) as f64;
        let stall_us = self.policy.base_cost_us + self.policy.per_page_cost_us * pages_moved;
        let pt_updates: Vec<(PageNum, PteMapInfo)> = to_insert
            .iter()
            .map(|p| (*p, PteMapInfo::cached_in(0)))
            .chain(to_evict.iter().map(|p| (*p, PteMapInfo::NOT_CACHED)))
            .collect();
        sink.with_side_effect(SideEffect::UpdatePageTable {
            updates: pt_updates,
        })
        .with_side_effect(SideEffect::TlbShootdown)
        .with_side_effect(SideEffect::StallAllCores {
            cycles: self.cpu_clock.cycles_in_us(stall_us),
        });
        true
    }

    fn current_mapping(&self, page: PageNum) -> PteMapInfo {
        if self.cached.contains(&page) {
            PteMapInfo::cached_in(0)
        } else {
            PteMapInfo::NOT_CACHED
        }
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.add("hma_migrations_in", self.migrations_in);
        s.add("hma_migrations_out", self.migrations_out);
        s.add("hma_intervals", self.intervals);
        s.add("hma_resident_pages", self.cached.len() as u64);
        // Tracker-shape stats only exist off the default backend, so the
        // exact path's stat set (and the golden fixtures that pin it)
        // stays unchanged.
        if matches!(self.tracker.kind(), FrequencyBackendKind::Cms { .. }) {
            s.add("hma_freq_memory_bytes", self.tracker.memory_bytes());
            s.add("hma_freq_candidates", self.candidates.len() as u64);
        }
        s
    }

    fn telemetry_gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("resident_pages", self.cached.len() as f64));
        out.push((
            "occupancy",
            self.cached.len() as f64 / self.capacity_pages as f64,
        ));
        out.push(("recent_miss_rate", self.demand.recent_miss_rate()));
        out.push(("migrations_in", self.migrations_in as f64));
        out.push(("migrations_out", self.migrations_out as f64));
        self.tracker.gauges(out);
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.capacity_pages);
        w.u64(self.migrations_in);
        w.u64(self.migrations_out);
        w.u64(self.intervals);
        // Residency iteration order is semantic (the eviction scan walks
        // it), so the ReplaySet persists its mutation journal; the tracker
        // writes a self-describing image (sorted maps for `exact`, raw
        // counter words for the sketch).
        self.cached.save(w);
        save_tracker(self.tracker.as_ref(), w);
        self.candidates.save(w);
        self.demand.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let capacity_pages = r.u64()?;
        if capacity_pages != self.capacity_pages {
            return Err(SnapshotError::Corrupt(format!(
                "hma image capacity {capacity_pages} pages != controller {}",
                self.capacity_pages
            )));
        }
        self.migrations_in = r.u64()?;
        self.migrations_out = r.u64()?;
        self.intervals = r.u64()?;
        self.cached = ReplaySet::restore(r)?;
        let tracker = restore_tracker(r)?;
        if tracker.kind() != self.tracker.kind() {
            return Err(SnapshotError::Corrupt(format!(
                "hma image tracks frequencies with `{}`, this configuration expects `{}`",
                tracker.kind().label(),
                self.tracker.kind().label()
            )));
        }
        self.tracker = tracker;
        self.candidates = ReplaySet::restore(r)?;
        self.demand = DemandStats::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{Addr, DramKind, MemSize};

    fn tiny() -> DCacheConfig {
        DCacheConfig {
            capacity: MemSize::kib(8), // 2 pages
            ..DCacheConfig::paper_default()
        }
    }

    #[test]
    fn no_replacement_traffic_on_the_access_path() {
        let mut c = Hma::new(&tiny());
        let plan = c.access_collected(&MemRequest::demand(Addr::new(0x9000), 0), 0);
        assert_eq!(plan.bytes_of_class(TrafficClass::Replacement), 0);
        assert_eq!(plan.bytes_on(DramKind::OffPackage), 64);
        assert_eq!(plan.bytes_on(DramKind::InPackage), 0);
    }

    #[test]
    fn epoch_moves_hot_pages_in() {
        let mut c = Hma::new(&tiny());
        // Page 5 is hot, page 9 is lukewarm, page 100 is cold.
        for _ in 0..10 {
            c.access_collected(&MemRequest::demand(PageNum::new(5).base_addr(), 0), 0);
        }
        for _ in 0..5 {
            c.access_collected(&MemRequest::demand(PageNum::new(9).base_addr(), 0), 0);
        }
        c.access_collected(&MemRequest::demand(PageNum::new(100).base_addr(), 0), 0);

        let plan = c.epoch_collected(1_000_000).expect("migrations expected");
        assert_eq!(c.resident_pages(), 2);
        assert!(c.current_mapping(PageNum::new(5)).cached);
        assert!(c.current_mapping(PageNum::new(9)).cached);
        assert!(!c.current_mapping(PageNum::new(100)).cached);
        // Every program stops during migration.
        assert!(plan
            .side_effects
            .iter()
            .any(|e| matches!(e, SideEffect::StallAllCores { .. })));
        assert!(plan
            .side_effects
            .iter()
            .any(|e| matches!(e, SideEffect::TlbShootdown)));
        // Two pages moved in: 2 x (4 KiB off-package read + 4 KiB in-package
        // write).
        assert_eq!(plan.bytes_of_class(TrafficClass::Replacement), 4 * 4096);

        // After migration the hot page hits in-package DRAM.
        let hit = c.access_collected(&MemRequest::demand(PageNum::new(5).base_addr(), 0), 0);
        assert!(hit.dram_cache_hit);
    }

    #[test]
    fn epoch_evicts_pages_that_went_cold() {
        let mut c = Hma::new(&tiny());
        for p in [1u64, 2] {
            for _ in 0..4 {
                c.access_collected(&MemRequest::demand(PageNum::new(p).base_addr(), 0), 0);
            }
        }
        c.epoch_collected(0);
        assert_eq!(c.resident_pages(), 2);
        // Next interval: two different pages are hot.
        for p in [7u64, 8] {
            for _ in 0..4 {
                c.access_collected(&MemRequest::demand(PageNum::new(p).base_addr(), 0), 0);
            }
        }
        let plan = c.epoch_collected(1).expect("should migrate");
        assert!(c.current_mapping(PageNum::new(7)).cached);
        assert!(!c.current_mapping(PageNum::new(1)).cached);
        // Evicted pages must be scrubbed from on-chip caches.
        let flushes = plan
            .side_effects
            .iter()
            .filter(|e| matches!(e, SideEffect::FlushPage { .. }))
            .count();
        assert!(flushes >= 2);
    }

    #[test]
    fn sketch_backend_still_migrates_hot_pages() {
        let backend = FrequencyBackendKind::Cms {
            width: 4096,
            depth: 4,
        };
        let mut c = Hma::with_backend(&tiny(), backend);
        for _ in 0..10 {
            c.access_collected(&MemRequest::demand(PageNum::new(5).base_addr(), 0), 0);
        }
        for _ in 0..5 {
            c.access_collected(&MemRequest::demand(PageNum::new(9).base_addr(), 0), 0);
        }
        c.access_collected(&MemRequest::demand(PageNum::new(100).base_addr(), 0), 0);
        c.epoch_collected(1_000_000).expect("migrations expected");
        // At this width three pages cannot saturate the sketch, so the
        // ranking matches the exact backend's.
        assert_eq!(c.resident_pages(), 2);
        assert!(c.current_mapping(PageNum::new(5)).cached);
        assert!(c.current_mapping(PageNum::new(9)).cached);
        assert!(!c.current_mapping(PageNum::new(100)).cached);
        // The bounded-memory stats only appear off the exact default.
        let has_mem = |s: &StatSet| s.iter().any(|(n, _)| n == "hma_freq_memory_bytes");
        assert!(has_mem(&c.stats()));
        assert!(!has_mem(&Hma::new(&tiny()).stats()));
    }

    #[test]
    fn quiet_interval_produces_no_plan() {
        let mut c = Hma::new(&tiny());
        assert!(c.epoch_collected(0).is_none());
    }

    #[test]
    fn writebacks_follow_residency() {
        let mut c = Hma::new(&tiny());
        for _ in 0..3 {
            c.access_collected(&MemRequest::demand(PageNum::new(4).base_addr(), 0), 0);
        }
        c.epoch_collected(0);
        let wb_hit = c.access_collected(&MemRequest::writeback(PageNum::new(4).base_addr(), 0), 0);
        assert_eq!(wb_hit.bytes_on(DramKind::InPackage), 64);
        let wb_miss =
            c.access_collected(&MemRequest::writeback(PageNum::new(50).base_addr(), 0), 0);
        assert_eq!(wb_miss.bytes_on(DramKind::OffPackage), 64);
    }
}
