//! Design selection and the common DRAM-cache configuration.

use banshee_common::{MemSize, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// Which DRAM-cache design a simulation uses. This mirrors the scheme list of
/// the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DramCacheDesign {
    /// Off-package DRAM only (speedup baseline, "NoCache").
    NoCache,
    /// Idealized infinite in-package DRAM ("CacheOnly").
    CacheOnly,
    /// Alloy Cache with BEAR optimizations; `fill_probability` is 1.0 for
    /// "Alloy 1" and 0.1 for "Alloy 0.1".
    Alloy {
        /// Probability that a miss fills the cache (stochastic replacement).
        fill_probability: f64,
    },
    /// Unison Cache (page granularity, LRU, way + footprint prediction).
    Unison,
    /// Tagless DRAM Cache (idealized TLB coherence, FIFO, perfect footprint).
    Tdc,
    /// Software-managed heterogeneous memory architecture (epoch remapping).
    Hma,
    /// Banshee with its default frequency-based, sampled replacement.
    Banshee,
    /// Ablation: Banshee's architecture but with an LRU policy that replaces
    /// on every miss (Figure 7, "Banshee LRU").
    BansheeLru,
    /// Ablation: Banshee's FBR without sampled counter updates (Figure 7,
    /// "Banshee FBR no sample", similar to CHOP).
    BansheeFbrNoSample,
}

impl DramCacheDesign {
    /// The display label used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            DramCacheDesign::NoCache => "NoCache".to_string(),
            DramCacheDesign::CacheOnly => "CacheOnly".to_string(),
            DramCacheDesign::Alloy { fill_probability } => {
                if (*fill_probability - 1.0).abs() < 1e-9 {
                    "Alloy 1".to_string()
                } else {
                    format!("Alloy {fill_probability}")
                }
            }
            DramCacheDesign::Unison => "Unison".to_string(),
            DramCacheDesign::Tdc => "TDC".to_string(),
            DramCacheDesign::Hma => "HMA".to_string(),
            DramCacheDesign::Banshee => "Banshee".to_string(),
            DramCacheDesign::BansheeLru => "Banshee LRU".to_string(),
            DramCacheDesign::BansheeFbrNoSample => "Banshee FBR no sample".to_string(),
        }
    }

    /// Resolve a display label back to its design. Accepts every label
    /// [`DramCacheDesign::label`] can produce, including `Alloy <p>` with an
    /// arbitrary fill probability in (0, 1].
    pub fn parse(label: &str) -> Option<DramCacheDesign> {
        for design in Self::named_catalogue() {
            if design.label() == label {
                return Some(design);
            }
        }
        if let Some(p) = label.strip_prefix("Alloy ") {
            let fill_probability: f64 = p.trim().parse().ok()?;
            if fill_probability > 0.0 && fill_probability <= 1.0 {
                return Some(DramCacheDesign::Alloy { fill_probability });
            }
        }
        None
    }

    /// Every design with a fixed label (the parseable catalogue; `Alloy`
    /// additionally accepts any fill probability).
    pub fn named_catalogue() -> Vec<DramCacheDesign> {
        vec![
            DramCacheDesign::NoCache,
            DramCacheDesign::CacheOnly,
            DramCacheDesign::Alloy {
                fill_probability: 1.0,
            },
            DramCacheDesign::Alloy {
                fill_probability: 0.1,
            },
            DramCacheDesign::Unison,
            DramCacheDesign::Tdc,
            DramCacheDesign::Hma,
            DramCacheDesign::Banshee,
            DramCacheDesign::BansheeLru,
            DramCacheDesign::BansheeFbrNoSample,
        ]
    }

    /// All parseable labels, for error messages.
    pub fn all_labels() -> Vec<String> {
        Self::named_catalogue().iter().map(|d| d.label()).collect()
    }

    /// The schemes of Figure 4 in presentation order.
    pub fn figure4_lineup() -> Vec<DramCacheDesign> {
        vec![
            DramCacheDesign::NoCache,
            DramCacheDesign::Unison,
            DramCacheDesign::Tdc,
            DramCacheDesign::Alloy {
                fill_probability: 1.0,
            },
            DramCacheDesign::Alloy {
                fill_probability: 0.1,
            },
            DramCacheDesign::Banshee,
            DramCacheDesign::CacheOnly,
        ]
    }
}

/// Geometry and behaviour knobs shared by all DRAM-cache designs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DCacheConfig {
    /// In-package DRAM capacity used as a cache.
    pub capacity: MemSize,
    /// Set associativity for page-granularity designs (Banshee, Unison).
    pub ways: usize,
    /// Granularity at which footprint prediction is managed, in lines
    /// (the paper models 4-line granularity).
    pub footprint_granularity: u64,
    /// Number of memory controllers the physical address space is
    /// interleaved over (page granularity). Used to size per-MC structures.
    pub memory_controllers: usize,
}

impl DCacheConfig {
    /// The paper's configuration: 1 GB, 4-way, footprint managed at 4-line
    /// granularity.
    pub fn paper_default() -> Self {
        DCacheConfig {
            capacity: MemSize::gib(1),
            ways: 4,
            footprint_granularity: 4,
            memory_controllers: 4,
        }
    }

    /// A scaled-down configuration for fast simulation, keeping the same
    /// associativity.
    pub fn scaled(capacity: MemSize) -> Self {
        DCacheConfig {
            capacity,
            ..Self::paper_default()
        }
    }

    /// Total 4 KiB page frames the cache can hold.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity.as_bytes() / PAGE_SIZE
    }

    /// Number of page-granularity sets (capacity pages / ways).
    pub fn page_sets(&self) -> u64 {
        (self.capacity_pages() / self.ways as u64).max(1)
    }

    /// Total 64-byte lines the cache can hold (for line-granularity designs).
    pub fn capacity_lines(&self) -> u64 {
        self.capacity.as_bytes() / banshee_common::CACHE_LINE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let c = DCacheConfig::paper_default();
        assert_eq!(c.capacity_pages(), 262_144);
        assert_eq!(c.page_sets(), 65_536);
        assert_eq!(c.capacity_lines(), 16_777_216);
        assert_eq!(c.ways, 4);
    }

    #[test]
    fn scaled_keeps_associativity() {
        let c = DCacheConfig::scaled(MemSize::mib(64));
        assert_eq!(c.ways, 4);
        assert_eq!(c.capacity_pages(), 16_384);
        assert_eq!(c.page_sets(), 4096);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            DramCacheDesign::Alloy {
                fill_probability: 1.0
            }
            .label(),
            "Alloy 1"
        );
        assert_eq!(
            DramCacheDesign::Alloy {
                fill_probability: 0.1
            }
            .label(),
            "Alloy 0.1"
        );
        assert_eq!(DramCacheDesign::Banshee.label(), "Banshee");
        assert_eq!(DramCacheDesign::Tdc.label(), "TDC");
    }

    #[test]
    fn figure4_lineup_has_seven_schemes() {
        let lineup = DramCacheDesign::figure4_lineup();
        assert_eq!(lineup.len(), 7);
        assert_eq!(lineup[0], DramCacheDesign::NoCache);
        assert_eq!(lineup[6], DramCacheDesign::CacheOnly);
    }

    #[test]
    fn every_label_parses_back() {
        for design in DramCacheDesign::named_catalogue() {
            assert_eq!(DramCacheDesign::parse(&design.label()), Some(design));
        }
        for design in DramCacheDesign::figure4_lineup() {
            assert_eq!(DramCacheDesign::parse(&design.label()), Some(design));
        }
        assert_eq!(
            DramCacheDesign::parse("Alloy 0.5"),
            Some(DramCacheDesign::Alloy {
                fill_probability: 0.5
            })
        );
        assert_eq!(DramCacheDesign::parse("Alloy 2"), None);
        assert_eq!(DramCacheDesign::parse("banshee"), None, "labels are exact");
        assert_eq!(DramCacheDesign::parse("NotADesign"), None);
        assert!(DramCacheDesign::all_labels().contains(&"Banshee".to_string()));
    }
}
