//! The trait every DRAM-cache design implements.

use crate::plan::{MemRequest, PlanSink};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{Cycle, PageNum, StatSet};
use banshee_memhier::PteMapInfo;

/// A DRAM-cache controller: the logic in a memory controller that decides,
/// for each request, which DRAM operations to perform and how to manage the
/// cache's contents.
///
/// The system simulator drives controllers through three entry points:
///
/// * [`DramCacheController::access`] — every LLC miss and LLC dirty eviction.
/// * [`DramCacheController::epoch`] — a periodic hook (fixed instruction
///   interval) used by software-managed designs (HMA) and by designs that
///   adapt to observed bandwidth (BATMAN).
/// * [`DramCacheController::current_mapping`] — the ground-truth mapping for
///   a physical page, used by the simulator when it re-walks the page table
///   after a TLB shootdown for PTE/TLB-based designs.
///
/// Plans are written into a caller-owned [`PlanSink`] so the per-access path
/// allocates nothing: the simulator resets and reuses one sink for every
/// request. Tests and tools that want an owned plan use
/// [`DramCacheController::access_collected`] /
/// [`DramCacheController::epoch_collected`].
pub trait DramCacheController {
    /// A short human-readable name ("Banshee", "Alloy 0.1", ...).
    fn name(&self) -> &str;

    /// Service one request, appending the DRAM operations and side effects
    /// to `sink` (which the caller has [`PlanSink::reset`] beforehand).
    fn access(&mut self, req: &MemRequest, now: Cycle, sink: &mut PlanSink);

    /// Periodic maintenance hook. `now` is the current cycle; any operations
    /// appended to `sink` are issued as background traffic. Returns `true`
    /// if the hook produced a plan to execute. The default implementation
    /// does nothing.
    fn epoch(&mut self, _now: Cycle, _sink: &mut PlanSink) -> bool {
        false
    }

    /// Convenience for tests and analysis tools: service one request into a
    /// freshly allocated [`PlanSink`] and return it.
    fn access_collected(&mut self, req: &MemRequest, now: Cycle) -> PlanSink {
        let mut sink = PlanSink::new();
        self.access(req, now, &mut sink);
        sink
    }

    /// Convenience for tests: run the epoch hook into a fresh sink,
    /// returning it only when the hook produced a plan.
    fn epoch_collected(&mut self, now: Cycle) -> Option<PlanSink> {
        let mut sink = PlanSink::new();
        if self.epoch(now, &mut sink) {
            Some(sink)
        } else {
            None
        }
    }

    /// The up-to-date DRAM-cache mapping for a physical page, as the *page
    /// table* should see it after a coherence update. Designs that do not use
    /// PTE/TLB mapping return [`PteMapInfo::NOT_CACHED`].
    fn current_mapping(&self, _page: PageNum) -> PteMapInfo {
        PteMapInfo::NOT_CACHED
    }

    /// The design's observed DRAM-cache miss rate so far (demand accesses
    /// only). Used for reporting and, in Banshee, fed back into the adaptive
    /// sampling rate.
    fn miss_rate(&self) -> f64;

    /// Total demand accesses and misses (for MPKI reporting).
    fn demand_stats(&self) -> (u64, u64);

    /// Design-specific named counters (tag-buffer flushes, footprint sizes,
    /// pages remapped, ...).
    fn stats(&self) -> StatSet;

    /// Push design-specific telemetry gauges as `(name, value)` pairs for
    /// one time-series sample. Names must be stable within a run; values are
    /// point-in-time (occupancy, threshold) or cumulative (the recorder
    /// turns [`banshee_common::telemetry::EVENT_GAUGES`] names' increases
    /// into polled events). The default pushes nothing; only called when
    /// telemetry is enabled, so implementations need not be hot-path cheap.
    fn telemetry_gauges(&self, _out: &mut Vec<(&'static str, f64)>) {}

    /// Serialise the controller's mutable state (cache contents, counters,
    /// RNG streams) into a warmed-state snapshot. Configuration is *not*
    /// saved: a restored controller is always built cold from the same
    /// [`crate::DCacheConfig`] first, then [`DramCacheController::load_state`]
    /// overwrites its mutable state.
    fn save_state(&self, w: &mut SnapshotWriter);

    /// Restore mutable state previously written by
    /// [`DramCacheController::save_state`] into this (freshly built)
    /// controller. Returns a typed error on corrupt or mismatched images;
    /// the controller may be left partially updated and must be discarded
    /// by the caller on error.
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>;
}

/// Shared bookkeeping for demand hit/miss accounting, embedded by the
/// concrete designs so that miss-rate reporting is uniform.
#[derive(Debug, Clone, Default)]
pub struct DemandStats {
    accesses: u64,
    misses: u64,
    /// Misses within the recent window (for adaptive policies).
    window_accesses: u64,
    window_misses: u64,
    window_size: u64,
    recent_miss_rate: f64,
}

impl DemandStats {
    /// Create with a sliding-window length for the recent miss rate.
    pub fn new(window_size: u64) -> Self {
        DemandStats {
            window_size: window_size.max(1),
            recent_miss_rate: 1.0,
            ..Default::default()
        }
    }

    /// Record one demand access and whether it hit the DRAM cache.
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        self.window_accesses += 1;
        if !hit {
            self.misses += 1;
            self.window_misses += 1;
        }
        if self.window_accesses >= self.window_size {
            self.recent_miss_rate = self.window_misses as f64 / self.window_accesses as f64;
            self.window_accesses = 0;
            self.window_misses = 0;
        }
    }

    /// Cumulative miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Miss rate over the most recent completed window (starts at 1.0 so the
    /// first window of a cold cache samples aggressively, matching the
    /// paper's intent that sampling tracks the *recent* miss rate).
    pub fn recent_miss_rate(&self) -> f64 {
        self.recent_miss_rate
    }

    /// (accesses, misses) so far.
    pub fn totals(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }
}

impl Persist for DemandStats {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.accesses);
        w.u64(self.misses);
        w.u64(self.window_accesses);
        w.u64(self.window_misses);
        w.u64(self.window_size);
        w.f64(self.recent_miss_rate);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DemandStats {
            accesses: r.u64()?,
            misses: r.u64()?,
            window_accesses: r.u64()?,
            window_misses: r.u64()?,
            window_size: r.u64()?,
            recent_miss_rate: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_stats_miss_rate() {
        let mut s = DemandStats::new(4);
        assert_eq!(s.miss_rate(), 0.0);
        s.record(false);
        s.record(false);
        s.record(true);
        s.record(true);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.totals(), (4, 2));
    }

    #[test]
    fn recent_miss_rate_updates_per_window() {
        let mut s = DemandStats::new(4);
        // Before any full window, the recent rate is the pessimistic 1.0.
        assert_eq!(s.recent_miss_rate(), 1.0);
        for _ in 0..4 {
            s.record(false);
        }
        assert!((s.recent_miss_rate() - 1.0).abs() < 1e-12);
        for _ in 0..4 {
            s.record(true);
        }
        assert!(s.recent_miss_rate().abs() < 1e-12);
        // Cumulative rate is 0.5 though.
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_window_is_clamped() {
        let mut s = DemandStats::new(0);
        s.record(true);
        assert!((s.recent_miss_rate()).abs() < 1e-12);
    }
}
