//! DRAM-cache controller abstraction and the baseline designs the Banshee
//! paper compares against.
//!
//! A DRAM-cache *design* decides, for every request that reaches a memory
//! controller (an LLC demand miss or an LLC dirty eviction), which DRAM
//! operations happen: where the data lives, which tags/metadata must be read
//! or written, and what replacement traffic is generated. The design writes
//! its plan into a caller-owned [`PlanSink`] — an explicit list of DRAM
//! operations split into the *critical path* (the requester waits for these)
//! and *background* work (fills, writebacks, metadata updates that only
//! consume bandwidth) — plus any OS-level side effects (page-table updates,
//! TLB shootdowns, page flushes). The sink is reset and reused between
//! requests, keeping the per-access hot path allocation-free.
//!
//! Designs implemented here (Section 2 and Table 1 of the paper):
//!
//! * [`nocache::NoCache`] — off-package DRAM only (the speedup baseline).
//! * [`cacheonly::CacheOnly`] — idealized infinite in-package DRAM.
//! * [`alloy::AlloyCache`] — direct-mapped, line-granularity, tags-in-DRAM
//!   (Qureshi & Loh, MICRO 2012) with the BEAR bandwidth optimizations and
//!   stochastic fill.
//! * [`unison::UnisonCache`] — page-granularity, 4-way, LRU, tags-in-DRAM
//!   with way prediction and footprint caching (Jevdjic et al., MICRO 2014).
//! * [`tdc::Tdc`] — the Tagless DRAM Cache (Lee et al., ISCA 2015):
//!   PTE/TLB-mapped, fully-associative, FIFO, idealized TLB coherence.
//! * [`hma::Hma`] — software-managed epoch-based remapping (Meswani et al.,
//!   HPCA 2015).
//! * [`batman::Batman`] — the BATMAN bandwidth-balancing wrapper
//!   (Section 5.4.2), applicable on top of any other design.
//!
//! The Banshee design itself lives in the `banshee` crate and implements the
//! same [`DramCacheController`] trait.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloy;
pub mod batman;
pub mod cacheonly;
pub mod controller;
pub mod design;
pub mod footprint;
pub mod hma;
pub mod nocache;
pub mod plan;
pub mod tdc;
pub mod unison;

pub use controller::{DemandStats, DramCacheController};
pub use design::{DCacheConfig, DramCacheDesign};
pub use footprint::FootprintPredictor;
pub use plan::{DramOp, MemRequest, PlanSink, RequestKind, SideEffect};

/// Bytes of a tag/metadata access on the in-package DRAM link (the paper
/// charges 32 B for a tag read or update — the link's minimum transfer).
pub const TAG_BYTES: u64 = 32;
/// Bytes of one cache line.
pub const LINE_BYTES: u64 = banshee_common::CACHE_LINE_SIZE;
/// Bytes of one regular page.
pub const PAGE_BYTES: u64 = banshee_common::PAGE_SIZE;
