//! Tagless DRAM Cache (TDC): page-granularity, fully-associative, FIFO
//! replacement, with the page mapping held in PTEs/TLBs (Lee et al., ISCA
//! 2015).
//!
//! The Banshee paper evaluates an **idealized** TDC (Section 5.1.1): TLB
//! coherence is assumed free, address-consistency side effects are ignored,
//! and footprint prediction is perfect. We reproduce that idealization:
//!
//! * **Hit**: 64 B of in-package traffic, no tag access (the mapping came
//!   from the TLB).
//! * **Miss**: 64 B from off-package DRAM on the critical path, again no tag
//!   probe.
//! * **Replacement on every miss**: the page is brought in at footprint
//!   granularity and a FIFO victim is evicted (its dirty lines written back).
//! * **LLC dirty eviction**: routed by the (idealized, always-correct)
//!   mapping; 64 B to whichever DRAM holds the line.
//!
//! Because the mapping is NUMA-style (the page's physical address changes
//! when it moves), a real TDC would also need cache scrubbing for address
//! consistency; the paper explicitly ignores this for TDC, and so do we.

use crate::controller::{DemandStats, DramCacheController};
use crate::design::DCacheConfig;
use crate::footprint::FootprintPredictor;
use crate::plan::{DramOp, MemRequest, PlanSink, RequestKind};
use banshee_common::{
    Addr, Cycle, FnvHashMap, PageNum, StatSet, TrafficClass, CACHE_LINE_SIZE, PAGE_SIZE,
};
use banshee_memhier::PteMapInfo;
use std::collections::VecDeque;

/// State of one cached page frame in the in-package DRAM.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Which in-package frame slot the page occupies (for DRAM addressing).
    slot: u64,
    /// Bitmask of dirty lines.
    dirty_mask: u64,
}

/// The idealized TDC controller.
#[derive(Debug)]
pub struct Tdc {
    /// Fully-associative content map: page → frame.
    frames: FnvHashMap<PageNum, Frame>,
    /// FIFO order of insertion.
    fifo: VecDeque<PageNum>,
    /// Free frame slots.
    free_slots: Vec<u64>,
    /// Total page frames the cache can hold.
    capacity_pages: u64,
    demand: DemandStats,
    footprint: FootprintPredictor,
    fills: u64,
    evictions: u64,
}

impl Tdc {
    /// Build a TDC over the configured capacity.
    pub fn new(config: &DCacheConfig) -> Self {
        let capacity_pages = config.capacity_pages().max(1);
        Tdc {
            frames: FnvHashMap::default(),
            fifo: VecDeque::new(),
            free_slots: (0..capacity_pages).rev().collect(),
            capacity_pages,
            demand: DemandStats::new(4096),
            footprint: FootprintPredictor::new(config.footprint_granularity),
            fills: 0,
            evictions: 0,
        }
    }

    /// Number of pages currently cached.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    /// Total page frames the cache can hold.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    fn frame_addr(&self, slot: u64, offset: u64) -> Addr {
        Addr::new(slot * PAGE_SIZE + offset)
    }

    /// Evict the FIFO-oldest page, returning the traffic it generates.
    fn evict_one(&mut self, plan: &mut PlanSink) -> u64 {
        let victim = loop {
            match self.fifo.pop_front() {
                Some(p) if self.frames.contains_key(&p) => break p,
                Some(_) => continue,
                None => return u64::MAX, // nothing to evict; caller handles
            }
        };
        let frame = self.frames.remove(&victim).expect("victim resident");
        self.evictions += 1;
        let dirty_lines = u64::from(frame.dirty_mask.count_ones());
        if dirty_lines > 0 {
            plan.background.push(DramOp::in_package(
                self.frame_addr(frame.slot, 0),
                dirty_lines * CACHE_LINE_SIZE,
                TrafficClass::Replacement,
            ));
            plan.background.push(DramOp::off_package(
                victim.base_addr(),
                dirty_lines * CACHE_LINE_SIZE,
                TrafficClass::Writeback,
            ));
        }
        self.footprint.on_evict(victim);
        frame.slot
    }
}

impl DramCacheController for Tdc {
    fn name(&self) -> &str {
        "TDC"
    }

    fn access(&mut self, req: &MemRequest, _now: Cycle, sink: &mut PlanSink) {
        let page = req.page();
        let line_in_page = req.addr.line().index_in_page();

        match req.kind {
            RequestKind::DemandMiss => {
                if let Some(frame) = self.frames.get_mut(&page) {
                    // ---- Hit: pure 64 B in-package access ----
                    self.demand.record(true);
                    if req.write {
                        frame.dirty_mask |= 1 << line_in_page;
                    }
                    let slot = frame.slot;
                    let addr = self.frame_addr(slot, req.addr.page_offset());
                    self.footprint.on_access(page, line_in_page);
                    sink.then(DramOp::in_package(addr, 64, TrafficClass::HitData))
                        .hit();
                    return;
                }

                // ---- Miss: off-package demand fetch + replacement ----
                self.demand.record(false);
                sink.then(DramOp::off_package(req.addr, 64, TrafficClass::MissData));

                // Find a frame slot (evicting the FIFO-oldest if full).
                let slot = if let Some(slot) = self.free_slots.pop() {
                    slot
                } else {
                    let slot = self.evict_one(sink);
                    debug_assert!(slot != u64::MAX, "full cache must have a victim");
                    slot
                };

                // Fill at footprint granularity.
                self.fills += 1;
                let fp_bytes = self.footprint.predicted_bytes();
                self.footprint.on_fill(page, line_in_page);
                sink.also(DramOp::off_package(
                    page.base_addr(),
                    fp_bytes,
                    TrafficClass::Replacement,
                ))
                .also(DramOp::in_package(
                    self.frame_addr(slot, 0),
                    fp_bytes,
                    TrafficClass::Replacement,
                ));

                self.frames.insert(
                    page,
                    Frame {
                        slot,
                        dirty_mask: if req.write { 1 << line_in_page } else { 0 },
                    },
                );
                self.fifo.push_back(page);
            }
            RequestKind::Writeback => {
                // Idealized: mapping always known, no probe traffic.
                if let Some(frame) = self.frames.get_mut(&page) {
                    frame.dirty_mask |= 1 << line_in_page;
                    let slot = frame.slot;
                    let addr = self.frame_addr(slot, req.addr.page_offset());
                    sink.also(DramOp::in_package(addr, 64, TrafficClass::Writeback));
                } else {
                    sink.also(DramOp::off_package(req.addr, 64, TrafficClass::Writeback));
                }
            }
        }
    }

    fn current_mapping(&self, page: PageNum) -> PteMapInfo {
        if self.frames.contains_key(&page) {
            PteMapInfo::cached_in(0)
        } else {
            PteMapInfo::NOT_CACHED
        }
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.add("tdc_fills", self.fills);
        s.add("tdc_evictions", self.evictions);
        s.add("tdc_resident_pages", self.frames.len() as u64);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{DramKind, MemSize};

    fn tiny() -> DCacheConfig {
        DCacheConfig {
            capacity: MemSize::kib(16), // 4 pages
            ..DCacheConfig::paper_default()
        }
    }

    #[test]
    fn hit_is_tagless_64_bytes() {
        let mut c = Tdc::new(&tiny());
        let addr = Addr::new(0x3000);
        c.access_collected(&MemRequest::demand(addr, 0), 0);
        let hit = c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(hit.dram_cache_hit);
        assert_eq!(hit.bytes_on(DramKind::InPackage), 64);
        assert_eq!(
            hit.bytes_of_class(TrafficClass::Tag),
            0,
            "TDC has no tag traffic"
        );
    }

    #[test]
    fn miss_critical_path_is_single_off_package_access() {
        let mut c = Tdc::new(&tiny());
        let miss = c.access_collected(&MemRequest::demand(Addr::new(0x5000), 0), 0);
        assert_eq!(miss.critical.len(), 1);
        assert_eq!(miss.critical[0].dram, DramKind::OffPackage);
        assert_eq!(miss.critical[0].bytes, 64);
    }

    #[test]
    fn fully_associative_no_conflict_misses() {
        // 4-page capacity: any 4 distinct pages can coexist regardless of
        // their addresses (unlike a set-associative cache).
        let mut c = Tdc::new(&tiny());
        let pages = [0u64, 1 << 20, 2 << 20, 3 << 20];
        for &p in &pages {
            c.access_collected(&MemRequest::demand(Addr::new(p), 0), 0);
        }
        for &p in &pages {
            assert!(
                c.access_collected(&MemRequest::demand(Addr::new(p), 0), 0)
                    .dram_cache_hit
            );
        }
        assert_eq!(c.resident_pages(), 4);
    }

    #[test]
    fn fifo_evicts_oldest_even_if_recently_used() {
        let mut c = Tdc::new(&tiny());
        for p in 0..4u64 {
            c.access_collected(&MemRequest::demand(PageNum::new(p).base_addr(), 0), 0);
        }
        // Touch page 0 again (FIFO ignores recency), then insert a 5th page.
        c.access_collected(&MemRequest::demand(PageNum::new(0).base_addr(), 0), 0);
        c.access_collected(&MemRequest::demand(PageNum::new(9).base_addr(), 0), 0);
        assert!(
            !c.access_collected(&MemRequest::demand(PageNum::new(0).base_addr(), 0), 0)
                .dram_cache_hit,
            "FIFO must evict the oldest-inserted page"
        );
    }

    #[test]
    fn dirty_victim_written_back_on_eviction() {
        let mut c = Tdc::new(&tiny());
        c.access_collected(
            &MemRequest::demand(PageNum::new(0).base_addr(), 0).as_store(),
            0,
        );
        for p in 1..4u64 {
            c.access_collected(&MemRequest::demand(PageNum::new(p).base_addr(), 0), 0);
        }
        // Eviction of page 0 (dirty, 1 line) happens on the next miss.
        let plan = c.access_collected(&MemRequest::demand(PageNum::new(7).base_addr(), 0), 0);
        assert_eq!(plan.bytes_of_class(TrafficClass::Writeback), 64);
    }

    #[test]
    fn writeback_routing_uses_ground_truth_mapping() {
        let mut c = Tdc::new(&tiny());
        let cached = Addr::new(0x2000);
        c.access_collected(&MemRequest::demand(cached, 0), 0);
        let wb_hit = c.access_collected(&MemRequest::writeback(cached, 0), 0);
        assert_eq!(wb_hit.bytes_on(DramKind::InPackage), 64);
        let wb_miss = c.access_collected(&MemRequest::writeback(Addr::new(0xAB_0000), 0), 0);
        assert_eq!(wb_miss.bytes_on(DramKind::OffPackage), 64);
    }

    #[test]
    fn mapping_exposed_for_page_table() {
        let mut c = Tdc::new(&tiny());
        let addr = Addr::new(0x7000);
        assert_eq!(c.current_mapping(addr.page()), PteMapInfo::NOT_CACHED);
        c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(c.current_mapping(addr.page()).cached);
    }
}
