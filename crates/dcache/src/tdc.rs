//! Tagless DRAM Cache (TDC): page-granularity, fully-associative, FIFO
//! replacement, with the page mapping held in PTEs/TLBs (Lee et al., ISCA
//! 2015).
//!
//! The Banshee paper evaluates an idealized TDC (Section 5.1.1): TLB
//! coherence is assumed free and address-consistency side effects are
//! ignored. Earlier revisions of this reproduction went further than the
//! paper — the page map was a free SRAM structure and footprint fills never
//! touched the miss path — which made TDC beat even the idealized CacheOnly
//! bound. The cost model here keeps the paper's idealizations (free TLB
//! coherence, no scrubbing) but charges the structures TDC actually keeps
//! in DRAM:
//!
//! * **Hit**: 64 B of in-package traffic, no tag access — the mapping came
//!   from the TLB, which is TDC's legitimate claim.
//! * **Miss**: the global inverted page table / free-frame map lives in
//!   in-package DRAM, so the miss path consults it (32 B map read on the
//!   critical path) before the 64 B off-package demand fetch, and updates
//!   it when the new mapping is installed (32 B map write, background).
//! * **Replacement on every miss**: the page is brought in at footprint
//!   granularity (off-package read, in-package fill write) and a FIFO
//!   victim is evicted — its dirty lines written back and its map entry
//!   invalidated (32 B map write).
//! * **LLC dirty eviction**: carries no TLB hint (Section 3.3), so the map
//!   is consulted (32 B read) before the 64 B write is routed to whichever
//!   DRAM holds the line.
//!
//! Because the mapping is NUMA-style (the page's physical address changes
//! when it moves), a real TDC would also need cache scrubbing for address
//! consistency; the paper explicitly ignores this for TDC, and so do we.

use crate::controller::{DemandStats, DramCacheController};
use crate::design::DCacheConfig;
use crate::footprint::FootprintPredictor;
use crate::plan::{DramOp, MemRequest, PlanSink, RequestKind};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{
    Addr, Cycle, FnvHashMap, PageNum, StatSet, TrafficClass, CACHE_LINE_SIZE, PAGE_SIZE,
};
use banshee_memhier::PteMapInfo;
use std::collections::VecDeque;

/// State of one cached page frame in the in-package DRAM.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Which in-package frame slot the page occupies (for DRAM addressing).
    slot: u64,
    /// Bitmask of dirty lines.
    dirty_mask: u64,
}

/// The idealized TDC controller.
#[derive(Debug)]
pub struct Tdc {
    /// Fully-associative content map: page → frame.
    frames: FnvHashMap<PageNum, Frame>,
    /// FIFO order of insertion.
    fifo: VecDeque<PageNum>,
    /// Free frame slots.
    free_slots: Vec<u64>,
    /// Total page frames the cache can hold.
    capacity_pages: u64,
    demand: DemandStats,
    footprint: FootprintPredictor,
    fills: u64,
    evictions: u64,
    map_probes: u64,
    map_updates: u64,
}

impl Tdc {
    /// Build a TDC over the configured capacity.
    pub fn new(config: &DCacheConfig) -> Self {
        Self::with_backend(config, banshee_common::FrequencyBackendKind::Exact)
    }

    /// Build a TDC whose footprint predictor tracks touched lines on the
    /// given frequency backend.
    pub fn with_backend(
        config: &DCacheConfig,
        backend: banshee_common::FrequencyBackendKind,
    ) -> Self {
        let capacity_pages = config.capacity_pages().max(1);
        Tdc {
            frames: FnvHashMap::default(),
            fifo: VecDeque::new(),
            free_slots: (0..capacity_pages).rev().collect(),
            capacity_pages,
            demand: DemandStats::new(4096),
            footprint: FootprintPredictor::with_backend(config.footprint_granularity, backend),
            fills: 0,
            evictions: 0,
            map_probes: 0,
            map_updates: 0,
        }
    }

    /// Number of pages currently cached.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    /// Total page frames the cache can hold.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    fn frame_addr(&self, slot: u64, offset: u64) -> Addr {
        Addr::new(slot * PAGE_SIZE + offset)
    }

    /// In-package DRAM address of a page's map entry. The map region lives
    /// past the frame region; entries are 32 B map lines indexed by page
    /// number, so map traffic lands in its own DRAM rows.
    fn map_addr(&self, page: PageNum) -> Addr {
        let map_base = self.capacity_pages * PAGE_SIZE;
        Addr::new(map_base + (page.raw() % self.capacity_pages.max(1)) * 32)
    }

    /// Charge one 32 B read of the in-DRAM page map — on the critical path
    /// when the requester waits for the answer (demand misses), as
    /// background traffic otherwise (writebacks).
    fn probe_map(&mut self, page: PageNum, critical: bool, plan: &mut PlanSink) {
        self.map_probes += 1;
        let op = DramOp::in_package(self.map_addr(page), 32, TrafficClass::Tag);
        if critical {
            plan.critical.push(op);
        } else {
            plan.background.push(op);
        }
    }

    /// Charge one 32 B map-entry update (background write).
    fn update_map(&mut self, page: PageNum, plan: &mut PlanSink) {
        self.map_updates += 1;
        plan.background.push(DramOp::in_package_write(
            self.map_addr(page),
            32,
            TrafficClass::Tag,
        ));
    }

    /// Evict the FIFO-oldest page, returning the traffic it generates.
    fn evict_one(&mut self, plan: &mut PlanSink) -> u64 {
        let victim = loop {
            match self.fifo.pop_front() {
                Some(p) if self.frames.contains_key(&p) => break p,
                Some(_) => continue,
                None => return u64::MAX, // nothing to evict; caller handles
            }
        };
        let frame = self.frames.remove(&victim).expect("victim resident");
        self.evictions += 1;
        let dirty_lines = u64::from(frame.dirty_mask.count_ones());
        if dirty_lines > 0 {
            plan.background.push(DramOp::in_package(
                self.frame_addr(frame.slot, 0),
                dirty_lines * CACHE_LINE_SIZE,
                TrafficClass::Replacement,
            ));
            plan.background.push(DramOp::off_package_write(
                victim.base_addr(),
                dirty_lines * CACHE_LINE_SIZE,
                TrafficClass::Writeback,
            ));
        }
        // The victim's map entry is invalidated.
        self.update_map(victim, plan);
        self.footprint.on_evict(victim);
        frame.slot
    }
}

impl DramCacheController for Tdc {
    fn name(&self) -> &str {
        "TDC"
    }

    fn access(&mut self, req: &MemRequest, _now: Cycle, sink: &mut PlanSink) {
        let page = req.page();
        let line_in_page = req.addr.line().index_in_page();

        match req.kind {
            RequestKind::DemandMiss => {
                if let Some(frame) = self.frames.get_mut(&page) {
                    // ---- Hit: pure 64 B in-package access ----
                    self.demand.record(true);
                    if req.write {
                        frame.dirty_mask |= 1 << line_in_page;
                    }
                    let slot = frame.slot;
                    let addr = self.frame_addr(slot, req.addr.page_offset());
                    self.footprint.on_access(page, line_in_page);
                    sink.then(DramOp::in_package(addr, 64, TrafficClass::HitData))
                        .hit();
                    return;
                }

                // ---- Miss: map consult + off-package demand fetch +
                // replacement ----
                self.demand.record(false);
                // The miss path consults the in-DRAM map (free-frame lookup)
                // before the demand fetch can be routed.
                self.probe_map(page, true, sink);
                sink.then(DramOp::off_package(req.addr, 64, TrafficClass::MissData));

                // Find a frame slot (evicting the FIFO-oldest if full).
                let slot = if let Some(slot) = self.free_slots.pop() {
                    slot
                } else {
                    let slot = self.evict_one(sink);
                    debug_assert!(slot != u64::MAX, "full cache must have a victim");
                    slot
                };

                // Fill at footprint granularity and install the new mapping.
                self.fills += 1;
                let fp_bytes = self.footprint.predicted_bytes();
                self.footprint.on_fill(page, line_in_page);
                sink.also(DramOp::off_package(
                    page.base_addr(),
                    fp_bytes,
                    TrafficClass::Replacement,
                ))
                .also(DramOp::in_package_write(
                    self.frame_addr(slot, 0),
                    fp_bytes,
                    TrafficClass::Replacement,
                ));
                self.update_map(page, sink);

                self.frames.insert(
                    page,
                    Frame {
                        slot,
                        dirty_mask: if req.write { 1 << line_in_page } else { 0 },
                    },
                );
                self.fifo.push_back(page);
            }
            RequestKind::Writeback => {
                // Dirty evictions carry no TLB hint: the in-DRAM map decides
                // where the line lives (32 B probe, background — nobody
                // waits on a writeback).
                self.probe_map(page, false, sink);
                if let Some(frame) = self.frames.get_mut(&page) {
                    frame.dirty_mask |= 1 << line_in_page;
                    let slot = frame.slot;
                    let addr = self.frame_addr(slot, req.addr.page_offset());
                    sink.also(DramOp::in_package_write(addr, 64, TrafficClass::Writeback));
                } else {
                    sink.also(DramOp::off_package_write(
                        req.addr,
                        64,
                        TrafficClass::Writeback,
                    ));
                }
            }
        }
    }

    fn current_mapping(&self, page: PageNum) -> PteMapInfo {
        if self.frames.contains_key(&page) {
            PteMapInfo::cached_in(0)
        } else {
            PteMapInfo::NOT_CACHED
        }
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.add("tdc_fills", self.fills);
        s.add("tdc_evictions", self.evictions);
        s.add("tdc_resident_pages", self.frames.len() as u64);
        s.add("tdc_map_probes", self.map_probes);
        s.add("tdc_map_updates", self.map_updates);
        s
    }

    fn telemetry_gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("resident_pages", self.frames.len() as f64));
        out.push((
            "occupancy",
            self.frames.len() as f64 / self.capacity_pages as f64,
        ));
        out.push(("recent_miss_rate", self.demand.recent_miss_rate()));
        out.push(("fills", self.fills as f64));
        out.push(("evictions", self.evictions as f64));
        self.footprint.tracker_gauges(out);
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.capacity_pages);
        w.u64(self.fills);
        w.u64(self.evictions);
        w.u64(self.map_probes);
        w.u64(self.map_updates);
        // The frame map is only probed by key, so a sorted encoding is
        // canonical; the FIFO and free-slot stack are order-semantic and go
        // out verbatim.
        let mut frames: Vec<(&PageNum, &Frame)> = self.frames.iter().collect();
        frames.sort_unstable_by_key(|(p, _)| p.raw());
        w.seq_with(&frames, |w, (page, frame)| {
            page.save(w);
            w.u64(frame.slot);
            w.u64(frame.dirty_mask);
        });
        w.seq(self.fifo.iter());
        w.seq(self.free_slots.iter());
        self.demand.save(w);
        self.footprint.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let capacity_pages = r.u64()?;
        if capacity_pages != self.capacity_pages {
            return Err(SnapshotError::Corrupt(format!(
                "tdc image capacity {capacity_pages} pages != controller {}",
                self.capacity_pages
            )));
        }
        self.fills = r.u64()?;
        self.evictions = r.u64()?;
        self.map_probes = r.u64()?;
        self.map_updates = r.u64()?;
        let frame_count = r.seq_len(24)?;
        self.frames.clear();
        for _ in 0..frame_count {
            let page = PageNum::restore(r)?;
            let frame = Frame {
                slot: r.u64()?,
                dirty_mask: r.u64()?,
            };
            if frame.slot >= self.capacity_pages {
                return Err(SnapshotError::Corrupt(format!(
                    "tdc frame slot {} out of range",
                    frame.slot
                )));
            }
            if self.frames.insert(page, frame).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate tdc frame for page {}",
                    page.raw()
                )));
            }
        }
        let fifo_len = r.seq_len(8)?;
        if fifo_len != frame_count {
            return Err(SnapshotError::Corrupt(format!(
                "tdc fifo holds {fifo_len} pages but the map holds {frame_count}"
            )));
        }
        self.fifo.clear();
        for _ in 0..fifo_len {
            let page = PageNum::restore(r)?;
            if !self.frames.contains_key(&page) {
                return Err(SnapshotError::Corrupt(format!(
                    "tdc fifo page {} missing from the frame map",
                    page.raw()
                )));
            }
            self.fifo.push_back(page);
        }
        let free_len = r.seq_len(8)?;
        if free_len as u64 + frame_count as u64 != self.capacity_pages {
            return Err(SnapshotError::Corrupt(format!(
                "tdc free slots ({free_len}) + resident pages ({frame_count}) \
                 != capacity ({})",
                self.capacity_pages
            )));
        }
        self.free_slots.clear();
        for _ in 0..free_len {
            let slot = r.u64()?;
            if slot >= self.capacity_pages {
                return Err(SnapshotError::Corrupt(format!(
                    "tdc free slot {slot} out of range"
                )));
            }
            self.free_slots.push(slot);
        }
        self.demand = DemandStats::restore(r)?;
        let footprint = FootprintPredictor::restore(r)?;
        if footprint.backend() != self.footprint.backend() {
            return Err(SnapshotError::Corrupt(format!(
                "tdc image tracks footprints with `{}`, this configuration expects `{}`",
                footprint.backend().label(),
                self.footprint.backend().label()
            )));
        }
        self.footprint = footprint;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{DramKind, MemSize};

    fn tiny() -> DCacheConfig {
        DCacheConfig {
            capacity: MemSize::kib(16), // 4 pages
            ..DCacheConfig::paper_default()
        }
    }

    #[test]
    fn hit_is_tagless_64_bytes() {
        let mut c = Tdc::new(&tiny());
        let addr = Addr::new(0x3000);
        c.access_collected(&MemRequest::demand(addr, 0), 0);
        let hit = c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(hit.dram_cache_hit);
        assert_eq!(hit.bytes_on(DramKind::InPackage), 64);
        assert_eq!(
            hit.bytes_of_class(TrafficClass::Tag),
            0,
            "TDC has no tag traffic"
        );
    }

    #[test]
    fn miss_critical_path_is_map_probe_then_off_package_fetch() {
        let mut c = Tdc::new(&tiny());
        let miss = c.access_collected(&MemRequest::demand(Addr::new(0x5000), 0), 0);
        assert_eq!(miss.critical.len(), 2);
        // The in-DRAM map is consulted before the demand fetch.
        assert_eq!(miss.critical[0].dram, DramKind::InPackage);
        assert_eq!(miss.critical[0].class, TrafficClass::Tag);
        assert_eq!(miss.critical[0].bytes, 32);
        assert_eq!(miss.critical[1].dram, DramKind::OffPackage);
        assert_eq!(miss.critical[1].bytes, 64);
        // Installing the mapping costs a background map write.
        assert!(miss
            .background
            .iter()
            .any(|op| op.class == TrafficClass::Tag && op.write));
    }

    #[test]
    fn fully_associative_no_conflict_misses() {
        // 4-page capacity: any 4 distinct pages can coexist regardless of
        // their addresses (unlike a set-associative cache).
        let mut c = Tdc::new(&tiny());
        let pages = [0u64, 1 << 20, 2 << 20, 3 << 20];
        for &p in &pages {
            c.access_collected(&MemRequest::demand(Addr::new(p), 0), 0);
        }
        for &p in &pages {
            assert!(
                c.access_collected(&MemRequest::demand(Addr::new(p), 0), 0)
                    .dram_cache_hit
            );
        }
        assert_eq!(c.resident_pages(), 4);
    }

    #[test]
    fn fifo_evicts_oldest_even_if_recently_used() {
        let mut c = Tdc::new(&tiny());
        for p in 0..4u64 {
            c.access_collected(&MemRequest::demand(PageNum::new(p).base_addr(), 0), 0);
        }
        // Touch page 0 again (FIFO ignores recency), then insert a 5th page.
        c.access_collected(&MemRequest::demand(PageNum::new(0).base_addr(), 0), 0);
        c.access_collected(&MemRequest::demand(PageNum::new(9).base_addr(), 0), 0);
        assert!(
            !c.access_collected(&MemRequest::demand(PageNum::new(0).base_addr(), 0), 0)
                .dram_cache_hit,
            "FIFO must evict the oldest-inserted page"
        );
    }

    #[test]
    fn dirty_victim_written_back_on_eviction() {
        let mut c = Tdc::new(&tiny());
        c.access_collected(
            &MemRequest::demand(PageNum::new(0).base_addr(), 0).as_store(),
            0,
        );
        for p in 1..4u64 {
            c.access_collected(&MemRequest::demand(PageNum::new(p).base_addr(), 0), 0);
        }
        // Eviction of page 0 (dirty, 1 line) happens on the next miss.
        let plan = c.access_collected(&MemRequest::demand(PageNum::new(7).base_addr(), 0), 0);
        assert_eq!(plan.bytes_of_class(TrafficClass::Writeback), 64);
    }

    #[test]
    fn writeback_pays_a_map_probe_before_routing() {
        let mut c = Tdc::new(&tiny());
        let cached = Addr::new(0x2000);
        c.access_collected(&MemRequest::demand(cached, 0), 0);
        // Hint-less dirty eviction: 32 B map probe + 64 B data in-package.
        let wb_hit = c.access_collected(&MemRequest::writeback(cached, 0), 0);
        assert_eq!(wb_hit.bytes_on(DramKind::InPackage), 96);
        assert_eq!(wb_hit.bytes_of_class(TrafficClass::Tag), 32);
        // Uncached line: the probe still happens, the data goes off-package.
        let wb_miss = c.access_collected(&MemRequest::writeback(Addr::new(0xAB_0000), 0), 0);
        assert_eq!(wb_miss.bytes_on(DramKind::InPackage), 32);
        assert_eq!(wb_miss.bytes_on(DramKind::OffPackage), 64);
    }

    #[test]
    fn mapping_exposed_for_page_table() {
        let mut c = Tdc::new(&tiny());
        let addr = Addr::new(0x7000);
        assert_eq!(c.current_mapping(addr.page()), PteMapInfo::NOT_CACHED);
        c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(c.current_mapping(addr.page()).cached);
    }
}
