//! Alloy Cache: direct-mapped, cacheline-granularity, tags stored in the
//! in-package DRAM alongside the data (Qureshi & Loh, MICRO 2012), with the
//! BEAR bandwidth optimizations (Chou et al., ISCA 2015).
//!
//! Behaviour reproduced from the paper's Table 1 and Section 5.1.1:
//!
//! * **Hit**: one DRAM-cache access streams the tag-and-data (TAD) unit —
//!   96 B of in-package traffic (64 B data + 32 B tag), latency ≈ one DRAM
//!   access.
//! * **Miss**: the TAD probe still costs 96 B (the data half is the
//!   speculative load), then the demand line is fetched from off-package
//!   DRAM — latency ≈ 2× a DRAM access. The parallel off-package probe
//!   optimization of the original paper is disabled, as in the Banshee
//!   paper's methodology (it hurts when off-package bandwidth is scarce).
//! * **Fill (stochastic replacement from BEAR)**: the missed line is
//!   installed only with probability `fill_probability` (1.0 = "Alloy 1",
//!   0.1 = "Alloy 0.1"), costing 96 B of in-package replacement traffic
//!   (64 B data + 32 B tag) plus a 64 B off-package writeback if the victim
//!   was dirty.
//! * **LLC dirty eviction**: with BEAR's bandwidth-efficient writeback probe
//!   the controller knows whether the line is present; a hit writes
//!   64 B + 32 B tag in-package, a miss writes 64 B off-package.

use crate::controller::{DemandStats, DramCacheController};
use crate::design::DCacheConfig;
use crate::plan::{DramOp, MemRequest, PlanSink, RequestKind};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{
    Addr, Cycle, FastDivMod, FnvHashMap, LineAddr, StatSet, TrafficClass, XorShiftRng,
};

/// Every counter name [`AlloyCache::bump`] can record, used to re-intern the
/// `&'static str` keys when restoring a snapshot.
const STAT_KEYS: [&str; 6] = [
    "alloy_hits",
    "alloy_misses",
    "alloy_fills",
    "alloy_dirty_victim_writebacks",
    "alloy_writeback_hits",
    "alloy_writeback_misses",
];

/// Per-slot state of the direct-mapped cache.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    valid: bool,
    dirty: bool,
    tag: u64,
}

/// The Alloy Cache controller.
#[derive(Debug)]
pub struct AlloyCache {
    /// One slot per cache line the in-package DRAM can hold.
    slots: Vec<Slot>,
    slot_div: FastDivMod,
    /// Probability that a miss installs the line (BEAR stochastic fill).
    fill_probability: f64,
    demand: DemandStats,
    rng: XorShiftRng,
    stats: FnvHashMap<&'static str, u64>,
    name: String,
}

impl AlloyCache {
    /// Build an Alloy Cache over the given geometry. The cache is
    /// direct-mapped over `config.capacity_lines()` line slots; the paper's
    /// TAD layout means each slot actually occupies 72 B of DRAM, but the
    /// capacity difference is immaterial to the traffic/latency behaviour
    /// being modelled, so we keep the nominal line count.
    pub fn new(config: &DCacheConfig, fill_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fill_probability),
            "fill probability must be in [0, 1]"
        );
        let line_slots = config.capacity_lines().max(1) as usize;
        let name = if (fill_probability - 1.0).abs() < 1e-9 {
            "Alloy 1".to_string()
        } else {
            format!("Alloy {fill_probability}")
        };
        AlloyCache {
            slots: vec![Slot::default(); line_slots],
            slot_div: FastDivMod::new(line_slots as u64),
            fill_probability,
            demand: DemandStats::new(4096),
            rng: XorShiftRng::new(0xA110),
            stats: FnvHashMap::default(),
            name,
        }
    }

    #[inline]
    fn slot_index(&self, line: LineAddr) -> usize {
        self.slot_div.rem(line.raw()) as usize
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u64 {
        self.slot_div.div(line.raw())
    }

    /// Reconstruct the line address currently held in a slot.
    fn resident_line(&self, idx: usize) -> LineAddr {
        LineAddr::new(self.slots[idx].tag * self.slots.len() as u64 + idx as u64)
    }

    /// The in-package DRAM address of a slot's TAD unit. Slots are laid out
    /// contiguously so that consecutive lines land in the same DRAM row.
    fn slot_addr(&self, idx: usize) -> Addr {
        Addr::new(idx as u64 * 72)
    }

    fn bump(&mut self, key: &'static str) {
        *self.stats.entry(key).or_insert(0) += 1;
    }
}

impl DramCacheController for AlloyCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn access(&mut self, req: &MemRequest, _now: Cycle, sink: &mut PlanSink) {
        let line = req.addr.line();
        let idx = self.slot_index(line);
        let tag = self.tag_of(line);
        let tad_addr = self.slot_addr(idx);
        let hit = self.slots[idx].valid && self.slots[idx].tag == tag;

        match req.kind {
            RequestKind::DemandMiss => {
                self.demand.record(hit);
                if hit {
                    self.bump("alloy_hits");
                    if req.write {
                        self.slots[idx].dirty = true;
                    }
                    // One TAD stream: 64 B data + 32 B tag.
                    sink.then(DramOp::in_package(tad_addr, 64, TrafficClass::HitData))
                        .then(DramOp::in_package(tad_addr, 32, TrafficClass::Tag))
                        .hit();
                    return;
                }

                self.bump("alloy_misses");
                // Speculative TAD read (wasted data half) then off-package fetch.
                sink.then(DramOp::in_package(tad_addr, 64, TrafficClass::MissData))
                    .then(DramOp::in_package(tad_addr, 32, TrafficClass::Tag))
                    .then(DramOp::off_package(req.addr, 64, TrafficClass::MissData));

                // Stochastic fill (BEAR).
                if self.rng.chance(self.fill_probability) {
                    self.bump("alloy_fills");
                    let victim = self.slots[idx];
                    if victim.valid && victim.dirty {
                        self.bump("alloy_dirty_victim_writebacks");
                        let victim_line = self.resident_line(idx);
                        sink.also(DramOp::off_package_write(
                            victim_line.base_addr(),
                            64,
                            TrafficClass::Writeback,
                        ));
                    }
                    self.slots[idx] = Slot {
                        valid: true,
                        dirty: req.write,
                        tag,
                    };
                    // Fill writes the new TAD unit: 64 B data + 32 B tag.
                    sink.also(DramOp::in_package_write(
                        tad_addr,
                        64,
                        TrafficClass::Replacement,
                    ))
                    .also(DramOp::in_package_write(
                        tad_addr,
                        32,
                        TrafficClass::Replacement,
                    ));
                }
            }
            RequestKind::Writeback => {
                if hit {
                    self.bump("alloy_writeback_hits");
                    self.slots[idx].dirty = true;
                    sink.also(DramOp::in_package_write(
                        tad_addr,
                        64,
                        TrafficClass::Writeback,
                    ))
                    .also(DramOp::in_package_write(
                        tad_addr,
                        32,
                        TrafficClass::Tag,
                    ));
                } else {
                    self.bump("alloy_writeback_misses");
                    sink.also(DramOp::off_package_write(
                        req.addr,
                        64,
                        TrafficClass::Writeback,
                    ));
                }
            }
        }
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        for (k, v) in self.stats.iter() {
            s.add(k, *v);
        }
        s
    }

    fn telemetry_gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("recent_miss_rate", self.demand.recent_miss_rate()));
        out.push(("fill_probability", self.fill_probability));
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.usize(self.slots.len());
        w.seq_with(&self.slots, |w, s| {
            w.bool(s.valid);
            w.bool(s.dirty);
            w.u64(s.tag);
        });
        self.demand.save(w);
        self.rng.save(w);
        // The stats map is only read through the name-sorted StatSet, so a
        // sorted encoding is canonical.
        let mut stats: Vec<(&&'static str, &u64)> = self.stats.iter().collect();
        stats.sort_unstable_by_key(|(k, _)| **k);
        w.seq_with(&stats, |w, (k, v)| {
            w.str(k);
            w.u64(**v);
        });
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let slot_count = r.usize()?;
        if slot_count != self.slots.len() {
            return Err(SnapshotError::Corrupt(format!(
                "alloy image has {slot_count} slots, controller has {}",
                self.slots.len()
            )));
        }
        let len = r.seq_len(10)?;
        if len != slot_count {
            return Err(SnapshotError::Corrupt(format!(
                "alloy slot sequence length {len} != declared {slot_count}"
            )));
        }
        for i in 0..len {
            self.slots[i] = Slot {
                valid: r.bool()?,
                dirty: r.bool()?,
                tag: r.u64()?,
            };
        }
        self.demand = DemandStats::restore(r)?;
        self.rng = XorShiftRng::restore(r)?;
        self.stats.clear();
        let stats_len = r.seq_len(10)?;
        for _ in 0..stats_len {
            let key = r.string()?;
            let value = r.u64()?;
            let interned = STAT_KEYS
                .iter()
                .find(|k| **k == key)
                .copied()
                .ok_or_else(|| {
                    SnapshotError::Corrupt(format!("unknown alloy stat counter {key:?}"))
                })?;
            if self.stats.insert(interned, value).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate alloy stat counter {key:?}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{DramKind, MemSize};

    fn small_config() -> DCacheConfig {
        DCacheConfig::scaled(MemSize::kib(64)) // 1024 line slots
    }

    #[test]
    fn miss_then_hit_traffic_matches_table1() {
        let mut c = AlloyCache::new(&small_config(), 1.0);
        let addr = Addr::new(0x10_0000);
        // First access misses: 96 B in-package probe + 64 B off-package +
        // 96 B fill.
        let miss = c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(!miss.dram_cache_hit);
        assert_eq!(miss.bytes_on(DramKind::InPackage), 96 + 96);
        assert_eq!(miss.bytes_on(DramKind::OffPackage), 64);
        // Second access hits: exactly 96 B in-package, nothing off-package.
        let hit = c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(hit.dram_cache_hit);
        assert_eq!(hit.bytes_on(DramKind::InPackage), 96);
        assert_eq!(hit.bytes_on(DramKind::OffPackage), 0);
        assert_eq!(hit.critical.len(), 2);
    }

    #[test]
    fn stochastic_fill_skips_most_fills() {
        let cfg = small_config();
        let mut c = AlloyCache::new(&cfg, 0.1);
        // Stream many distinct lines that all miss.
        let mut fills = 0u64;
        let n = 5000u64;
        for i in 0..n {
            let addr = Addr::new(i * 64 + (1 << 30));
            let plan = c.access_collected(&MemRequest::demand(addr, 0), 0);
            if plan.bytes_of_class(TrafficClass::Replacement) > 0 {
                fills += 1;
            }
        }
        let fill_rate = fills as f64 / n as f64;
        assert!(
            (0.05..0.2).contains(&fill_rate),
            "expected ~10% fills, got {fill_rate}"
        );
    }

    #[test]
    fn always_fill_evicts_conflicting_line() {
        let cfg = small_config();
        let mut c = AlloyCache::new(&cfg, 1.0);
        let lines = cfg.capacity_lines();
        let a = Addr::new(0);
        let conflicting = Addr::new(lines * 64); // maps to the same slot
        c.access_collected(&MemRequest::demand(a, 0).as_store(), 0);
        assert_eq!(c.miss_rate(), 1.0);
        // The conflicting fill must write back the dirty victim off-package.
        let plan = c.access_collected(&MemRequest::demand(conflicting, 0), 0);
        assert_eq!(plan.bytes_of_class(TrafficClass::Writeback), 64);
        // And the original line is gone.
        let again = c.access_collected(&MemRequest::demand(a, 0), 0);
        assert!(!again.dram_cache_hit);
    }

    #[test]
    fn writeback_routing_depends_on_presence() {
        let cfg = small_config();
        let mut c = AlloyCache::new(&cfg, 1.0);
        let cached = Addr::new(0x4000);
        c.access_collected(&MemRequest::demand(cached, 0), 0);
        let wb_hit = c.access_collected(&MemRequest::writeback(cached, 0), 0);
        assert_eq!(wb_hit.bytes_on(DramKind::InPackage), 96);
        assert_eq!(wb_hit.bytes_on(DramKind::OffPackage), 0);

        let uncached = Addr::new(0x900_0000);
        let wb_miss = c.access_collected(&MemRequest::writeback(uncached, 0), 0);
        assert_eq!(wb_miss.bytes_on(DramKind::InPackage), 0);
        assert_eq!(wb_miss.bytes_on(DramKind::OffPackage), 64);
        // Writebacks never appear on the critical path.
        assert!(wb_hit.critical.is_empty() && wb_miss.critical.is_empty());
    }

    #[test]
    fn dirty_writeback_then_eviction_preserves_data() {
        let cfg = small_config();
        let mut c = AlloyCache::new(&cfg, 1.0);
        let lines = cfg.capacity_lines();
        let a = Addr::new(64);
        c.access_collected(&MemRequest::demand(a, 0), 0);
        c.access_collected(&MemRequest::writeback(a, 0), 0); // marks dirty
        let conflicting = Addr::new(lines * 64 + 64);
        let plan = c.access_collected(&MemRequest::demand(conflicting, 0), 0);
        assert_eq!(
            plan.bytes_of_class(TrafficClass::Writeback),
            64,
            "dirty victim must be written back"
        );
    }

    #[test]
    #[should_panic]
    fn invalid_fill_probability_rejected() {
        let _ = AlloyCache::new(&small_config(), 1.5);
    }
}
