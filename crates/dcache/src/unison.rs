//! Unison Cache: page-granularity, set-associative, LRU, tags in DRAM
//! (Jevdjic et al., MICRO 2014), evaluated as the Banshee paper does —
//! with perfect way prediction and perfect footprint prediction.
//!
//! Behaviour reproduced from Table 1 and Section 5.1.1:
//!
//! * **Hit** (way prediction correct): the controller reads the set's tags
//!   (32 B) and the data from the predicted way (64 B), and writes back the
//!   updated LRU bits (32 B) — "at least 128 B" of in-package traffic,
//!   latency ≈ one DRAM access.
//! * **Miss**: the tag read plus the speculatively-read way (96 B of
//!   in-package traffic) are wasted, then the demand line is fetched from
//!   off-package DRAM (≈ 2× latency).
//! * **Replacement on every miss**: the missed page is filled at footprint
//!   granularity (predicted footprint × 64 B read from off-package and
//!   written in-package, plus a 32 B tag update), and the victim page's
//!   dirty lines are read from the cache and written back off-package.
//! * **LLC dirty eviction**: a tag probe (32 B) decides whether the line is
//!   written in-package (64 B) or off-package (64 B).

use crate::controller::{DemandStats, DramCacheController};
use crate::design::DCacheConfig;
use crate::footprint::FootprintPredictor;
use crate::plan::{DramOp, MemRequest, PlanSink, RequestKind};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{
    Addr, Cycle, FastDivMod, PageNum, StatSet, TrafficClass, CACHE_LINE_SIZE, PAGE_SIZE,
};

/// One way of one page set.
#[derive(Debug, Clone, Copy, Default)]
struct PageWay {
    valid: bool,
    page: PageNum,
    /// Bitmask of dirty lines within the page.
    dirty_mask: u64,
    /// LRU timestamp.
    touched: u64,
}

/// The Unison Cache controller.
#[derive(Debug)]
pub struct UnisonCache {
    sets: Vec<Vec<PageWay>>,
    ways: usize,
    set_div: FastDivMod,
    clock: u64,
    demand: DemandStats,
    footprint: FootprintPredictor,
    fills: u64,
    dirty_lines_written_back: u64,
}

impl UnisonCache {
    /// Build a Unison Cache with the configured geometry (4-way by default).
    pub fn new(config: &DCacheConfig) -> Self {
        Self::with_backend(config, banshee_common::FrequencyBackendKind::Exact)
    }

    /// Build a Unison Cache whose footprint predictor tracks touched lines
    /// on the given frequency backend.
    pub fn with_backend(
        config: &DCacheConfig,
        backend: banshee_common::FrequencyBackendKind,
    ) -> Self {
        let sets = config.page_sets().max(1) as usize;
        UnisonCache {
            sets: vec![vec![PageWay::default(); config.ways]; sets],
            ways: config.ways,
            set_div: FastDivMod::new(sets as u64),
            clock: 0,
            demand: DemandStats::new(4096),
            footprint: FootprintPredictor::with_backend(config.footprint_granularity, backend),
            fills: 0,
            dirty_lines_written_back: 0,
        }
    }

    #[inline]
    fn set_index(&self, page: PageNum) -> usize {
        self.set_div.rem(page.raw()) as usize
    }

    /// In-package DRAM address where a cached page's data lives.
    fn data_addr(&self, set: usize, way: usize, offset: u64) -> Addr {
        Addr::new(((set * self.ways + way) as u64) * PAGE_SIZE + offset)
    }

    /// In-package DRAM address of a set's tag/metadata block (placed in a
    /// dedicated tag region after the data region, as in Figure 3's separate
    /// tag rows).
    fn tag_addr(&self, set: usize) -> Addr {
        let data_region = (self.sets.len() * self.ways) as u64 * PAGE_SIZE;
        Addr::new(data_region + set as u64 * 32)
    }

    fn find(&self, set: usize, page: PageNum) -> Option<usize> {
        self.sets[set]
            .iter()
            .position(|w| w.valid && w.page == page)
    }

    fn lru_way(&self, set: usize) -> usize {
        if let Some(idx) = self.sets[set].iter().position(|w| !w.valid) {
            return idx;
        }
        self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.touched)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl DramCacheController for UnisonCache {
    fn name(&self) -> &str {
        "Unison"
    }

    fn access(&mut self, req: &MemRequest, _now: Cycle, sink: &mut PlanSink) {
        self.clock += 1;
        let page = req.page();
        let set = self.set_index(page);
        let line_in_page = req.addr.line().index_in_page();
        let tag_addr = self.tag_addr(set);
        let resident = self.find(set, page);

        match req.kind {
            RequestKind::DemandMiss => {
                if let Some(way) = resident {
                    // ---- Hit path ----
                    self.demand.record(true);
                    self.footprint.on_access(page, line_in_page);
                    let data_addr = self.data_addr(set, way, req.addr.page_offset());
                    {
                        let w = &mut self.sets[set][way];
                        w.touched = self.clock;
                        if req.write {
                            w.dirty_mask |= 1 << line_in_page;
                        }
                    }
                    sink.then(DramOp::in_package(tag_addr, 32, TrafficClass::Tag))
                        .then(DramOp::in_package(data_addr, 64, TrafficClass::HitData))
                        .also(DramOp::in_package_write(tag_addr, 32, TrafficClass::Tag))
                        .hit();
                    return;
                }

                // ---- Miss path ----
                self.demand.record(false);
                let victim_way = self.lru_way(set);
                let spec_addr = self.data_addr(set, victim_way, req.addr.page_offset());
                sink.then(DramOp::in_package(tag_addr, 32, TrafficClass::Tag))
                    .then(DramOp::in_package(spec_addr, 64, TrafficClass::MissData))
                    .then(DramOp::off_package(req.addr, 64, TrafficClass::MissData));

                // Replacement happens on every miss (Table 1).
                let victim = self.sets[set][victim_way];
                if victim.valid {
                    let dirty_lines = u64::from(victim.dirty_mask.count_ones());
                    if dirty_lines > 0 {
                        self.dirty_lines_written_back += dirty_lines;
                        let victim_addr = self.data_addr(set, victim_way, 0);
                        sink.also(DramOp::in_package(
                            victim_addr,
                            dirty_lines * CACHE_LINE_SIZE,
                            TrafficClass::Replacement,
                        ))
                        .also(DramOp::off_package_write(
                            victim.page.base_addr(),
                            dirty_lines * CACHE_LINE_SIZE,
                            TrafficClass::Writeback,
                        ));
                    }
                    self.footprint.on_evict(victim.page);
                }

                // Fill the new page at footprint granularity.
                self.fills += 1;
                let fp_bytes = self.footprint.predicted_bytes();
                self.footprint.on_fill(page, line_in_page);
                let fill_addr = self.data_addr(set, victim_way, 0);
                sink.also(DramOp::off_package(
                    page.base_addr(),
                    fp_bytes,
                    TrafficClass::Replacement,
                ))
                .also(DramOp::in_package_write(
                    fill_addr,
                    fp_bytes,
                    TrafficClass::Replacement,
                ))
                .also(DramOp::in_package_write(tag_addr, 32, TrafficClass::Tag));

                self.sets[set][victim_way] = PageWay {
                    valid: true,
                    page,
                    dirty_mask: if req.write { 1 << line_in_page } else { 0 },
                    touched: self.clock,
                };
            }
            RequestKind::Writeback => {
                // Tag probe to find the line, then write it where it lives.
                sink.also(DramOp::in_package(tag_addr, 32, TrafficClass::Tag));
                if let Some(way) = resident {
                    let data_addr = self.data_addr(set, way, req.addr.page_offset());
                    self.sets[set][way].dirty_mask |= 1 << line_in_page;
                    sink.also(DramOp::in_package_write(
                        data_addr,
                        64,
                        TrafficClass::Writeback,
                    ));
                } else {
                    sink.also(DramOp::off_package_write(
                        req.addr,
                        64,
                        TrafficClass::Writeback,
                    ));
                }
            }
        }
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.add("unison_fills", self.fills);
        s.add(
            "unison_dirty_lines_written_back",
            self.dirty_lines_written_back,
        );
        s.add(
            "unison_mean_footprint_lines",
            self.footprint.mean_footprint().round() as u64,
        );
        s
    }

    fn telemetry_gauges(&self, out: &mut Vec<(&'static str, f64)>) {
        out.push(("recent_miss_rate", self.demand.recent_miss_rate()));
        out.push(("fills", self.fills as f64));
        out.push(("mean_footprint_lines", self.footprint.mean_footprint()));
        self.footprint.tracker_gauges(out);
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.usize(self.sets.len());
        w.usize(self.ways);
        w.u64(self.clock);
        w.u64(self.fills);
        w.u64(self.dirty_lines_written_back);
        w.seq_with(&self.sets, |w, set| {
            w.seq_with(set, |w, way| {
                w.bool(way.valid);
                way.page.save(w);
                w.u64(way.dirty_mask);
                w.u64(way.touched);
            });
        });
        self.demand.save(w);
        self.footprint.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let sets = r.usize()?;
        let ways = r.usize()?;
        if sets != self.sets.len() || ways != self.ways {
            return Err(SnapshotError::Corrupt(format!(
                "unison image geometry {sets}x{ways} != controller {}x{}",
                self.sets.len(),
                self.ways
            )));
        }
        self.clock = r.u64()?;
        self.fills = r.u64()?;
        self.dirty_lines_written_back = r.u64()?;
        let outer = r.seq_len(8)?;
        if outer != sets {
            return Err(SnapshotError::Corrupt(format!(
                "unison set sequence length {outer} != declared {sets}"
            )));
        }
        for set in self.sets.iter_mut() {
            let inner = r.seq_len(25)?;
            if inner != ways {
                return Err(SnapshotError::Corrupt(format!(
                    "unison way sequence length {inner} != declared {ways}"
                )));
            }
            for way in set.iter_mut() {
                *way = PageWay {
                    valid: r.bool()?,
                    page: PageNum::restore(r)?,
                    dirty_mask: r.u64()?,
                    touched: r.u64()?,
                };
            }
        }
        self.demand = DemandStats::restore(r)?;
        let footprint = FootprintPredictor::restore(r)?;
        if footprint.backend() != self.footprint.backend() {
            return Err(SnapshotError::Corrupt(format!(
                "unison image tracks footprints with `{}`, this configuration expects `{}`",
                footprint.backend().label(),
                self.footprint.backend().label()
            )));
        }
        self.footprint = footprint;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{DramKind, MemSize};

    fn cfg() -> DCacheConfig {
        DCacheConfig::scaled(MemSize::mib(1)) // 256 pages, 64 sets x 4 ways
    }

    #[test]
    fn hit_traffic_is_at_least_128_bytes() {
        let mut c = UnisonCache::new(&cfg());
        let addr = Addr::new(0x8000);
        c.access_collected(&MemRequest::demand(addr, 0), 0);
        let hit = c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(hit.dram_cache_hit);
        assert_eq!(hit.bytes_on(DramKind::InPackage), 128);
        assert_eq!(hit.bytes_on(DramKind::OffPackage), 0);
    }

    #[test]
    fn miss_replaces_on_every_miss() {
        let mut c = UnisonCache::new(&cfg());
        let addr = Addr::new(0x10_0000);
        let miss = c.access_collected(&MemRequest::demand(addr, 0), 0);
        assert!(!miss.dram_cache_hit);
        // Critical path: tag + speculative way + off-package demand.
        assert_eq!(miss.critical.len(), 3);
        // Cold predictor: full-page footprint fetched from off-package.
        assert_eq!(miss.bytes_of_class(TrafficClass::Replacement), 4096 * 2);
    }

    #[test]
    fn footprint_shrinks_replacement_traffic() {
        let cfg = cfg();
        let mut c = UnisonCache::new(&cfg);
        // Touch exactly 2 lines per page, cycling through enough pages to
        // evict and re-fill many times within the same sets.
        let sets = cfg.page_sets();
        for round in 0..8u64 {
            for i in 0..(sets * 8) {
                let page = PageNum::new(round * 100_000 + i);
                c.access_collected(&MemRequest::demand(page.line_at(0).base_addr(), 0), 0);
                c.access_collected(&MemRequest::demand(page.line_at(1).base_addr(), 0), 0);
            }
        }
        // After training, a fresh miss should fetch far less than a page.
        let plan = c.access_collected(&MemRequest::demand(Addr::new(0xDEAD_0000), 0), 0);
        let repl = plan.bytes_of_class(TrafficClass::Replacement);
        assert!(
            repl <= 2 * 8 * CACHE_LINE_SIZE,
            "footprint not learned, replacement bytes = {repl}"
        );
    }

    #[test]
    fn dirty_victim_lines_written_back() {
        let cfg = DCacheConfig {
            capacity: MemSize::kib(16), // 4 pages = 1 set x 4 ways
            ..DCacheConfig::paper_default()
        };
        let mut c = UnisonCache::new(&cfg);
        // Fill all 4 ways of set 0 with dirty lines.
        for p in 0..4u64 {
            let page = PageNum::new(p);
            c.access_collected(&MemRequest::demand(page.base_addr(), 0).as_store(), 0);
        }
        // A 5th page evicts the LRU victim (page 0, one dirty line).
        let plan = c.access_collected(&MemRequest::demand(PageNum::new(10).base_addr(), 0), 0);
        assert_eq!(plan.bytes_of_class(TrafficClass::Writeback), 64);
    }

    #[test]
    fn lru_keeps_recently_used_pages() {
        let cfg = DCacheConfig {
            capacity: MemSize::kib(16),
            ..DCacheConfig::paper_default()
        };
        let mut c = UnisonCache::new(&cfg);
        for p in 0..4u64 {
            c.access_collected(&MemRequest::demand(PageNum::new(p).base_addr(), 0), 0);
        }
        // Re-touch page 0 so page 1 becomes LRU, then insert page 5.
        c.access_collected(&MemRequest::demand(PageNum::new(0).base_addr(), 0), 0);
        c.access_collected(&MemRequest::demand(PageNum::new(5).base_addr(), 0), 0);
        // Page 0 still hits, page 1 misses.
        assert!(
            c.access_collected(&MemRequest::demand(PageNum::new(0).base_addr(), 0), 0)
                .dram_cache_hit
        );
        assert!(
            !c.access_collected(&MemRequest::demand(PageNum::new(1).base_addr(), 0), 0)
                .dram_cache_hit
        );
    }

    #[test]
    fn writeback_probe_routes_by_presence() {
        let mut c = UnisonCache::new(&cfg());
        let cached = Addr::new(0x4000);
        c.access_collected(&MemRequest::demand(cached, 0), 0);
        let wb_hit = c.access_collected(&MemRequest::writeback(cached, 0), 0);
        assert_eq!(wb_hit.bytes_on(DramKind::InPackage), 96); // probe + data
        assert_eq!(wb_hit.bytes_on(DramKind::OffPackage), 0);

        let wb_miss = c.access_collected(&MemRequest::writeback(Addr::new(0xF00_0000), 0), 0);
        assert_eq!(wb_miss.bytes_on(DramKind::InPackage), 32); // probe only
        assert_eq!(wb_miss.bytes_on(DramKind::OffPackage), 64);
    }
}
