//! Requests into a memory controller and the access plans that come out.

use banshee_common::{Addr, Cycle, DramKind, PageNum, TrafficClass};
use banshee_memhier::PteMapInfo;
use serde::{Deserialize, Serialize};

/// What kind of request reached the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// An LLC demand miss (read or write-allocate) — the core is waiting for
    /// this data.
    DemandMiss,
    /// An LLC dirty eviction — nobody waits, but the data must land in the
    /// right DRAM. These requests carry **no** TLB mapping hint (Section 3.3),
    /// which is why tag-based probing or the tag buffer is needed for them.
    Writeback,
}

/// One request from the LLC to a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Physical address of the 64-byte line.
    pub addr: Addr,
    /// Demand miss or dirty eviction.
    pub kind: RequestKind,
    /// True when the demand access is a store (the filled line becomes dirty).
    pub write: bool,
    /// Core that issued the access (used for charging OS work).
    pub core: usize,
    /// Mapping hint carried from the TLB (cached bit + way bits). `None` for
    /// dirty evictions and for designs that do not use PTE/TLB mapping.
    /// The hint may be **stale**; PTE/TLB-based designs must handle that.
    pub map_hint: Option<PteMapInfo>,
    /// True when the access falls in a 2 MiB large-page mapping.
    pub large_page: bool,
}

impl MemRequest {
    /// Convenience constructor for a demand read with no mapping hint.
    pub fn demand(addr: Addr, core: usize) -> Self {
        MemRequest {
            addr,
            kind: RequestKind::DemandMiss,
            write: false,
            core,
            map_hint: None,
            large_page: false,
        }
    }

    /// Convenience constructor for an LLC dirty eviction.
    pub fn writeback(addr: Addr, core: usize) -> Self {
        MemRequest {
            addr,
            kind: RequestKind::Writeback,
            write: true,
            core,
            map_hint: None,
            large_page: false,
        }
    }

    /// Attach a TLB mapping hint.
    pub fn with_hint(mut self, hint: PteMapInfo) -> Self {
        self.map_hint = Some(hint);
        self
    }

    /// Mark the access as a store.
    pub fn as_store(mut self) -> Self {
        self.write = true;
        self
    }

    /// Mark the access as belonging to a large page.
    pub fn on_large_page(mut self) -> Self {
        self.large_page = true;
        self
    }

    /// The 4 KiB page of this request.
    pub fn page(&self) -> PageNum {
        self.addr.page()
    }
}

/// One DRAM operation the memory controller must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramOp {
    /// Which DRAM the operation targets.
    pub dram: DramKind,
    /// Address used for channel/bank/row mapping.
    pub addr: Addr,
    /// Payload size in bytes (rounded up to the link's minimum transfer by
    /// the DRAM model).
    pub bytes: u64,
    /// What the bytes are moved for (drives the Figure 5/6/9 breakdowns).
    pub class: TrafficClass,
    /// Direction: `true` moves data *into* the DRAM (fills, writebacks,
    /// metadata updates), which the device may post into its write queue;
    /// `false` is a read the requester's timing depends on.
    pub write: bool,
}

impl DramOp {
    /// A read from the in-package DRAM.
    pub fn in_package(addr: Addr, bytes: u64, class: TrafficClass) -> Self {
        DramOp {
            dram: DramKind::InPackage,
            addr,
            bytes,
            class,
            write: false,
        }
    }

    /// A write into the in-package DRAM.
    pub fn in_package_write(addr: Addr, bytes: u64, class: TrafficClass) -> Self {
        DramOp {
            write: true,
            ..Self::in_package(addr, bytes, class)
        }
    }

    /// A read from the off-package DRAM.
    pub fn off_package(addr: Addr, bytes: u64, class: TrafficClass) -> Self {
        DramOp {
            dram: DramKind::OffPackage,
            addr,
            bytes,
            class,
            write: false,
        }
    }

    /// A write into the off-package DRAM.
    pub fn off_package_write(addr: Addr, bytes: u64, class: TrafficClass) -> Self {
        DramOp {
            write: true,
            ..Self::off_package(addr, bytes, class)
        }
    }
}

/// OS-level side effects a design can request; the system simulator applies
/// them (charging core cycles, flushing TLBs or SRAM caches, updating PTEs).
#[derive(Debug, Clone, PartialEq)]
pub enum SideEffect {
    /// Run a software routine on one core for `cycles` cycles (e.g. the
    /// tag-buffer-full interrupt handler of Section 3.4, or HMA's periodic
    /// remapping routine).
    OsWork {
        /// Cycles of work charged to a single core.
        cycles: Cycle,
    },
    /// Stall every core for `cycles` cycles (HMA stops all programs while it
    /// migrates pages).
    StallAllCores {
        /// Cycles during which no core makes progress.
        cycles: Cycle,
    },
    /// Apply new mapping bits to every PTE of the given physical pages (via
    /// the reverse map) — the batched page-table update of Section 3.4.
    UpdatePageTable {
        /// (physical page, new mapping) pairs to apply.
        updates: Vec<(PageNum, PteMapInfo)>,
    },
    /// System-wide TLB shootdown. The simulator flushes every TLB and charges
    /// the initiator/slave costs from Table 3.
    TlbShootdown,
    /// Flush every line of a physical page from the on-chip SRAM caches
    /// (the address-consistency scrub NUMA-style designs need). Dirty lines
    /// are written back to the DRAM currently holding the page.
    FlushPage {
        /// Page to scrub from the SRAM hierarchy.
        page: PageNum,
    },
}

/// The memory-controller-level plan for servicing one request, written into
/// a **reusable** sink instead of a freshly allocated return value.
///
/// The simulation loop services hundreds of millions of requests per figure;
/// allocating three `Vec`s per request dominated the profile. The `System`
/// therefore owns one `PlanSink`, calls [`PlanSink::reset`] before handing it
/// to [`DramCacheController::access`](crate::DramCacheController::access),
/// and the design appends its DRAM operations and side effects in place. The
/// backing allocations are reused across requests, so the steady-state access
/// path performs no heap allocation at all.
///
/// Ops appended with [`PlanSink::then`] form the critical path (the requester
/// waits for them, executed in order); ops appended with [`PlanSink::also`]
/// are background traffic issued once the critical path resolves.
#[derive(Debug, Clone, Default)]
pub struct PlanSink {
    /// Operations the requester waits for, executed in order (each starts
    /// when the previous finishes — e.g. a tag probe followed by the
    /// off-package fetch it missed on).
    pub critical: Vec<DramOp>,
    /// Operations that only consume bandwidth (fills, evictions, metadata
    /// updates). Issued when the critical path completes.
    pub background: Vec<DramOp>,
    /// Extra fixed latency on the critical path not tied to a DRAM access
    /// (e.g. way-predictor or SRAM structure lookups).
    pub extra_latency: Cycle,
    /// OS side effects to apply after this access.
    pub side_effects: Vec<SideEffect>,
    /// Whether the access was serviced by the in-package DRAM (drives the
    /// DRAM-cache miss-rate / MPKI statistics). Meaningless for writebacks.
    pub dram_cache_hit: bool,
}

impl PlanSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        PlanSink::default()
    }

    /// Clear the sink for the next request, keeping the backing allocations.
    #[inline]
    pub fn reset(&mut self) {
        self.critical.clear();
        self.background.clear();
        self.side_effects.clear();
        self.extra_latency = 0;
        self.dram_cache_hit = false;
    }

    /// Append a critical-path operation.
    #[inline]
    pub fn then(&mut self, op: DramOp) -> &mut Self {
        self.critical.push(op);
        self
    }

    /// Append a background operation.
    #[inline]
    pub fn also(&mut self, op: DramOp) -> &mut Self {
        self.background.push(op);
        self
    }

    /// Record a side effect.
    pub fn with_side_effect(&mut self, effect: SideEffect) -> &mut Self {
        self.side_effects.push(effect);
        self
    }

    /// Mark the plan as a DRAM-cache hit.
    #[inline]
    pub fn hit(&mut self) -> &mut Self {
        self.dram_cache_hit = true;
        self
    }

    /// True when the sink holds no operations, side effects or latency.
    pub fn is_empty(&self) -> bool {
        self.critical.is_empty()
            && self.background.is_empty()
            && self.side_effects.is_empty()
            && self.extra_latency == 0
    }

    /// Total bytes this plan moves on the given DRAM (before min-transfer
    /// rounding).
    pub fn bytes_on(&self, dram: DramKind) -> u64 {
        self.critical
            .iter()
            .chain(self.background.iter())
            .filter(|op| op.dram == dram)
            .map(|op| op.bytes)
            .sum()
    }

    /// Total bytes of a given traffic class across both DRAMs.
    pub fn bytes_of_class(&self, class: TrafficClass) -> u64 {
        self.critical
            .iter()
            .chain(self.background.iter())
            .filter(|op| op.class == class)
            .map(|op| op.bytes)
            .sum()
    }

    /// Number of DRAM operations (critical + background).
    pub fn op_count(&self) -> usize {
        self.critical.len() + self.background.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders() {
        let d = MemRequest::demand(Addr::new(0x1000), 3)
            .with_hint(PteMapInfo::cached_in(2))
            .as_store()
            .on_large_page();
        assert_eq!(d.kind, RequestKind::DemandMiss);
        assert!(d.write && d.large_page);
        assert_eq!(d.core, 3);
        assert_eq!(d.map_hint, Some(PteMapInfo::cached_in(2)));
        assert_eq!(d.page(), PageNum::new(1));

        let w = MemRequest::writeback(Addr::new(0x2000), 0);
        assert_eq!(w.kind, RequestKind::Writeback);
        assert!(w.write);
        assert!(w.map_hint.is_none());
    }

    #[test]
    fn plan_builder_accumulates() {
        let mut plan = PlanSink::new();
        plan.then(DramOp::in_package(Addr::new(0), 64, TrafficClass::HitData))
            .then(DramOp::in_package(Addr::new(0), 32, TrafficClass::Tag))
            .also(DramOp::off_package(
                Addr::new(0),
                64,
                TrafficClass::Writeback,
            ))
            .hit();
        assert_eq!(plan.critical.len(), 2);
        assert_eq!(plan.background.len(), 1);
        assert!(plan.dram_cache_hit);
        assert_eq!(plan.bytes_on(DramKind::InPackage), 96);
        assert_eq!(plan.bytes_on(DramKind::OffPackage), 64);
        assert_eq!(plan.bytes_of_class(TrafficClass::Tag), 32);
        assert_eq!(plan.op_count(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan_is_traffic_free() {
        let plan = PlanSink::new();
        assert_eq!(plan.bytes_on(DramKind::InPackage), 0);
        assert_eq!(plan.bytes_on(DramKind::OffPackage), 0);
        assert!(!plan.dram_cache_hit);
        assert_eq!(plan.op_count(), 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut plan = PlanSink::new();
        plan.then(DramOp::in_package(Addr::new(0), 64, TrafficClass::HitData))
            .also(DramOp::off_package(Addr::new(0), 64, TrafficClass::Tag))
            .with_side_effect(SideEffect::TlbShootdown)
            .hit();
        plan.extra_latency = 9;
        let critical_cap = plan.critical.capacity();
        plan.reset();
        assert!(plan.is_empty());
        assert!(!plan.dram_cache_hit);
        assert_eq!(plan.extra_latency, 0);
        assert_eq!(plan.critical.capacity(), critical_cap);
    }

    #[test]
    fn side_effects_recorded_in_order() {
        let mut plan = PlanSink::new();
        plan.with_side_effect(SideEffect::OsWork { cycles: 100 })
            .with_side_effect(SideEffect::TlbShootdown);
        assert_eq!(plan.side_effects.len(), 2);
        assert_eq!(plan.side_effects[0], SideEffect::OsWork { cycles: 100 });
        assert_eq!(plan.side_effects[1], SideEffect::TlbShootdown);
    }
}
