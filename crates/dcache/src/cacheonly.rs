//! The `CacheOnly` baseline: an idealized, infinite in-package DRAM.

use crate::controller::{DemandStats, DramCacheController};
use crate::plan::{DramOp, MemRequest, PlanSink, RequestKind};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{Cycle, StatSet, TrafficClass};

/// The system only contains in-package DRAM with infinite capacity
/// (Section 5.1.1). Every access is a hit; there is no off-package DRAM at
/// all, which also means no off-package bandwidth — the reason Banshee can
/// occasionally *beat* this configuration on bandwidth-bound workloads
/// (Section 5.2).
#[derive(Debug, Default)]
pub struct CacheOnly {
    demand: DemandStats,
}

impl CacheOnly {
    /// Create the idealized controller.
    pub fn new() -> Self {
        CacheOnly {
            demand: DemandStats::new(4096),
        }
    }
}

impl DramCacheController for CacheOnly {
    fn name(&self) -> &str {
        "CacheOnly"
    }

    fn access(&mut self, req: &MemRequest, _now: Cycle, sink: &mut PlanSink) {
        match req.kind {
            RequestKind::DemandMiss => {
                self.demand.record(true);
                sink.then(DramOp::in_package(
                    req.addr,
                    crate::LINE_BYTES,
                    TrafficClass::HitData,
                ))
                .hit();
            }
            RequestKind::Writeback => {
                sink.also(DramOp::in_package_write(
                    req.addr,
                    crate::LINE_BYTES,
                    TrafficClass::Writeback,
                ));
            }
        }
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        StatSet::new()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.demand.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.demand = DemandStats::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{Addr, DramKind};

    #[test]
    fn everything_hits_in_package() {
        let mut c = CacheOnly::new();
        let plan = c.access_collected(&MemRequest::demand(Addr::new(0xABC0), 1), 0);
        assert!(plan.dram_cache_hit);
        assert_eq!(plan.critical.len(), 1);
        assert_eq!(plan.critical[0].dram, DramKind::InPackage);
        assert_eq!(plan.critical[0].class, TrafficClass::HitData);
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn no_off_package_traffic_ever() {
        let mut c = CacheOnly::new();
        for i in 0..50u64 {
            let d = c.access_collected(&MemRequest::demand(Addr::new(i * 64), 0), 0);
            let w = c.access_collected(&MemRequest::writeback(Addr::new(i * 64), 0), 0);
            assert_eq!(d.bytes_on(DramKind::OffPackage), 0);
            assert_eq!(w.bytes_on(DramKind::OffPackage), 0);
        }
    }
}
