//! The `NoCache` baseline: every request goes to off-package DRAM.

use crate::controller::{DemandStats, DramCacheController};
use crate::plan::{DramOp, MemRequest, PlanSink, RequestKind};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{Cycle, StatSet, TrafficClass};

/// No DRAM cache at all — the system only has off-package DRAM. Figure 4
/// normalizes every other design's speedup to this baseline.
#[derive(Debug, Default)]
pub struct NoCache {
    demand: DemandStats,
}

impl NoCache {
    /// Create the baseline controller.
    pub fn new() -> Self {
        NoCache {
            demand: DemandStats::new(4096),
        }
    }
}

impl DramCacheController for NoCache {
    fn name(&self) -> &str {
        "NoCache"
    }

    fn access(&mut self, req: &MemRequest, _now: Cycle, sink: &mut PlanSink) {
        match req.kind {
            RequestKind::DemandMiss => {
                self.demand.record(false);
                sink.then(DramOp::off_package(
                    req.addr,
                    crate::LINE_BYTES,
                    TrafficClass::MissData,
                ));
            }
            RequestKind::Writeback => {
                sink.also(DramOp::off_package_write(
                    req.addr,
                    crate::LINE_BYTES,
                    TrafficClass::Writeback,
                ));
            }
        }
    }

    fn miss_rate(&self) -> f64 {
        self.demand.miss_rate()
    }

    fn demand_stats(&self) -> (u64, u64) {
        self.demand.totals()
    }

    fn stats(&self) -> StatSet {
        StatSet::new()
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.demand.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.demand = DemandStats::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{Addr, DramKind};

    #[test]
    fn demand_goes_off_package_on_critical_path() {
        let mut c = NoCache::new();
        let plan = c.access_collected(&MemRequest::demand(Addr::new(0x1000), 0), 0);
        assert_eq!(plan.critical.len(), 1);
        assert_eq!(plan.critical[0].dram, DramKind::OffPackage);
        assert_eq!(plan.critical[0].bytes, 64);
        assert!(!plan.dram_cache_hit);
        assert_eq!(c.miss_rate(), 1.0);
    }

    #[test]
    fn writeback_is_background_traffic() {
        let mut c = NoCache::new();
        let plan = c.access_collected(&MemRequest::writeback(Addr::new(0x2000), 0), 0);
        assert!(plan.critical.is_empty());
        assert_eq!(plan.background.len(), 1);
        assert_eq!(plan.background[0].class, TrafficClass::Writeback);
        // Writebacks do not count as demand accesses.
        assert_eq!(c.demand_stats(), (0, 0));
    }

    #[test]
    fn never_touches_in_package_dram() {
        let mut c = NoCache::new();
        for i in 0..100u64 {
            let plan = c.access_collected(&MemRequest::demand(Addr::new(i * 4096), 0), 0);
            assert_eq!(plan.bytes_on(DramKind::InPackage), 0);
        }
    }
}
