//! A scoped thread-pool job engine with deterministic result ordering.
//!
//! Workers pull job indices from a shared atomic counter, so the pool is a
//! classic work queue: long jobs do not block short ones, and the schedule
//! adapts to however the host's cores are loaded. Results are written back
//! into per-index slots, which makes the output order equal to the input
//! order no matter which worker finished first — the property the
//! experiment harness relies on for cell-for-cell reproducibility.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A job that panicked instead of producing a value.
#[derive(Debug, Clone)]
pub struct JobPanic {
    /// Index of the panicking job in the input list.
    pub index: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// What one job produced: its value (or captured panic) and how long it ran.
#[derive(Debug)]
pub struct JobOutput<T> {
    /// Wall-clock time the job spent executing.
    pub duration: Duration,
    /// The job's value, or the captured panic.
    pub result: Result<T, JobPanic>,
}

/// A progress event, delivered once per finished job (in completion order,
/// which is generally *not* input order).
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Index of the finished job in the input list.
    pub index: usize,
    /// How many jobs have finished so far (including this one).
    pub completed: usize,
    /// Total number of jobs in this batch.
    pub total: usize,
    /// Wall-clock time this job ran for.
    pub duration: Duration,
    /// True if the job panicked rather than returning.
    pub panicked: bool,
}

/// A fixed-width pool of scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// A pool with `workers` threads; `0` selects the host's available
    /// parallelism.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            Self::available_workers()
        } else {
            workers
        };
        JobPool { workers }
    }

    /// The host's available parallelism (at least 1).
    pub fn available_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Number of worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f` over every input and return the outputs **in input order**.
    ///
    /// Panics inside `f` are captured per job (see [`JobOutput::result`]);
    /// the rest of the batch still runs to completion.
    pub fn run<I, T, F>(&self, inputs: Vec<I>, f: F) -> Vec<JobOutput<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.run_with_progress(inputs, f, |_| {})
    }

    /// Like [`JobPool::run`], additionally invoking `on_complete` after each
    /// job finishes. The callback runs on worker threads (hence `Sync`) and
    /// must not panic.
    pub fn run_with_progress<I, T, F, C>(
        &self,
        inputs: Vec<I>,
        f: F,
        on_complete: C,
    ) -> Vec<JobOutput<T>>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        C: Fn(Completion) + Sync,
    {
        let total = inputs.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(total).max(1);
        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        // Serializes count-increment + callback so `completed` values are
        // delivered monotonically (a caller may treat `completed == total`
        // as the batch-done signal).
        let completion_order = Mutex::new(());
        let slots: Vec<Mutex<Option<JobOutput<T>>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let inputs = &inputs;
        let f = &f;
        let on_complete = &on_complete;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let start = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(index, &inputs[index])));
                    let duration = start.elapsed();
                    let panicked = outcome.is_err();
                    let result = outcome.map_err(|payload| JobPanic {
                        index,
                        message: panic_message(payload),
                    });
                    *slots[index].lock().unwrap() = Some(JobOutput { duration, result });
                    let _ordered = completion_order.lock().unwrap();
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    on_complete(Completion {
                        index,
                        completed: done,
                        total,
                        duration,
                        panicked,
                    });
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every job slot is filled once the scope joins")
            })
            .collect()
    }
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::new(0)
    }
}

/// Render a panic payload (usually `&str` or `String`) as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Later jobs finish first (they sleep less), so completion order is
        // the reverse of input order — outputs must still line up.
        let inputs: Vec<u64> = (0..8).collect();
        let pool = JobPool::new(4);
        let outputs = pool.run(inputs.clone(), |_, &n| {
            std::thread::sleep(Duration::from_millis(8 * (8 - n)));
            n * 10
        });
        let values: Vec<u64> = outputs
            .into_iter()
            .map(|o| o.result.expect("no panics"))
            .collect();
        assert_eq!(values, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn panics_are_captured_per_job() {
        let pool = JobPool::new(2);
        let outputs = pool.run(vec![1u32, 2, 3, 4], |_, &n| {
            if n == 3 {
                panic!("boom on {n}");
            }
            n + 100
        });
        assert_eq!(outputs.len(), 4);
        assert_eq!(*outputs[0].result.as_ref().unwrap(), 101);
        assert_eq!(*outputs[1].result.as_ref().unwrap(), 102);
        let err = outputs[2].result.as_ref().unwrap_err();
        assert_eq!(err.index, 2);
        assert!(err.message.contains("boom on 3"), "{}", err.message);
        assert_eq!(*outputs[3].result.as_ref().unwrap(), 104);
    }

    #[test]
    fn progress_reports_every_completion() {
        let seen = Mutex::new(Vec::new());
        let pool = JobPool::new(3);
        let outputs = pool.run_with_progress(
            (0..5).collect::<Vec<u32>>(),
            |_, &n| n,
            |c| seen.lock().unwrap().push((c.index, c.completed, c.total)),
        );
        assert_eq!(outputs.len(), 5);
        let mut events = seen.into_inner().unwrap();
        assert_eq!(events.len(), 5);
        // Every job reported exactly once, with a consistent total.
        events.sort_by_key(|&(index, _, _)| index);
        assert_eq!(
            events.iter().map(|&(i, _, _)| i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(events.iter().all(|&(_, _, total)| total == 5));
        let mut counts: Vec<usize> = events.iter().map(|&(_, c, _)| c).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_jobs_and_worker_clamping() {
        let pool = JobPool::new(0);
        assert!(pool.workers() >= 1);
        let outputs: Vec<JobOutput<u32>> = pool.run(Vec::<u32>::new(), |_, &n| n);
        assert!(outputs.is_empty());
        // More workers than jobs is fine.
        let wide = JobPool::new(64);
        let outputs = wide.run(vec![7u32], |_, &n| n);
        assert_eq!(*outputs[0].result.as_ref().unwrap(), 7);
    }

    #[test]
    fn durations_are_recorded() {
        let pool = JobPool::new(1);
        let outputs = pool.run(vec![()], |_, _| {
            std::thread::sleep(Duration::from_millis(5));
        });
        assert!(outputs[0].duration >= Duration::from_millis(4));
    }
}
