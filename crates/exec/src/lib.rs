//! The experiment-execution engine.
//!
//! The paper's evidence is an experiment matrix (designs × workloads ×
//! scales); every cell is an independent, deterministic simulation, so the
//! matrix is embarrassingly parallel. This crate supplies the two pieces the
//! harness needs to exploit that:
//!
//! * [`JobPool`] — a dependency-free, `std::thread::scope`-based job engine
//!   that fans a list of jobs across `N` workers. Results come back in
//!   **input order** regardless of completion order, per-job panics are
//!   captured instead of tearing down the sweep, and a progress callback
//!   reports each completion.
//! * [`ResultStore`] — a persistent, content-addressed result cache. Each
//!   job's key material (a canonical description of everything that affects
//!   its outcome) is hashed to a file under the store directory; re-runs and
//!   interrupted sweeps resume by skipping completed cells. Corrupted or
//!   mismatching entries are treated as misses and recomputed.
//!
//! `banshee_bench` builds its `Runner` on top of both; see the `--jobs` and
//! `--no-store` flags of the `experiments` binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pool;
pub mod store;

pub use pool::{Completion, JobOutput, JobPanic, JobPool};
pub use store::{fnv1a64, ResultStore, STORE_FORMAT};
