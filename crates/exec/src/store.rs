//! A persistent, content-addressed result store.
//!
//! Each cached result is keyed by its *key material*: a canonical string
//! describing everything that affects the result (for the experiment
//! harness, the simulation config, workload, scale and seed). The material
//! is FNV-1a-hashed into the entry's file name, and stored verbatim inside
//! the entry so a hash collision or a stale file can never return the wrong
//! payload — any mismatch, parse failure or I/O error is simply a miss, and
//! the caller recomputes.
//!
//! Entries are written to a temporary file and renamed into place, so a
//! sweep killed mid-write leaves no corrupt entry behind and the next run
//! resumes from every cell that completed.

use banshee_common::SnapshotHeader;
use serde::Value;
use std::io;
use std::path::{Path, PathBuf};

/// Version stamp embedded in every entry; bump to invalidate old stores
/// wholesale when the entry layout changes.
pub const STORE_FORMAT: u64 = 1;

/// 64-bit FNV-1a hash, used to derive entry file names from key material
/// (the workspace-wide implementation, shared with `banshee_common`'s
/// hot-path hash maps; re-exported here for backwards compatibility).
pub use banshee_common::hash::fnv1a64;

/// A directory of cached results, one JSON entry per key.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// Temp files orphaned by a previously killed writer are swept on open.
    /// (A concurrent writer's in-flight temp file could be swept too; its
    /// rename then fails and that cell is simply recomputed on the next
    /// run — the store never serves a bad entry either way.)
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.filter_map(|e| e.ok()) {
                let path = entry.path();
                if path.extension().and_then(|x| x.to_str()) == Some("tmp") {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for `key_material` lives at.
    pub fn entry_path(&self, key_material: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", fnv1a64(key_material.as_bytes())))
    }

    /// Fetch the payload cached for `key_material`, or `None` on a miss.
    ///
    /// Unreadable, unparsable, wrong-format and wrong-key entries all count
    /// as misses — the caller recomputes and [`ResultStore::put`] overwrites
    /// the bad entry.
    pub fn get(&self, key_material: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.entry_path(key_material)).ok()?;
        let entry = serde_json::parse_value(&text).ok()?;
        let format = entry.field("format").ok()?;
        if *format != Value::UInt(STORE_FORMAT) {
            return None;
        }
        let key = entry.field("key").ok()?;
        if *key != Value::Str(key_material.to_string()) {
            return None;
        }
        entry.field("payload").ok().cloned()
    }

    /// True if a valid entry for `key_material` exists.
    pub fn contains(&self, key_material: &str) -> bool {
        self.get(key_material).is_some()
    }

    /// Fetch and decode the payload cached for `key_material`. A payload
    /// that no longer decodes as `T` (e.g. after a result-shape change
    /// that forgot a key-material change) counts as a miss and is
    /// recomputed, like every other invalid entry.
    pub fn get_decoded<T: for<'de> serde::Deserialize<'de>>(
        &self,
        key_material: &str,
    ) -> Option<T> {
        let value = self.get(key_material)?;
        T::deserialize_value(&value).ok()
    }

    /// Encode and cache `payload` for `key_material` (the typed face of
    /// [`ResultStore::put`]; experiment and scenario cells both store
    /// their `SimResult` through this).
    pub fn put_encoded<T: serde::Serialize>(
        &self,
        key_material: &str,
        payload: &T,
    ) -> io::Result<PathBuf> {
        self.put(key_material, &payload.to_value())
    }

    /// Cache `payload` for `key_material`, replacing any previous entry.
    pub fn put(&self, key_material: &str, payload: &Value) -> io::Result<PathBuf> {
        let entry = Value::Object(vec![
            ("format".to_string(), Value::UInt(STORE_FORMAT)),
            ("key".to_string(), Value::Str(key_material.to_string())),
            ("payload".to_string(), payload.clone()),
        ]);
        let text = serde_json::to_string_pretty(&entry).map_err(io::Error::other)?;
        let path = self.entry_path(key_material);
        // Write-then-rename so interrupted writes never leave a torn entry.
        // The temp name carries pid + a process-wide counter so concurrent
        // puts (even of the same key) never share a temp file.
        static PUT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = PUT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            fnv1a64(key_material.as_bytes()),
            std::process::id(),
            seq
        ));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// The file a warmed-state snapshot for `key_material` lives at: a
    /// second content-addressed namespace (`snapshots/*.snap`) beside the
    /// JSON results, keyed the same way (FNV-1a of the material).
    pub fn snapshot_path(&self, key_material: &str) -> PathBuf {
        self.dir
            .join("snapshots")
            .join(format!("{:016x}.snap", fnv1a64(key_material.as_bytes())))
    }

    /// Fetch the warmed-state image stored for `key_material`, or `None` on
    /// a miss.
    ///
    /// The image's header is screened before it is returned: bad magic, an
    /// unknown format, a model revision other than `expected_revision` or a
    /// key hash that is not FNV-1a of `key_material` all count as misses —
    /// a stale or foreign image is recomputed, never resumed. (The caller's
    /// resume path re-validates and checks the body, so even a crafted
    /// header cannot smuggle in wrong state.)
    pub fn get_snapshot(&self, key_material: &str, expected_revision: u32) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.snapshot_path(key_material)).ok()?;
        let header = SnapshotHeader::peek(&bytes).ok()?;
        header
            .validate(expected_revision, fnv1a64(key_material.as_bytes()))
            .ok()?;
        Some(bytes)
    }

    /// True if a screening-valid snapshot for `key_material` exists.
    pub fn contains_snapshot(&self, key_material: &str, expected_revision: u32) -> bool {
        self.get_snapshot(key_material, expected_revision).is_some()
    }

    /// Store a warmed-state image for `key_material`, replacing any previous
    /// one. Written via temp file + rename like the JSON entries, so a
    /// killed sweep never leaves a torn image behind.
    pub fn put_snapshot(&self, key_material: &str, image: &[u8]) -> io::Result<PathBuf> {
        let path = self.snapshot_path(key_material);
        let dir = path.parent().expect("snapshot path has a parent");
        std::fs::create_dir_all(dir)?;
        static PUT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = PUT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            fnv1a64(key_material.as_bytes()),
            std::process::id(),
            seq
        ));
        std::fs::write(&tmp, image)?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Number of snapshot images currently stored.
    pub fn snapshot_count(&self) -> usize {
        std::fs::read_dir(self.dir.join("snapshots"))
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("snap"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Number of entries (files) currently in the store.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_store() -> ResultStore {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "banshee_exec_store_test_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("temp store opens")
    }

    fn payload(n: u64) -> Value {
        Value::Object(vec![
            ("ipc".to_string(), Value::Float(1.5)),
            ("instructions".to_string(), Value::UInt(n)),
        ])
    }

    #[test]
    fn put_then_get_round_trips() {
        let store = temp_store();
        assert!(store.is_empty());
        assert_eq!(store.get("cell A"), None);
        store.put("cell A", &payload(100)).unwrap();
        assert_eq!(store.get("cell A"), Some(payload(100)));
        assert!(store.contains("cell A"));
        assert_eq!(store.len(), 1);
        // Distinct keys hash to distinct entries.
        store.put("cell B", &payload(200)).unwrap();
        assert_eq!(store.get("cell B"), Some(payload(200)));
        assert_eq!(store.get("cell A"), Some(payload(100)));
        assert_eq!(store.len(), 2);
        // Overwrites replace.
        store.put("cell A", &payload(300)).unwrap();
        assert_eq!(store.get("cell A"), Some(payload(300)));
        assert_eq!(store.len(), 2);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn typed_helpers_round_trip_and_treat_shape_drift_as_miss() {
        let store = temp_store();
        let cell: Vec<u64> = vec![1, 2, 3];
        store.put_encoded("typed", &cell).unwrap();
        assert_eq!(store.get_decoded::<Vec<u64>>("typed"), Some(cell));
        // The same payload no longer decoding as the requested type is a
        // miss, not an error.
        assert_eq!(store.get_decoded::<Vec<String>>("typed"), None);
        assert_eq!(store.get_decoded::<Vec<u64>>("absent"), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_entry_is_a_miss_and_recoverable() {
        let store = temp_store();
        store.put("cell", &payload(1)).unwrap();
        std::fs::write(store.entry_path("cell"), "{ not json !!").unwrap();
        assert_eq!(store.get("cell"), None, "corrupt entry must read as miss");
        // Recompute-and-put repairs the entry.
        store.put("cell", &payload(2)).unwrap();
        assert_eq!(store.get("cell"), Some(payload(2)));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let store = temp_store();
        store.put("other key", &payload(9)).unwrap();
        // Simulate a hash collision: copy the entry for "other key" to the
        // path "cell" hashes to. The embedded key no longer matches.
        let other = std::fs::read_to_string(store.entry_path("other key")).unwrap();
        std::fs::write(store.entry_path("cell"), other).unwrap();
        assert_eq!(store.get("cell"), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn wrong_format_version_is_a_miss() {
        let store = temp_store();
        store.put("cell", &payload(7)).unwrap();
        let text = std::fs::read_to_string(store.entry_path("cell")).unwrap();
        let stale = text.replace(
            &format!("\"format\": {STORE_FORMAT}"),
            &format!("\"format\": {}", STORE_FORMAT + 1),
        );
        assert_ne!(stale, text, "format field must appear in the entry");
        std::fs::write(store.entry_path("cell"), stale).unwrap();
        assert_eq!(store.get("cell"), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn snapshot_namespace_round_trips_and_screens_headers() {
        use banshee_common::SnapshotWriter;
        let store = temp_store();
        let key = "design=X|workload=Y|seed=1";
        let header = SnapshotHeader {
            model_revision: 2,
            key_hash: fnv1a64(key.as_bytes()),
            instructions: 42,
        };
        let mut w = SnapshotWriter::with_header(header);
        w.u64(0xDEAD);
        let image = w.into_bytes();

        assert_eq!(store.get_snapshot(key, 2), None);
        assert_eq!(store.snapshot_count(), 0);
        store.put_snapshot(key, &image).unwrap();
        assert_eq!(store.get_snapshot(key, 2), Some(image.clone()));
        assert!(store.contains_snapshot(key, 2));
        assert_eq!(store.snapshot_count(), 1);
        // Snapshots live beside, not among, the JSON entries.
        assert!(store.is_empty());

        // A stale model revision is a miss, never resumed.
        assert_eq!(store.get_snapshot(key, 3), None);
        // A different key's image planted at this key's path is a miss.
        let other_key = "some other cell";
        std::fs::copy(store.snapshot_path(key), store.snapshot_path(other_key)).unwrap();
        assert_eq!(store.get_snapshot(other_key, 2), None);
        // Garbage and truncation are misses too, not panics.
        std::fs::write(store.snapshot_path(key), b"BSHSNAP").unwrap();
        assert_eq!(store.get_snapshot(key, 2), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
