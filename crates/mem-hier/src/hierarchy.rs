//! The on-chip SRAM cache hierarchy (L1D + L2 private, shared LLC).
//!
//! Geometry defaults follow the paper's Table 2: 32 KiB 8-way L1D and
//! 128 KiB 8-way L2 per core, and an 8 MiB 16-way shared LLC. The in-package
//! DRAM cache sits *behind* the LLC (it is a memory-side cache, not
//! inclusive with respect to on-chip caches — Section 3.1), so the only
//! events that reach the memory controllers are **LLC misses** and **LLC
//! dirty evictions**. Those two event types are exactly what the
//! [`HierarchyOutcome`] reports.

use crate::cache::{ReplacementPolicy, SetAssocCache};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{Cycle, LineAddr, MemSize, PageNum};
use serde::{Deserialize, Serialize};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Private L1 data cache.
    L1,
    /// Private L2.
    L2,
    /// Shared last-level cache.
    Llc,
}

/// Configuration of the SRAM hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores (each gets a private L1D and L2).
    pub cores: usize,
    /// L1 data cache capacity.
    pub l1_size: MemSize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency in CPU cycles.
    pub l1_latency: Cycle,
    /// L2 capacity.
    pub l2_size: MemSize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in CPU cycles.
    pub l2_latency: Cycle,
    /// Shared LLC capacity.
    pub llc_size: MemSize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC hit latency in CPU cycles.
    pub llc_latency: Cycle,
}

impl HierarchyConfig {
    /// The paper's Table 2 configuration for `cores` cores.
    pub fn paper_default(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1_size: MemSize::kib(32),
            l1_ways: 8,
            l1_latency: 4,
            l2_size: MemSize::kib(128),
            l2_ways: 8,
            l2_latency: 12,
            llc_size: MemSize::mib(8),
            llc_ways: 16,
            llc_latency: 35,
        }
    }

    /// A scaled-down configuration for fast tests and experiments: the same
    /// shape (private L1/L2, shared LLC) with capacities divided by `factor`.
    pub fn scaled(cores: usize, factor: u64) -> Self {
        let base = Self::paper_default(cores);
        HierarchyConfig {
            l1_size: MemSize::bytes((base.l1_size.as_bytes() / factor).max(4096)),
            l2_size: MemSize::bytes((base.l2_size.as_bytes() / factor).max(8192)),
            llc_size: MemSize::bytes((base.llc_size.as_bytes() / factor).max(65536)),
            ..base
        }
    }
}

/// What happened for one core access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// The level that hit, or `None` for an LLC miss that must go to memory.
    pub hit: Option<HitLevel>,
    /// SRAM lookup latency accumulated on the path (up to and including the
    /// level that hit, or the full path for a miss).
    pub latency: Cycle,
    /// Dirty lines that fell out of the LLC (or were orphaned from private
    /// caches) and must be written back to memory by the memory controller.
    pub memory_writebacks: Vec<LineAddr>,
}

impl HierarchyOutcome {
    /// True when the access must be sent to the memory controller.
    pub fn is_llc_miss(&self) -> bool {
        self.hit.is_none()
    }
}

/// The full on-chip hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    llc_accesses: u64,
    llc_misses: u64,
    /// Per-LLC-way inclusion mask: bit `c` set ⇔ core `c` *may* hold the
    /// way's line in its private L1/L2 (a conservative superset — bits are
    /// set on every LLC touch by a core and reset when the way is refilled).
    /// Back-invalidation probes only the masked cores instead of every
    /// private cache, which is the hierarchy's dominant cost on eviction-
    /// heavy workloads; because the mask is a superset, results are
    /// identical to probing everyone.
    llc_presence: Vec<u64>,
    /// Reusable out-buffer for per-level page invalidations, so page flushes
    /// do not allocate per level.
    page_scratch: Vec<(LineAddr, bool)>,
}

impl CacheHierarchy {
    /// Build the hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.cores > 0, "need at least one core");
        assert!(
            config.cores <= 64,
            "inclusion masks support at most 64 cores"
        );
        let l1 = (0..config.cores)
            .map(|_| {
                SetAssocCache::new(
                    config.l1_size.as_bytes(),
                    config.l1_ways,
                    ReplacementPolicy::Lru,
                )
            })
            .collect();
        let l2 = (0..config.cores)
            .map(|_| {
                SetAssocCache::new(
                    config.l2_size.as_bytes(),
                    config.l2_ways,
                    ReplacementPolicy::Lru,
                )
            })
            .collect();
        let llc = SetAssocCache::new(
            config.llc_size.as_bytes(),
            config.llc_ways,
            ReplacementPolicy::Lru,
        );
        let llc_ways = llc.num_sets() * llc.ways();
        CacheHierarchy {
            config,
            l1,
            l2,
            llc,
            llc_accesses: 0,
            llc_misses: 0,
            llc_presence: vec![0; llc_ways],
            page_scratch: Vec::new(),
        }
    }

    /// The configuration used to build this hierarchy.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// LLC miss rate so far.
    pub fn llc_miss_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_accesses as f64
        }
    }

    /// Total LLC misses so far.
    pub fn llc_miss_count(&self) -> u64 {
        self.llc_misses
    }

    /// Perform one access from `core` to `line`.
    pub fn access(&mut self, core: usize, line: LineAddr, write: bool) -> HierarchyOutcome {
        assert!(core < self.config.cores, "core index out of range");
        let mut latency = self.config.l1_latency;
        let mut memory_writebacks = Vec::new();

        // L1.
        let l1_res = self.l1[core].access(line, write);
        if l1_res.hit {
            return HierarchyOutcome {
                hit: Some(HitLevel::L1),
                latency,
                memory_writebacks,
            };
        }
        // A dirty L1 victim is absorbed by L2/LLC if present there, else it
        // must go to memory (possible after an LLC back-invalidation race).
        if let Some(victim) = l1_res.writeback {
            if !self.l2[core].mark_dirty(victim) && !self.llc.mark_dirty(victim) {
                memory_writebacks.push(victim);
            }
        }

        // L2.
        latency += self.config.l2_latency;
        let l2_res = self.l2[core].access(line, write);
        if l2_res.hit {
            return HierarchyOutcome {
                hit: Some(HitLevel::L2),
                latency,
                memory_writebacks,
            };
        }
        if let Some(victim) = l2_res.writeback {
            if !self.llc.mark_dirty(victim) {
                memory_writebacks.push(victim);
            }
        }

        // LLC.
        latency += self.config.llc_latency;
        self.llc_accesses += 1;
        let llc_res = self.llc.access(line, write);
        // The slot's presence mask still describes the *previous* occupant
        // (the victim) at this point; only those cores can hold its line.
        let victim_mask = self.llc_presence[llc_res.slot];
        if let Some(victim) = llc_res.writeback {
            // Inclusive hierarchy: back-invalidate the victim everywhere; if
            // a private copy was dirtier, it folds into this writeback.
            self.back_invalidate(victim, victim_mask);
            memory_writebacks.push(victim);
        } else if let Some(victim) = llc_res.evicted_clean {
            // Clean LLC victim: still back-invalidate, and if a private copy
            // was dirty the data must go to memory.
            if self.back_invalidate(victim, victim_mask) {
                memory_writebacks.push(victim);
            }
        }
        if llc_res.hit {
            self.llc_presence[llc_res.slot] |= 1u64 << core;
            return HierarchyOutcome {
                hit: Some(HitLevel::Llc),
                latency,
                memory_writebacks,
            };
        }
        // A fill: the way now holds a fresh line only this core has touched.
        self.llc_presence[llc_res.slot] = 1u64 << core;

        self.llc_misses += 1;
        HierarchyOutcome {
            hit: None,
            latency,
            memory_writebacks,
        }
    }

    /// Invalidate `line` in the private caches of every core in `mask`
    /// (a superset of the cores that can hold it); returns true if any
    /// private copy was dirty.
    fn back_invalidate(&mut self, line: LineAddr, mut mask: u64) -> bool {
        let mut dirty = false;
        while mask != 0 {
            let core = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if let Some(d) = self.l1[core].invalidate(line) {
                dirty |= d;
            }
            if let Some(d) = self.l2[core].invalidate(line) {
                dirty |= d;
            }
        }
        dirty
    }

    /// Flush every line of a 4 KiB page from all levels, appending the dirty
    /// lines that must be written back to memory to `dirty_lines` (sorted
    /// and deduplicated; the buffer should be empty on entry so the caller
    /// can reuse one allocation across flushes). NUMA-style remapping
    /// designs (HMA) must do this on every page migration to keep physical
    /// addresses consistent; Banshee never needs it.
    pub fn flush_page_into(&mut self, page: PageNum, dirty_lines: &mut Vec<LineAddr>) {
        let scratch = &mut self.page_scratch;
        scratch.clear();
        for l1 in self.l1.iter_mut() {
            l1.invalidate_page(page, scratch);
        }
        for l2 in self.l2.iter_mut() {
            l2.invalidate_page(page, scratch);
        }
        self.llc.invalidate_page(page, scratch);
        dirty_lines.extend(
            scratch
                .iter()
                .filter(|(_, dirty)| *dirty)
                .map(|(line, _)| *line),
        );
        dirty_lines.sort_unstable_by_key(|l| l.raw());
        dirty_lines.dedup();
    }

    /// Convenience wrapper over [`CacheHierarchy::flush_page_into`] that
    /// returns a fresh `Vec` (tests and cold paths).
    pub fn flush_page(&mut self, page: PageNum) -> Vec<LineAddr> {
        let mut dirty_lines = Vec::new();
        self.flush_page_into(page, &mut dirty_lines);
        dirty_lines
    }
}

impl Persist for HierarchyConfig {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.cores);
        w.u64(self.l1_size.as_bytes());
        w.usize(self.l1_ways);
        w.u64(self.l1_latency);
        w.u64(self.l2_size.as_bytes());
        w.usize(self.l2_ways);
        w.u64(self.l2_latency);
        w.u64(self.llc_size.as_bytes());
        w.usize(self.llc_ways);
        w.u64(self.llc_latency);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(HierarchyConfig {
            cores: r.usize()?,
            l1_size: MemSize::bytes(r.u64()?),
            l1_ways: r.usize()?,
            l1_latency: r.u64()?,
            l2_size: MemSize::bytes(r.u64()?),
            l2_ways: r.usize()?,
            l2_latency: r.u64()?,
            llc_size: MemSize::bytes(r.u64()?),
            llc_ways: r.usize()?,
            llc_latency: r.u64()?,
        })
    }
}

impl Persist for CacheHierarchy {
    fn save(&self, w: &mut SnapshotWriter) {
        self.config.save(w);
        w.seq(self.l1.iter());
        w.seq(self.l2.iter());
        self.llc.save(w);
        w.u64(self.llc_accesses);
        w.u64(self.llc_misses);
        w.seq(self.llc_presence.iter());
        // page_scratch is a reusable out-buffer, cleared before every use —
        // deliberately not persisted.
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let config = HierarchyConfig::restore(r)?;
        if config.cores == 0 || config.cores > 64 {
            return Err(SnapshotError::Corrupt(format!(
                "hierarchy core count {} out of range",
                config.cores
            )));
        }
        let n = r.seq_len(64)?;
        if n != config.cores {
            return Err(SnapshotError::Corrupt(format!(
                "expected {} L1 caches, found {n}",
                config.cores
            )));
        }
        let mut l1 = Vec::with_capacity(n);
        for _ in 0..n {
            l1.push(SetAssocCache::restore(r)?);
        }
        let n = r.seq_len(64)?;
        if n != config.cores {
            return Err(SnapshotError::Corrupt(format!(
                "expected {} L2 caches, found {n}",
                config.cores
            )));
        }
        let mut l2 = Vec::with_capacity(n);
        for _ in 0..n {
            l2.push(SetAssocCache::restore(r)?);
        }
        let llc = SetAssocCache::restore(r)?;
        let llc_accesses = r.u64()?;
        let llc_misses = r.u64()?;
        let n = r.seq_len(8)?;
        if n != llc.num_sets() * llc.ways() {
            return Err(SnapshotError::Corrupt(format!(
                "LLC presence mask length {n} does not match geometry"
            )));
        }
        let mut llc_presence = Vec::with_capacity(n);
        for _ in 0..n {
            llc_presence.push(r.u64()?);
        }
        Ok(CacheHierarchy {
            config,
            l1,
            l2,
            llc,
            llc_accesses,
            llc_misses,
            llc_presence,
            page_scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig {
            cores: 2,
            l1_size: MemSize::bytes(512),
            l1_ways: 2,
            l1_latency: 4,
            l2_size: MemSize::bytes(1024),
            l2_ways: 2,
            l2_latency: 12,
            llc_size: MemSize::bytes(4096),
            llc_ways: 4,
            llc_latency: 35,
        })
    }

    #[test]
    fn paper_default_geometry() {
        let h = CacheHierarchy::new(HierarchyConfig::paper_default(16));
        assert_eq!(h.config().cores, 16);
        assert_eq!(h.config().llc_size, MemSize::mib(8));
        assert_eq!(h.config().llc_ways, 16);
    }

    #[test]
    fn first_access_misses_everywhere_then_hits_l1() {
        let mut h = tiny();
        let line = LineAddr::new(1000);
        let first = h.access(0, line, false);
        assert!(first.is_llc_miss());
        assert_eq!(
            first.latency,
            4 + 12 + 35,
            "miss latency should accumulate all three levels"
        );
        let second = h.access(0, line, false);
        assert_eq!(second.hit, Some(HitLevel::L1));
        assert_eq!(second.latency, 4);
    }

    #[test]
    fn other_core_hits_in_shared_llc() {
        let mut h = tiny();
        let line = LineAddr::new(77);
        h.access(0, line, false);
        let other = h.access(1, line, false);
        assert_eq!(other.hit, Some(HitLevel::Llc));
    }

    #[test]
    fn llc_miss_rate_accounts_only_llc_accesses() {
        let mut h = tiny();
        let line = LineAddr::new(5);
        h.access(0, line, false); // LLC access + miss
        h.access(0, line, false); // L1 hit, LLC untouched
        assert_eq!(h.llc_miss_count(), 1);
        assert!((h.llc_miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dirty_data_eventually_reaches_memory_writeback() {
        let mut h = tiny();
        // Write a line, then stream enough other lines through to force it
        // out of every level.
        let dirty = LineAddr::new(0);
        h.access(0, dirty, true);
        let mut seen_writeback = false;
        for i in 1..5000u64 {
            let out = h.access(0, LineAddr::new(i * 64), false);
            if out.memory_writebacks.contains(&dirty) {
                seen_writeback = true;
            }
        }
        assert!(
            seen_writeback,
            "dirty line was never written back to memory"
        );
    }

    #[test]
    fn flush_page_returns_dirty_lines_once() {
        let mut h = tiny();
        let page = PageNum::new(3);
        h.access(0, page.line_at(0), true);
        h.access(0, page.line_at(1), false);
        h.access(1, page.line_at(2), true);
        let dirty = h.flush_page(page);
        assert!(dirty.contains(&page.line_at(0)));
        assert!(dirty.contains(&page.line_at(2)));
        assert!(!dirty.contains(&page.line_at(1)));
        // After the flush nothing of the page hits anywhere.
        let out = h.access(0, page.line_at(0), false);
        assert!(out.is_llc_miss());
    }

    #[test]
    #[should_panic]
    fn core_index_checked() {
        let mut h = tiny();
        let _ = h.access(5, LineAddr::new(0), false);
    }

    #[test]
    fn persist_round_trip_matches_future_behaviour() {
        use banshee_common::{SnapshotReader, SnapshotWriter};
        let mut h = tiny();
        for i in 0..800u64 {
            h.access(
                (i % 2) as usize,
                LineAddr::new(i * 7 % 512 * 64),
                i % 3 == 0,
            );
        }
        let mut w = SnapshotWriter::new();
        h.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let mut back = CacheHierarchy::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        let mut w2 = SnapshotWriter::new();
        back.save(&mut w2);
        assert_eq!(
            w2.into_bytes(),
            bytes,
            "save → restore → save must be stable"
        );
        // Identical behaviour afterwards, including writeback sets.
        for i in 0..400u64 {
            let a = h.access(
                (i % 2) as usize,
                LineAddr::new(i * 13 % 700 * 64),
                i % 4 == 0,
            );
            let b = back.access(
                (i % 2) as usize,
                LineAddr::new(i * 13 % 700 * 64),
                i % 4 == 0,
            );
            assert_eq!(a, b);
        }
        assert_eq!(h.llc_miss_count(), back.llc_miss_count());
    }

    #[test]
    fn persist_rejects_mismatched_geometry() {
        use banshee_common::{SnapshotReader, SnapshotWriter};
        let h = tiny();
        let mut w = SnapshotWriter::new();
        h.save(&mut w);
        let bytes = w.into_bytes();
        // Claim 3 cores while the cache sections still describe 2.
        let mut bad = bytes.clone();
        bad[0..8].copy_from_slice(&3u64.to_le_bytes());
        assert!(CacheHierarchy::restore(&mut SnapshotReader::new(&bad)).is_err());
        let mut r = SnapshotReader::new(&bytes[..40]);
        assert!(CacheHierarchy::restore(&mut r).is_err());
    }
}
