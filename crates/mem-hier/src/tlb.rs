//! Per-core TLB carrying Banshee's PTE extension bits.
//!
//! The TLB is the reason lazy coherence is interesting: after the memory
//! controller remaps a page, TLBs keep serving the *old* cached/way bits
//! until a shootdown. Banshee tolerates this because every LLC miss checks
//! the tag buffer at the memory controller, which always has the up-to-date
//! mapping for recently remapped pages (Section 3.1). The TLB model here
//! therefore deliberately returns stale [`PteMapInfo`] until
//! [`Tlb::shootdown`] or a targeted [`Tlb::invalidate`] is called.

use crate::page_table::{PageSize, PteMapInfo};
use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::PageNum;

/// One TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpage: u64,
    /// Physical page frame.
    pub ppage: PageNum,
    /// The (possibly stale) DRAM-cache mapping bits.
    pub info: PteMapInfo,
    /// Page size of the mapping.
    pub size: PageSize,
}

#[derive(Debug, Clone)]
struct Slot {
    entry: TlbEntry,
    touched: u64,
}

/// A fully-associative, LRU TLB with a fixed number of entries.
///
/// Real TLBs are set-associative, but associativity is irrelevant to the
/// phenomena modelled here (staleness and shootdown cost); what matters is
/// the entry count and hit/miss behaviour.
#[derive(Debug, Clone)]
pub struct Tlb {
    slots: Vec<Slot>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    shootdowns: u64,
}

impl Tlb {
    /// A TLB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            slots: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            shootdowns: 0,
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of full flushes (shootdowns) performed.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Number of entries the TLB can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently resident entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Look up a virtual page. Returns the entry on a hit (updating LRU) or
    /// `None` on a miss (the caller then walks the page table and calls
    /// [`Tlb::fill`]).
    pub fn lookup(&mut self, vpage: u64) -> Option<TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.entry.vpage == vpage) {
            slot.touched = clock;
            self.hits += 1;
            Some(slot.entry)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert (or overwrite) an entry, evicting the LRU entry if full.
    pub fn fill(&mut self, entry: TlbEntry) {
        self.clock += 1;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.entry.vpage == entry.vpage) {
            slot.entry = entry;
            slot.touched = self.clock;
            return;
        }
        if self.slots.len() == self.capacity {
            // Evict LRU.
            let lru = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.touched)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.slots.swap_remove(lru);
        }
        self.slots.push(Slot {
            entry,
            touched: self.clock,
        });
    }

    /// Update the mapping info of a resident entry in place (used by eager
    /// coherence schemes like TDC's hardware TLB coherence). Returns true if
    /// the entry was resident.
    pub fn update_info(&mut self, vpage: u64, info: PteMapInfo) -> bool {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.entry.vpage == vpage) {
            slot.entry.info = info;
            true
        } else {
            false
        }
    }

    /// Remove a single entry (targeted invalidation).
    pub fn invalidate(&mut self, vpage: u64) -> bool {
        let before = self.slots.len();
        self.slots.retain(|s| s.entry.vpage != vpage);
        before != self.slots.len()
    }

    /// Flush the whole TLB (a shootdown). The next access to every page will
    /// re-walk the page table and pick up fresh mapping bits.
    pub fn shootdown(&mut self) {
        self.slots.clear();
        self.shootdowns += 1;
    }
}

impl Persist for TlbEntry {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.vpage);
        self.ppage.save(w);
        self.info.save(w);
        self.size.save(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TlbEntry {
            vpage: r.u64()?,
            ppage: PageNum::restore(r)?,
            info: PteMapInfo::restore(r)?,
            size: PageSize::restore(r)?,
        })
    }
}

impl Persist for Tlb {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.capacity);
        w.u64(self.clock);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.shootdowns);
        // Slot order is semantic: lookups scan front-to-back and eviction
        // uses swap_remove, so the exact Vec layout must survive the trip.
        w.seq_with(&self.slots, |w, s| {
            s.entry.save(w);
            w.u64(s.touched);
        });
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let capacity = r.usize()?;
        if capacity == 0 {
            return Err(SnapshotError::Corrupt("TLB capacity is zero".to_string()));
        }
        let clock = r.u64()?;
        let hits = r.u64()?;
        let misses = r.u64()?;
        let shootdowns = r.u64()?;
        let len = r.seq_len(27)?;
        if len > capacity {
            return Err(SnapshotError::Corrupt(format!(
                "TLB holds {len} entries but capacity is {capacity}"
            )));
        }
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..len {
            slots.push(Slot {
                entry: TlbEntry::restore(r)?,
                touched: r.u64()?,
            });
        }
        Ok(Tlb {
            slots,
            capacity,
            clock,
            hits,
            misses,
            shootdowns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpage: u64, info: PteMapInfo) -> TlbEntry {
        TlbEntry {
            vpage,
            ppage: PageNum::new(vpage + 1000),
            info,
            size: PageSize::Base4K,
        }
    }

    #[test]
    fn miss_fill_hit() {
        let mut tlb = Tlb::new(4);
        assert!(tlb.lookup(1).is_none());
        tlb.fill(entry(1, PteMapInfo::NOT_CACHED));
        let got = tlb.lookup(1).unwrap();
        assert_eq!(got.ppage, PageNum::new(1001));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut tlb = Tlb::new(2);
        tlb.fill(entry(1, PteMapInfo::NOT_CACHED));
        tlb.fill(entry(2, PteMapInfo::NOT_CACHED));
        tlb.lookup(1); // 2 becomes LRU
        tlb.fill(entry(3, PteMapInfo::NOT_CACHED));
        assert!(tlb.lookup(1).is_some());
        assert!(tlb.lookup(2).is_none());
        assert!(tlb.lookup(3).is_some());
        assert_eq!(tlb.len(), 2);
    }

    #[test]
    fn refill_overwrites_in_place() {
        let mut tlb = Tlb::new(2);
        tlb.fill(entry(1, PteMapInfo::NOT_CACHED));
        tlb.fill(entry(1, PteMapInfo::cached_in(2)));
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(1).unwrap().info, PteMapInfo::cached_in(2));
    }

    #[test]
    fn stale_mapping_persists_until_shootdown() {
        // This is the behaviour Banshee's lazy coherence depends on.
        let mut tlb = Tlb::new(4);
        tlb.fill(entry(7, PteMapInfo::NOT_CACHED));
        // The DRAM cache remaps the page, but nobody tells the TLB...
        let stale = tlb.lookup(7).unwrap();
        assert_eq!(stale.info, PteMapInfo::NOT_CACHED);
        // ...until a shootdown flushes it.
        tlb.shootdown();
        assert!(tlb.lookup(7).is_none());
        assert_eq!(tlb.shootdowns(), 1);
        assert!(tlb.is_empty());
    }

    #[test]
    fn update_info_models_eager_coherence() {
        let mut tlb = Tlb::new(4);
        tlb.fill(entry(9, PteMapInfo::NOT_CACHED));
        assert!(tlb.update_info(9, PteMapInfo::cached_in(1)));
        assert_eq!(tlb.lookup(9).unwrap().info, PteMapInfo::cached_in(1));
        assert!(!tlb.update_info(10, PteMapInfo::NOT_CACHED));
    }

    #[test]
    fn targeted_invalidate() {
        let mut tlb = Tlb::new(4);
        tlb.fill(entry(1, PteMapInfo::NOT_CACHED));
        tlb.fill(entry(2, PteMapInfo::NOT_CACHED));
        assert!(tlb.invalidate(1));
        assert!(!tlb.invalidate(1));
        assert!(tlb.lookup(1).is_none());
        assert!(tlb.lookup(2).is_some());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn persist_round_trip_preserves_lru_order() {
        use banshee_common::{SnapshotReader, SnapshotWriter};
        let mut tlb = Tlb::new(2);
        tlb.fill(entry(1, PteMapInfo::NOT_CACHED));
        tlb.fill(entry(2, PteMapInfo::cached_in(1)));
        tlb.lookup(1); // 2 becomes LRU
        let mut w = SnapshotWriter::new();
        tlb.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let mut back = Tlb::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        let mut w2 = SnapshotWriter::new();
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // The restored TLB evicts the same victim the original would.
        back.fill(entry(3, PteMapInfo::NOT_CACHED));
        tlb.fill(entry(3, PteMapInfo::NOT_CACHED));
        for vpage in [1u64, 2, 3] {
            assert_eq!(tlb.lookup(vpage).is_some(), back.lookup(vpage).is_some());
        }
        assert_eq!(tlb.hits(), back.hits());
        assert_eq!(tlb.misses(), back.misses());
    }

    #[test]
    fn persist_rejects_overfull_and_truncated() {
        use banshee_common::{SnapshotReader, SnapshotWriter};
        let mut tlb = Tlb::new(2);
        tlb.fill(entry(1, PteMapInfo::NOT_CACHED));
        tlb.fill(entry(2, PteMapInfo::NOT_CACHED));
        let mut w = SnapshotWriter::new();
        tlb.save(&mut w);
        let bytes = w.into_bytes();
        // Shrink the recorded capacity below the resident count.
        let mut bad = bytes.clone();
        bad[0..8].copy_from_slice(&1u64.to_le_bytes());
        assert!(Tlb::restore(&mut SnapshotReader::new(&bad)).is_err());
        // Truncation mid-slot is a typed error, not a panic.
        let mut r = SnapshotReader::new(&bytes[..bytes.len() - 4]);
        assert!(Tlb::restore(&mut r).is_err());
    }
}
