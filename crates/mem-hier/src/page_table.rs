//! Page table, PTE extension bits and reverse mapping.
//!
//! Banshee (Section 3.2) extends each PTE/TLB entry with 3 bits of mapping
//! information: a *cached* bit saying whether the page currently resides in
//! the in-package DRAM cache, and *way* bits saying which way of its set it
//! occupies. Crucially, the physical address of the page never changes when
//! it is remapped — only these extension bits do — which is how Banshee
//! sidesteps the address-consistency problem of NUMA-style PTE/TLB designs
//! (TDC, HMA).
//!
//! Section 3.4 relies on the OS's *reverse mapping* (physical page → every
//! PTE that maps it, regardless of aliasing) to apply tag-buffer entries to
//! the page table when the buffer fills. [`PageTable`] implements both the
//! forward walk (with first-touch physical frame allocation) and the reverse
//! map, including alias support.

use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{FnvHashMap, PageNum};
use serde::{Deserialize, Serialize};

/// Page size class for a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageSize {
    /// Regular 4 KiB page.
    Base4K,
    /// Large 2 MiB page (Section 4.3).
    Large2M,
}

impl PageSize {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => banshee_common::PAGE_SIZE,
            PageSize::Large2M => banshee_common::LARGE_PAGE_SIZE,
        }
    }
}

/// The PTE/TLB extension Banshee adds: 1 cached bit + way bits (2 bits for
/// the default 4-way cache; widened automatically for higher associativity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct PteMapInfo {
    /// Whether the page is resident in the DRAM cache.
    pub cached: bool,
    /// Which way of its DRAM-cache set holds the page (meaningful only when
    /// `cached` is true).
    pub way: u8,
}

impl PteMapInfo {
    /// A mapping meaning "not in the DRAM cache".
    pub const NOT_CACHED: PteMapInfo = PteMapInfo {
        cached: false,
        way: 0,
    };

    /// A mapping meaning "cached in `way`".
    pub fn cached_in(way: u8) -> Self {
        PteMapInfo { cached: true, way }
    }

    /// Number of PTE bits this extension needs for a cache with `ways` ways
    /// (1 cached bit + ceil(log2(ways)) way bits). The paper's default 4-way
    /// configuration needs 3 bits.
    pub fn bits_required(ways: usize) -> u32 {
        let way_bits = if ways <= 1 {
            0
        } else {
            usize::BITS - (ways - 1).leading_zeros()
        };
        1 + way_bits
    }
}

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pte {
    /// Physical page frame backing this virtual page.
    pub ppage: PageNum,
    /// Banshee's mapping-info extension bits.
    pub info: PteMapInfo,
    /// Page size of this mapping.
    pub size: PageSize,
}

/// The OS page table for the whole (simulated) machine, plus the reverse map.
///
/// Virtual pages are identified by a flat `(asid, vpn)` pair collapsed into a
/// single u64 by the caller (the simulator gives each core/program its own
/// virtual address region), so one table serves all cores.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// TLB-missing translations hit this map on the hot path, so it uses
    /// the deterministic FNV hasher (see `banshee_common::hash`).
    entries: FnvHashMap<u64, Pte>,
    /// Reverse mapping: physical page → virtual pages mapping to it.
    reverse: FnvHashMap<PageNum, Vec<u64>>,
    /// Next physical frame to hand out on first touch.
    next_frame: u64,
    /// Number of PTE-extension updates applied (statistic for Section 3.4).
    pte_updates: u64,
}

impl PageTable {
    /// An empty page table allocating physical frames from 0 upward.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped virtual pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total PTE mapping-info updates applied via [`PageTable::update_mapping`].
    pub fn pte_update_count(&self) -> u64 {
        self.pte_updates
    }

    /// Translate a virtual page, allocating a physical frame on first touch.
    /// Large mappings allocate 512 consecutive 4 KiB frames so that the
    /// physical large page is contiguous and aligned.
    pub fn translate_or_map(&mut self, vpage: u64, size: PageSize) -> Pte {
        if let Some(pte) = self.entries.get(&vpage) {
            return *pte;
        }
        let frames = size.bytes() / banshee_common::PAGE_SIZE;
        // Align the allocation to the mapping size.
        let aligned = self.next_frame.div_ceil(frames) * frames;
        self.next_frame = aligned + frames;
        let pte = Pte {
            ppage: PageNum::new(aligned),
            info: PteMapInfo::NOT_CACHED,
            size,
        };
        self.entries.insert(vpage, pte);
        self.reverse.entry(pte.ppage).or_default().push(vpage);
        pte
    }

    /// Translate without allocating. Returns `None` for unmapped pages.
    pub fn translate(&self, vpage: u64) -> Option<Pte> {
        self.entries.get(&vpage).copied()
    }

    /// Create an alias: map `alias_vpage` to the same physical page as
    /// `existing_vpage`. Returns the shared PTE, or `None` if the original
    /// mapping does not exist. This exercises the page-aliasing case that
    /// TDC's inverted page table cannot handle but reverse mapping can
    /// (Section 3.4).
    pub fn alias(&mut self, existing_vpage: u64, alias_vpage: u64) -> Option<Pte> {
        let pte = *self.entries.get(&existing_vpage)?;
        self.entries.insert(alias_vpage, pte);
        self.reverse.entry(pte.ppage).or_default().push(alias_vpage);
        Some(pte)
    }

    /// All virtual pages mapping to `ppage` (the reverse mapping / rmap walk).
    pub fn reverse_lookup(&self, ppage: PageNum) -> &[u64] {
        self.reverse.get(&ppage).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Apply new DRAM-cache mapping info to every PTE that maps `ppage`,
    /// using the reverse mapping. Returns how many PTEs were updated.
    ///
    /// This is the software routine of Section 3.4: for each tag-buffer
    /// entry, find the PTEs through the reverse map and update their
    /// cached/way bits.
    pub fn update_mapping(&mut self, ppage: PageNum, info: PteMapInfo) -> usize {
        let vpages: Vec<u64> = self.reverse_lookup(ppage).to_vec();
        let mut updated = 0;
        for v in vpages {
            if let Some(pte) = self.entries.get_mut(&v) {
                pte.info = info;
                updated += 1;
            }
        }
        self.pte_updates += updated as u64;
        updated
    }

    /// Current mapping info for a physical page (from any one of its PTEs).
    pub fn mapping_of(&self, ppage: PageNum) -> Option<PteMapInfo> {
        let v = self.reverse_lookup(ppage).first()?;
        self.entries.get(v).map(|p| p.info)
    }
}

impl Persist for PageSize {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(match self {
            PageSize::Base4K => 0,
            PageSize::Large2M => 1,
        });
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(PageSize::Base4K),
            1 => Ok(PageSize::Large2M),
            t => Err(SnapshotError::Corrupt(format!("unknown page size tag {t}"))),
        }
    }
}

impl Persist for PteMapInfo {
    fn save(&self, w: &mut SnapshotWriter) {
        w.bool(self.cached);
        w.u8(self.way);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PteMapInfo {
            cached: r.bool()?,
            way: r.u8()?,
        })
    }
}

impl Persist for Pte {
    fn save(&self, w: &mut SnapshotWriter) {
        self.ppage.save(w);
        self.info.save(w);
        self.size.save(w);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Pte {
            ppage: PageNum::restore(r)?,
            info: PteMapInfo::restore(r)?,
            size: PageSize::restore(r)?,
        })
    }
}

impl Persist for PageTable {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.next_frame);
        w.u64(self.pte_updates);
        // Hash maps iterate in arbitrary order; serialise sorted by key so
        // save → restore → save is byte-identical.
        let mut entries: Vec<(&u64, &Pte)> = self.entries.iter().collect();
        entries.sort_unstable_by_key(|(v, _)| **v);
        w.seq_with(&entries, |w, (vpage, pte)| {
            w.u64(**vpage);
            pte.save(w);
        });
        let mut reverse: Vec<(&PageNum, &Vec<u64>)> = self.reverse.iter().collect();
        reverse.sort_unstable_by_key(|(p, _)| p.raw());
        w.seq_with(&reverse, |w, (ppage, vpages)| {
            ppage.save(w);
            // The rmap Vec order is semantic (`mapping_of` reads the first
            // element), so it is preserved verbatim, not sorted.
            w.seq(vpages.iter());
        });
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let next_frame = r.u64()?;
        let pte_updates = r.u64()?;
        let len = r.seq_len(19)?;
        let mut entries = FnvHashMap::default();
        entries.reserve(len);
        for _ in 0..len {
            let vpage = r.u64()?;
            let pte = Pte::restore(r)?;
            if entries.insert(vpage, pte).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate page-table entry for vpage {vpage}"
                )));
            }
        }
        let len = r.seq_len(12)?;
        let mut reverse: FnvHashMap<PageNum, Vec<u64>> = FnvHashMap::default();
        reverse.reserve(len);
        for _ in 0..len {
            let ppage = PageNum::restore(r)?;
            let n = r.seq_len(8)?;
            let mut vpages = Vec::with_capacity(n);
            for _ in 0..n {
                vpages.push(r.u64()?);
            }
            if reverse.insert(ppage, vpages).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate reverse-map entry for ppage {}",
                    ppage.raw()
                )));
            }
        }
        Ok(PageTable {
            entries,
            reverse,
            next_frame,
            pte_updates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_required_matches_paper() {
        // 4-way cache → 3 bits (1 cached + 2 way), as stated in Section 5.1.
        assert_eq!(PteMapInfo::bits_required(4), 3);
        assert_eq!(PteMapInfo::bits_required(1), 1);
        assert_eq!(PteMapInfo::bits_required(2), 2);
        assert_eq!(PteMapInfo::bits_required(8), 4);
    }

    #[test]
    fn first_touch_allocates_distinct_frames() {
        let mut pt = PageTable::new();
        let a = pt.translate_or_map(100, PageSize::Base4K);
        let b = pt.translate_or_map(200, PageSize::Base4K);
        assert_ne!(a.ppage, b.ppage);
        // Repeated translation is stable.
        assert_eq!(pt.translate_or_map(100, PageSize::Base4K), a);
        assert_eq!(pt.len(), 2);
    }

    #[test]
    fn large_page_allocation_is_aligned() {
        let mut pt = PageTable::new();
        let _small = pt.translate_or_map(1, PageSize::Base4K);
        let large = pt.translate_or_map(2, PageSize::Large2M);
        let frames_per_large = banshee_common::LARGE_PAGE_SIZE / banshee_common::PAGE_SIZE;
        assert_eq!(large.ppage.raw() % frames_per_large, 0);
        assert_eq!(large.size, PageSize::Large2M);
    }

    #[test]
    fn translate_without_map_returns_none() {
        let pt = PageTable::new();
        assert!(pt.translate(42).is_none());
        assert!(pt.is_empty());
    }

    #[test]
    fn reverse_mapping_tracks_all_aliases() {
        let mut pt = PageTable::new();
        let pte = pt.translate_or_map(10, PageSize::Base4K);
        pt.alias(10, 20).unwrap();
        pt.alias(10, 30).unwrap();
        let rmap = pt.reverse_lookup(pte.ppage);
        assert_eq!(rmap.len(), 3);
        assert!(rmap.contains(&10) && rmap.contains(&20) && rmap.contains(&30));
        assert!(pt.alias(999, 1000).is_none());
    }

    #[test]
    fn update_mapping_reaches_every_alias() {
        let mut pt = PageTable::new();
        let pte = pt.translate_or_map(10, PageSize::Base4K);
        pt.alias(10, 20).unwrap();
        let updated = pt.update_mapping(pte.ppage, PteMapInfo::cached_in(3));
        assert_eq!(updated, 2);
        assert_eq!(pt.translate(10).unwrap().info, PteMapInfo::cached_in(3));
        assert_eq!(pt.translate(20).unwrap().info, PteMapInfo::cached_in(3));
        assert_eq!(pt.mapping_of(pte.ppage), Some(PteMapInfo::cached_in(3)));
        assert_eq!(pt.pte_update_count(), 2);
    }

    #[test]
    fn update_mapping_on_unmapped_page_is_noop() {
        let mut pt = PageTable::new();
        assert_eq!(
            pt.update_mapping(PageNum::new(77), PteMapInfo::cached_in(1)),
            0
        );
        assert_eq!(pt.pte_update_count(), 0);
    }

    #[test]
    fn persist_round_trip_is_byte_identical_and_keeps_rmap_order() {
        use banshee_common::{Persist, SnapshotReader, SnapshotWriter};
        let mut pt = PageTable::new();
        for v in [10u64, 3, 99, 7] {
            pt.translate_or_map(v, PageSize::Base4K);
        }
        pt.translate_or_map(500, PageSize::Large2M);
        pt.alias(10, 20).unwrap();
        pt.alias(10, 30).unwrap();
        let ppage = pt.translate(10).unwrap().ppage;
        pt.update_mapping(ppage, PteMapInfo::cached_in(2));
        let mut w = SnapshotWriter::new();
        pt.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = PageTable::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        let mut w2 = SnapshotWriter::new();
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // Reverse-map order survives, so mapping_of picks the same PTE.
        assert_eq!(back.reverse_lookup(ppage), pt.reverse_lookup(ppage));
        assert_eq!(back.mapping_of(ppage), pt.mapping_of(ppage));
        assert_eq!(back.len(), pt.len());
        assert_eq!(back.pte_update_count(), pt.pte_update_count());
        // A fresh allocation lands on the same frame in both tables.
        let mut pt2 = pt.clone();
        let mut back2 = back;
        assert_eq!(
            pt2.translate_or_map(9999, PageSize::Base4K),
            back2.translate_or_map(9999, PageSize::Base4K)
        );
    }

    #[test]
    fn persist_rejects_duplicate_entries_and_truncation() {
        use banshee_common::{Persist, SnapshotReader, SnapshotWriter};
        let mut pt = PageTable::new();
        pt.translate_or_map(1, PageSize::Base4K);
        let mut w = SnapshotWriter::new();
        pt.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..bytes.len() - 2]);
        assert!(PageTable::restore(&mut r).is_err());
    }

    #[test]
    fn physical_address_is_stable_across_remapping() {
        // The core Banshee property: updating the cached/way bits never moves
        // the page to a different physical frame.
        let mut pt = PageTable::new();
        let before = pt.translate_or_map(5, PageSize::Base4K);
        pt.update_mapping(before.ppage, PteMapInfo::cached_in(2));
        let after = pt.translate(5).unwrap();
        assert_eq!(before.ppage, after.ppage);
        assert_ne!(before.info, after.info);
    }
}
