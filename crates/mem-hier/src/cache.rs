//! A generic set-associative, tag-only cache model.
//!
//! The model tracks presence and dirtiness of cache lines, not their data.
//! It is used for the SRAM levels (L1D, L2, LLC) and reused by DRAM-cache
//! designs that need an auxiliary tag structure (e.g. Alloy Cache's
//! direct-mapped line tags are a 1-way instance; Banshee's tag buffer is an
//! 8-way instance with extra per-entry payload kept by the caller).
//!
//! These lookups run on **every** simulated access (L1 + L2 + LLC), so the
//! layout is optimized for the simulator's hot path:
//!
//! * all ways live in one contiguous `Vec<Way>` with stride indexing
//!   (`set * ways + way`), instead of a `Vec<Vec<Way>>` whose per-set heap
//!   allocations scatter the tag arrays across the heap;
//! * victim selection is O(1): a per-set valid bitmap finds free ways with
//!   `trailing_zeros`, and an intrusive doubly-linked recency list (u8
//!   next/prev indices embedded in each way) keeps exact LRU/FIFO order —
//!   hits rotate the list head, the victim is always the tail — replacing
//!   the former O(ways) timestamp scans.
//!
//! The replacement behaviour is bit-for-bit identical to the timestamp
//! implementation it replaced: free ways are claimed lowest-index-first, LRU
//! evicts the least-recently-touched way, FIFO the oldest-inserted one, and
//! Random draws from the same RNG stream.

use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{FastDivMod, LineAddr, XorShiftRng};
use serde::{Deserialize, Serialize};

/// Victim-selection policy for a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict the oldest-inserted way (TDC's page FIFO).
    Fifo,
    /// Evict a uniformly random way.
    Random,
}

/// Sentinel for "no neighbour" in the intrusive recency list.
const NONE: u8 = u8::MAX;

/// One way of one set, with embedded recency-list links.
#[derive(Debug, Clone, Copy)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Next way towards the LRU end (index within the set).
    next: u8,
    /// Previous way towards the MRU end (index within the set).
    prev: u8,
}

impl Default for Way {
    fn default() -> Self {
        Way {
            valid: false,
            dirty: false,
            tag: 0,
            next: NONE,
            prev: NONE,
        }
    }
}

/// Per-set replacement state: recency-list endpoints + valid bitmap.
#[derive(Debug, Clone, Copy)]
struct SetState {
    /// Most-recently-used (or most-recently-inserted, for FIFO) way.
    head: u8,
    /// Least-recently-used / oldest-inserted way — the victim.
    tail: u8,
    /// Bit `w` set ⇔ way `w` is valid.
    valid_mask: u64,
}

impl Default for SetState {
    fn default() -> Self {
        SetState {
            head: NONE,
            tail: NONE,
            valid_mask: 0,
        }
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty victim that must be written back to the next level, if the
    /// access allocated and evicted one.
    pub writeback: Option<LineAddr>,
    /// A clean victim that was silently dropped, if any (useful for
    /// inclusive-hierarchy back-invalidation).
    pub evicted_clean: Option<LineAddr>,
    /// Global way index (`set * ways + way`) the line was found in or filled
    /// into — the key callers use to attach their own per-way metadata
    /// (e.g. the hierarchy's inclusion masks). `usize::MAX` for a
    /// non-allocating miss.
    pub slot: usize,
}

impl AccessResult {
    /// The evicted line (dirty or clean), if any.
    pub fn evicted(&self) -> Option<LineAddr> {
        self.writeback.or(self.evicted_clean)
    }
}

/// A set-associative cache over 64-byte lines.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// All ways of all sets, contiguous: way `w` of set `s` lives at
    /// `s * ways + w`.
    ways_flat: Vec<Way>,
    /// Per-set replacement state.
    sets: Vec<SetState>,
    ways: usize,
    policy: ReplacementPolicy,
    /// Set-count divider (mask/shift for power-of-two set counts).
    set_div: FastDivMod,
    rng: XorShiftRng,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl SetAssocCache {
    /// Build a cache holding `capacity_bytes` of 64-byte lines with `ways`
    /// associativity.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly, is empty, or exceeds
    /// 64 ways (the per-set valid bitmap's width).
    pub fn new(capacity_bytes: u64, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        assert!(ways <= 64, "associativity above 64 ways is not supported");
        let lines = capacity_bytes / banshee_common::CACHE_LINE_SIZE;
        assert!(lines > 0, "cache must hold at least one line");
        assert!(
            lines.is_multiple_of(ways as u64),
            "line count {lines} must be a multiple of ways {ways}"
        );
        let num_sets = (lines / ways as u64) as usize;
        SetAssocCache {
            ways_flat: vec![Way::default(); num_sets * ways],
            sets: vec![SetState::default(); num_sets],
            ways,
            policy,
            set_div: FastDivMod::new(num_sets as u64),
            rng: XorShiftRng::new(0xCACE),
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss rate over all accesses so far.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        self.set_div.rem(line.raw()) as usize
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u64 {
        self.set_div.div(line.raw())
    }

    fn line_from(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr::new(tag * self.sets.len() as u64 + set as u64)
    }

    /// All ways valid in this set?
    #[inline]
    fn full_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    /// Find the way holding `tag` in `set`, if any.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let ways = &self.ways_flat[base..base + self.ways];
        ways.iter().position(|w| w.valid && w.tag == tag)
    }

    // ---- Intrusive recency list -----------------------------------------

    /// Detach way `w` from its set's recency list.
    #[inline]
    fn unlink(&mut self, set: usize, w: u8) {
        let base = set * self.ways;
        let (prev, next) = {
            let way = &self.ways_flat[base + w as usize];
            (way.prev, way.next)
        };
        if prev != NONE {
            self.ways_flat[base + prev as usize].next = next;
        } else {
            self.sets[set].head = next;
        }
        if next != NONE {
            self.ways_flat[base + next as usize].prev = prev;
        } else {
            self.sets[set].tail = prev;
        }
        let way = &mut self.ways_flat[base + w as usize];
        way.prev = NONE;
        way.next = NONE;
    }

    /// Attach way `w` at the MRU end of its set's recency list.
    #[inline]
    fn push_front(&mut self, set: usize, w: u8) {
        let base = set * self.ways;
        let old_head = self.sets[set].head;
        {
            let way = &mut self.ways_flat[base + w as usize];
            way.prev = NONE;
            way.next = old_head;
        }
        if old_head != NONE {
            self.ways_flat[base + old_head as usize].prev = w;
        } else {
            self.sets[set].tail = w;
        }
        self.sets[set].head = w;
    }

    /// Rotate way `w` to the MRU end (LRU hit promotion).
    #[inline]
    fn move_to_front(&mut self, set: usize, w: u8) {
        if self.sets[set].head != w {
            self.unlink(set, w);
            self.push_front(set, w);
        }
    }

    /// Look up a line without changing any state.
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        self.find_way(set, tag).is_some()
    }

    /// Access `line`; on a miss, allocate it (possibly evicting a victim).
    /// `write` marks the line dirty.
    pub fn access(&mut self, line: LineAddr, write: bool) -> AccessResult {
        self.access_inner(line, write, true)
    }

    /// Access `line` without allocating on a miss (e.g. a probe that the
    /// caller handles as uncached on miss).
    pub fn access_no_allocate(&mut self, line: LineAddr, write: bool) -> AccessResult {
        self.access_inner(line, write, false)
    }

    fn access_inner(&mut self, line: LineAddr, write: bool, allocate: bool) -> AccessResult {
        let set_idx = self.set_index(line);
        let tag = self.tag_of(line);
        let base = set_idx * self.ways;

        // Hit path.
        if let Some(w) = self.find_way(set_idx, tag) {
            self.ways_flat[base + w].dirty |= write;
            if self.policy == ReplacementPolicy::Lru {
                self.move_to_front(set_idx, w as u8);
            }
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
                evicted_clean: None,
                slot: base + w,
            };
        }

        self.misses += 1;
        if !allocate {
            return AccessResult {
                hit: false,
                writeback: None,
                evicted_clean: None,
                slot: usize::MAX,
            };
        }

        // Miss: pick a victim way.
        let victim_idx = self.pick_victim(set_idx);
        let victim = self.ways_flat[base + victim_idx];
        let (writeback, evicted_clean) = if victim.valid {
            let victim_line = self.line_from(set_idx, victim.tag);
            self.unlink(set_idx, victim_idx as u8);
            if victim.dirty {
                self.writebacks += 1;
                (Some(victim_line), None)
            } else {
                (None, Some(victim_line))
            }
        } else {
            (None, None)
        };

        self.ways_flat[base + victim_idx] = Way {
            valid: true,
            dirty: write,
            tag,
            next: NONE,
            prev: NONE,
        };
        self.sets[set_idx].valid_mask |= 1u64 << victim_idx;
        self.push_front(set_idx, victim_idx as u8);

        AccessResult {
            hit: false,
            writeback,
            evicted_clean,
            slot: base + victim_idx,
        }
    }

    fn pick_victim(&mut self, set_idx: usize) -> usize {
        // Prefer the lowest-index invalid way.
        let free = !self.sets[set_idx].valid_mask & self.full_mask();
        if free != 0 {
            return free.trailing_zeros() as usize;
        }
        match self.policy {
            // The recency-list tail is the least-recently-touched (LRU) or
            // oldest-inserted (FIFO) way.
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => self.sets[set_idx].tail as usize,
            ReplacementPolicy::Random => self.rng.next_below(self.ways as u64) as usize,
        }
    }

    /// Remove a line if present; returns `Some(dirty)` if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set_idx = self.set_index(line);
        let tag = self.tag_of(line);
        let w = self.find_way(set_idx, tag)?;
        let dirty = self.ways_flat[set_idx * self.ways + w].dirty;
        self.unlink(set_idx, w as u8);
        self.ways_flat[set_idx * self.ways + w] = Way::default();
        self.sets[set_idx].valid_mask &= !(1u64 << w);
        Some(dirty)
    }

    /// Remove every line belonging to 4 KiB page `page`, appending the
    /// removed lines with their dirty bit to `removed` (an out-buffer the
    /// caller reuses, so page scrubbing does not allocate). This is the
    /// "cache scrubbing" operation that address-consistency problems force
    /// on NUMA-style designs (HMA), and that Banshee avoids by keeping
    /// physical addresses stable.
    pub fn invalidate_page(
        &mut self,
        page: banshee_common::PageNum,
        removed: &mut Vec<(LineAddr, bool)>,
    ) {
        for idx in 0..banshee_common::addr::LINES_PER_PAGE {
            let line = page.line_at(idx);
            if let Some(dirty) = self.invalidate(line) {
                removed.push((line, dirty));
            }
        }
    }

    /// Mark a resident line dirty (used when an upper level writes back into
    /// this level). Returns false if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set_idx = self.set_index(line);
        let tag = self.tag_of(line);
        match self.find_way(set_idx, tag) {
            Some(w) => {
                self.ways_flat[set_idx * self.ways + w].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Number of valid lines currently resident (O(sets); intended for tests
    /// and assertions, not the hot path).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.valid_mask.count_ones() as usize)
            .sum()
    }
}

impl ReplacementPolicy {
    fn persist_tag(self) -> u8 {
        match self {
            ReplacementPolicy::Lru => 0,
            ReplacementPolicy::Fifo => 1,
            ReplacementPolicy::Random => 2,
        }
    }

    fn from_persist_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(ReplacementPolicy::Lru),
            1 => Ok(ReplacementPolicy::Fifo),
            2 => Ok(ReplacementPolicy::Random),
            other => Err(SnapshotError::Corrupt(format!(
                "unknown replacement policy tag {other}"
            ))),
        }
    }
}

impl Persist for Way {
    fn save(&self, w: &mut SnapshotWriter) {
        w.bool(self.valid);
        w.bool(self.dirty);
        w.u64(self.tag);
        w.u8(self.next);
        w.u8(self.prev);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Way {
            valid: r.bool()?,
            dirty: r.bool()?,
            tag: r.u64()?,
            next: r.u8()?,
            prev: r.u8()?,
        })
    }
}

impl Persist for SetState {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u8(self.head);
        w.u8(self.tail);
        w.u64(self.valid_mask);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SetState {
            head: r.u8()?,
            tail: r.u8()?,
            valid_mask: r.u64()?,
        })
    }
}

// The full replacement state round-trips: every way with its recency-list
// links, every set's list endpoints and valid bitmap, the Random-policy RNG
// stream and the hit/miss counters. Geometry is stored too, so a restored
// cache is self-contained; `set_div` is derived from it.
impl Persist for SetAssocCache {
    fn save(&self, w: &mut SnapshotWriter) {
        w.usize(self.sets.len());
        w.usize(self.ways);
        w.u8(self.policy.persist_tag());
        for way in &self.ways_flat {
            way.save(w);
        }
        for set in &self.sets {
            set.save(w);
        }
        self.rng.save(w);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.writebacks);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let num_sets = r.usize()?;
        let ways = r.usize()?;
        if num_sets == 0 || ways == 0 || ways > 64 {
            return Err(SnapshotError::Corrupt(format!(
                "invalid cache geometry: {num_sets} sets x {ways} ways"
            )));
        }
        let policy = ReplacementPolicy::from_persist_tag(r.u8()?)?;
        let total_ways = num_sets
            .checked_mul(ways)
            .ok_or_else(|| SnapshotError::Corrupt("cache geometry overflows".to_string()))?;
        // Each way encodes to at least 12 bytes; reject counts the image
        // cannot possibly hold before allocating.
        if total_ways.saturating_mul(12) > r.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "cache claims {total_ways} way(s) but only {} byte(s) remain",
                r.remaining()
            )));
        }
        let mut ways_flat = Vec::with_capacity(total_ways);
        for _ in 0..total_ways {
            ways_flat.push(Way::restore(r)?);
        }
        let mut sets = Vec::with_capacity(num_sets);
        for _ in 0..num_sets {
            sets.push(SetState::restore(r)?);
        }
        let rng = XorShiftRng::restore(r)?;
        Ok(SetAssocCache {
            ways_flat,
            sets,
            ways,
            policy,
            set_div: FastDivMod::new(num_sets as u64),
            rng,
            hits: r.u64()?,
            misses: r.u64()?,
            writebacks: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::PageNum;
    use proptest::prelude::*;

    fn small_cache(policy: ReplacementPolicy) -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(512, 2, policy)
    }

    fn invalidated_page(c: &mut SetAssocCache, page: PageNum) -> Vec<(LineAddr, bool)> {
        let mut removed = Vec::new();
        c.invalidate_page(page, &mut removed);
        removed
    }

    #[test]
    fn geometry() {
        let c = SetAssocCache::new(8 * 1024 * 1024, 16, ReplacementPolicy::Lru);
        assert_eq!(c.ways(), 16);
        assert_eq!(c.num_sets(), 8 * 1024 * 1024 / 64 / 16);
    }

    #[test]
    #[should_panic]
    fn rejects_nondividing_geometry() {
        let _ = SetAssocCache::new(64 * 3, 2, ReplacementPolicy::Lru);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let line = LineAddr::new(100);
        assert!(!c.access(line, false).hit);
        assert!(c.access(line, false).hit);
        assert!(c.probe(line));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        // Fill set 0 (lines ≡ 0 mod 4) with 2 ways, one dirty.
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        let d = LineAddr::new(8);
        c.access(a, true); // dirty
        c.access(b, false);
        // Next allocation to the same set must evict LRU = a (dirty).
        let res = c.access(d, false);
        assert!(!res.hit);
        assert_eq!(res.writeback, Some(a));
        assert_eq!(c.writebacks(), 1);
        assert!(!c.probe(a));
    }

    #[test]
    fn lru_keeps_recently_touched() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        let res = c.access(LineAddr::new(8), false);
        assert_eq!(res.evicted(), Some(b));
        assert!(c.probe(a));
    }

    #[test]
    fn fifo_evicts_oldest_insertion_despite_touches() {
        let mut c = small_cache(ReplacementPolicy::Fifo);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // touching a does not save it under FIFO
        let res = c.access(LineAddr::new(8), false);
        assert_eq!(res.evicted(), Some(a));
    }

    #[test]
    fn no_allocate_miss_leaves_cache_unchanged() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let res = c.access_no_allocate(LineAddr::new(3), false);
        assert!(!res.hit);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_returns_dirty_state() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let a = LineAddr::new(1);
        let b = LineAddr::new(2);
        c.access(a, true);
        c.access(b, false);
        assert_eq!(c.invalidate(a), Some(true));
        assert_eq!(c.invalidate(b), Some(false));
        assert_eq!(c.invalidate(a), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidated_way_is_reused_before_eviction() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        // Fill both ways of set 0, invalidate one, then allocate: the freed
        // way must be claimed without evicting the survivor.
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        c.access(a, false);
        c.access(b, false);
        c.invalidate(a);
        let res = c.access(LineAddr::new(8), false);
        assert_eq!(res.evicted(), None);
        assert!(c.probe(b));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn invalidate_page_removes_all_lines_of_page() {
        let mut c = SetAssocCache::new(64 * 1024, 4, ReplacementPolicy::Lru);
        let page = PageNum::new(7);
        for i in 0..banshee_common::addr::LINES_PER_PAGE {
            c.access(page.line_at(i), i % 2 == 0);
        }
        let removed = invalidated_page(&mut c, page);
        assert_eq!(removed.len() as u64, banshee_common::addr::LINES_PER_PAGE);
        assert_eq!(removed.iter().filter(|(_, d)| *d).count() as u64, 32);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_page_appends_to_out_buffer() {
        let mut c = SetAssocCache::new(64 * 1024, 4, ReplacementPolicy::Lru);
        let page = PageNum::new(3);
        c.access(page.line_at(0), true);
        let mut removed = vec![(LineAddr::new(999), false)];
        c.invalidate_page(page, &mut removed);
        assert_eq!(removed.len(), 2, "out-buffer contents must be preserved");
        assert_eq!(removed[1], (page.line_at(0), true));
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let a = LineAddr::new(5);
        assert!(!c.mark_dirty(a));
        c.access(a, false);
        assert!(c.mark_dirty(a));
        // The dirty bit must now produce a writeback on eviction.
        c.access(LineAddr::new(1), false);
        let res = c.access(LineAddr::new(9), false);
        assert_eq!(res.writeback, Some(a));
    }

    #[test]
    fn random_policy_eventually_evicts_everything() {
        let mut c = small_cache(ReplacementPolicy::Random);
        let a = LineAddr::new(0);
        c.access(a, false);
        // Hammer the same set with new lines; a must eventually be evicted.
        let mut evicted = false;
        for i in 1..200u64 {
            c.access(LineAddr::new(i * 4), false);
            if !c.probe(a) {
                evicted = true;
                break;
            }
        }
        assert!(evicted);
    }

    /// The intrusive list and the valid bitmap always agree.
    fn assert_list_consistent(c: &SetAssocCache) {
        for set in 0..c.num_sets() {
            let base = set * c.ways;
            let mut seen = 0u64;
            let mut w = c.sets[set].head;
            let mut prev = NONE;
            let mut steps = 0;
            while w != NONE {
                assert!(steps <= c.ways, "cycle in recency list");
                let way = &c.ways_flat[base + w as usize];
                assert!(way.valid, "invalid way linked in recency list");
                assert_eq!(way.prev, prev, "broken prev link");
                seen |= 1u64 << w;
                prev = w;
                w = way.next;
                steps += 1;
            }
            assert_eq!(c.sets[set].tail, prev, "tail out of sync");
            assert_eq!(
                seen, c.sets[set].valid_mask,
                "recency list disagrees with valid bitmap in set {set}"
            );
        }
    }

    fn snapshot_of(c: &SetAssocCache) -> Vec<u8> {
        let mut w = banshee_common::SnapshotWriter::new();
        c.save(&mut w);
        w.into_bytes()
    }

    #[test]
    fn persist_rejects_corrupt_geometry_and_truncation() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        c.access(LineAddr::new(3), true);
        let bytes = snapshot_of(&c);
        // Truncated mid-way.
        let mut r = banshee_common::SnapshotReader::new(&bytes[..bytes.len() / 2]);
        assert!(SetAssocCache::restore(&mut r).is_err());
        // 65-way geometry is rejected before any allocation.
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&65u64.to_le_bytes());
        let mut r = banshee_common::SnapshotReader::new(&bad);
        assert!(SetAssocCache::restore(&mut r).is_err());
        // An absurd set count cannot OOM the reader.
        let mut bad = bytes;
        bad[0..8].copy_from_slice(&(u64::MAX / 16).to_le_bytes());
        let mut r = banshee_common::SnapshotReader::new(&bad);
        assert!(SetAssocCache::restore(&mut r).is_err());
    }

    proptest! {
        /// save → restore → save is byte-identical and the restored cache
        /// behaves identically under further accesses.
        #[test]
        fn prop_persist_round_trip(
            ops in proptest::collection::vec((0u64..512, 0u8..3), 0..200),
            policy in 0u8..3,
            tail in proptest::collection::vec((0u64..512, 0u8..2), 0..50),
        ) {
            let policy = match policy {
                0 => ReplacementPolicy::Lru,
                1 => ReplacementPolicy::Fifo,
                _ => ReplacementPolicy::Random,
            };
            let mut c = SetAssocCache::new(2048, 4, policy);
            for (l, op) in ops {
                match op {
                    0 => { c.access(LineAddr::new(l), false); }
                    1 => { c.access(LineAddr::new(l), true); }
                    _ => { c.invalidate(LineAddr::new(l)); }
                }
            }
            let bytes = snapshot_of(&c);
            let mut r = banshee_common::SnapshotReader::new(&bytes);
            let mut back = SetAssocCache::restore(&mut r).unwrap();
            prop_assert!(r.is_exhausted());
            prop_assert_eq!(snapshot_of(&back), bytes);
            for (l, write) in tail {
                prop_assert_eq!(
                    c.access(LineAddr::new(l), write == 1),
                    back.access(LineAddr::new(l), write == 1)
                );
            }
            prop_assert_eq!(c.hits(), back.hits());
            prop_assert_eq!(c.misses(), back.misses());
            prop_assert_eq!(c.writebacks(), back.writebacks());
        }

        /// Occupancy never exceeds capacity and accounting is consistent.
        #[test]
        fn prop_occupancy_bounded(lines in proptest::collection::vec(0u64..4096, 1..300)) {
            let mut c = SetAssocCache::new(4096, 4, ReplacementPolicy::Lru);
            let capacity = c.num_sets() * c.ways();
            for (i, l) in lines.iter().enumerate() {
                c.access(LineAddr::new(*l), i % 3 == 0);
                prop_assert!(c.occupancy() <= capacity);
            }
            assert_list_consistent(&c);
            prop_assert_eq!(c.hits() + c.misses(), lines.len() as u64);
        }

        /// After accessing a line it is always resident (allocate-on-miss).
        #[test]
        fn prop_accessed_line_is_resident(l in 0u64..100_000) {
            let mut c = SetAssocCache::new(8192, 8, ReplacementPolicy::Lru);
            c.access(LineAddr::new(l), false);
            prop_assert!(c.probe(LineAddr::new(l)));
        }

        /// A dirty line is never silently dropped: it either stays resident or
        /// appears as a writeback.
        #[test]
        fn prop_dirty_lines_never_lost(lines in proptest::collection::vec(0u64..512, 1..400)) {
            let mut c = SetAssocCache::new(2048, 2, ReplacementPolicy::Lru);
            let dirty_line = LineAddr::new(1000);
            c.access(dirty_line, true);
            let mut written_back = false;
            for l in lines {
                let res = c.access(LineAddr::new(l), false);
                if res.writeback == Some(dirty_line) {
                    written_back = true;
                }
            }
            prop_assert!(written_back || c.probe(dirty_line));
        }

        /// The recency list survives arbitrary access/invalidate interleavings
        /// under every policy.
        #[test]
        fn prop_list_consistent_under_churn(
            ops in proptest::collection::vec((0u64..256, 0u8..3), 1..400),
            policy in 0u8..3,
        ) {
            let policy = match policy {
                0 => ReplacementPolicy::Lru,
                1 => ReplacementPolicy::Fifo,
                _ => ReplacementPolicy::Random,
            };
            let mut c = SetAssocCache::new(2048, 4, policy);
            for (l, op) in ops {
                match op {
                    0 => { c.access(LineAddr::new(l), false); }
                    1 => { c.access(LineAddr::new(l), true); }
                    _ => { c.invalidate(LineAddr::new(l)); }
                }
            }
            assert_list_consistent(&c);
        }
    }
}
