//! A generic set-associative, tag-only cache model.
//!
//! The model tracks presence and dirtiness of cache lines, not their data.
//! It is used for the SRAM levels (L1D, L2, LLC) and reused by DRAM-cache
//! designs that need an auxiliary tag structure (e.g. Alloy Cache's
//! direct-mapped line tags are a 1-way instance; Banshee's tag buffer is an
//! 8-way instance with extra per-entry payload kept by the caller).

use banshee_common::{LineAddr, XorShiftRng};
use serde::{Deserialize, Serialize};

/// Victim-selection policy for a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict the oldest-inserted way (TDC's page FIFO).
    Fifo,
    /// Evict a uniformly random way.
    Random,
}

/// One way of one set.
#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Last-touch timestamp for LRU.
    touched: u64,
    /// Insertion timestamp for FIFO.
    inserted: u64,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty victim that must be written back to the next level, if the
    /// access allocated and evicted one.
    pub writeback: Option<LineAddr>,
    /// A clean victim that was silently dropped, if any (useful for
    /// inclusive-hierarchy back-invalidation).
    pub evicted_clean: Option<LineAddr>,
}

impl AccessResult {
    /// The evicted line (dirty or clean), if any.
    pub fn evicted(&self) -> Option<LineAddr> {
        self.writeback.or(self.evicted_clean)
    }
}

/// A set-associative cache over 64-byte lines.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    policy: ReplacementPolicy,
    clock: u64,
    rng: XorShiftRng,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl SetAssocCache {
    /// Build a cache holding `capacity_bytes` of 64-byte lines with `ways`
    /// associativity.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly or is empty.
    pub fn new(capacity_bytes: u64, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        let lines = capacity_bytes / banshee_common::CACHE_LINE_SIZE;
        assert!(lines > 0, "cache must hold at least one line");
        assert!(
            lines.is_multiple_of(ways as u64),
            "line count {lines} must be a multiple of ways {ways}"
        );
        let num_sets = (lines / ways as u64) as usize;
        SetAssocCache {
            sets: vec![vec![Way::default(); ways]; num_sets],
            ways,
            policy,
            clock: 0,
            rng: XorShiftRng::new(0xCACE),
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss rate over all accesses so far.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() % self.sets.len() as u64) as usize
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u64 {
        line.raw() / self.sets.len() as u64
    }

    fn line_from(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr::new(tag * self.sets.len() as u64 + set as u64)
    }

    /// Look up a line without changing any state.
    pub fn probe(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        let tag = self.tag_of(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Access `line`; on a miss, allocate it (possibly evicting a victim).
    /// `write` marks the line dirty.
    pub fn access(&mut self, line: LineAddr, write: bool) -> AccessResult {
        self.access_inner(line, write, true)
    }

    /// Access `line` without allocating on a miss (e.g. a probe that the
    /// caller handles as uncached on miss).
    pub fn access_no_allocate(&mut self, line: LineAddr, write: bool) -> AccessResult {
        self.access_inner(line, write, false)
    }

    fn access_inner(&mut self, line: LineAddr, write: bool, allocate: bool) -> AccessResult {
        self.clock += 1;
        let set_idx = self.set_index(line);
        let tag = self.tag_of(line);
        let clock = self.clock;

        // Hit path.
        if let Some(way) = self.sets[set_idx]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.touched = clock;
            way.dirty |= write;
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
                evicted_clean: None,
            };
        }

        self.misses += 1;
        if !allocate {
            return AccessResult {
                hit: false,
                writeback: None,
                evicted_clean: None,
            };
        }

        // Miss: pick a victim way.
        let victim_idx = self.pick_victim(set_idx);
        let victim = self.sets[set_idx][victim_idx];
        let (writeback, evicted_clean) = if victim.valid {
            let victim_line = self.line_from(set_idx, victim.tag);
            if victim.dirty {
                self.writebacks += 1;
                (Some(victim_line), None)
            } else {
                (None, Some(victim_line))
            }
        } else {
            (None, None)
        };

        self.sets[set_idx][victim_idx] = Way {
            valid: true,
            dirty: write,
            tag,
            touched: clock,
            inserted: clock,
        };

        AccessResult {
            hit: false,
            writeback,
            evicted_clean,
        }
    }

    fn pick_victim(&mut self, set_idx: usize) -> usize {
        // Prefer an invalid way.
        if let Some(idx) = self.sets[set_idx].iter().position(|w| !w.valid) {
            return idx;
        }
        match self.policy {
            ReplacementPolicy::Lru => self.sets[set_idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.touched)
                .map(|(i, _)| i)
                .unwrap_or(0),
            ReplacementPolicy::Fifo => self.sets[set_idx]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.inserted)
                .map(|(i, _)| i)
                .unwrap_or(0),
            ReplacementPolicy::Random => self.rng.next_below(self.ways as u64) as usize,
        }
    }

    /// Remove a line if present; returns `Some(dirty)` if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set_idx = self.set_index(line);
        let tag = self.tag_of(line);
        for way in self.sets[set_idx].iter_mut() {
            if way.valid && way.tag == tag {
                let dirty = way.dirty;
                *way = Way::default();
                return Some(dirty);
            }
        }
        None
    }

    /// Remove every line belonging to 4 KiB page `page`; returns the removed
    /// lines with their dirty bit. This is the "cache scrubbing" operation
    /// that address-consistency problems force on NUMA-style designs (HMA),
    /// and that Banshee avoids by keeping physical addresses stable.
    pub fn invalidate_page(&mut self, page: banshee_common::PageNum) -> Vec<(LineAddr, bool)> {
        let mut removed = Vec::new();
        for idx in 0..banshee_common::addr::LINES_PER_PAGE {
            let line = page.line_at(idx);
            if let Some(dirty) = self.invalidate(line) {
                removed.push((line, dirty));
            }
        }
        removed
    }

    /// Mark a resident line dirty (used when an upper level writes back into
    /// this level). Returns false if the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set_idx = self.set_index(line);
        let tag = self.tag_of(line);
        for way in self.sets[set_idx].iter_mut() {
            if way.valid && way.tag == tag {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident (O(size); intended for tests
    /// and assertions, not the hot path).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::PageNum;
    use proptest::prelude::*;

    fn small_cache(policy: ReplacementPolicy) -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::new(512, 2, policy)
    }

    #[test]
    fn geometry() {
        let c = SetAssocCache::new(8 * 1024 * 1024, 16, ReplacementPolicy::Lru);
        assert_eq!(c.ways(), 16);
        assert_eq!(c.num_sets(), 8 * 1024 * 1024 / 64 / 16);
    }

    #[test]
    #[should_panic]
    fn rejects_nondividing_geometry() {
        let _ = SetAssocCache::new(64 * 3, 2, ReplacementPolicy::Lru);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let line = LineAddr::new(100);
        assert!(!c.access(line, false).hit);
        assert!(c.access(line, false).hit);
        assert!(c.probe(line));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        // Fill set 0 (lines ≡ 0 mod 4) with 2 ways, one dirty.
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        let d = LineAddr::new(8);
        c.access(a, true); // dirty
        c.access(b, false);
        // Next allocation to the same set must evict LRU = a (dirty).
        let res = c.access(d, false);
        assert!(!res.hit);
        assert_eq!(res.writeback, Some(a));
        assert_eq!(c.writebacks(), 1);
        assert!(!c.probe(a));
    }

    #[test]
    fn lru_keeps_recently_touched() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        let res = c.access(LineAddr::new(8), false);
        assert_eq!(res.evicted(), Some(b));
        assert!(c.probe(a));
    }

    #[test]
    fn fifo_evicts_oldest_insertion_despite_touches() {
        let mut c = small_cache(ReplacementPolicy::Fifo);
        let a = LineAddr::new(0);
        let b = LineAddr::new(4);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // touching a does not save it under FIFO
        let res = c.access(LineAddr::new(8), false);
        assert_eq!(res.evicted(), Some(a));
    }

    #[test]
    fn no_allocate_miss_leaves_cache_unchanged() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let res = c.access_no_allocate(LineAddr::new(3), false);
        assert!(!res.hit);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_returns_dirty_state() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let a = LineAddr::new(1);
        let b = LineAddr::new(2);
        c.access(a, true);
        c.access(b, false);
        assert_eq!(c.invalidate(a), Some(true));
        assert_eq!(c.invalidate(b), Some(false));
        assert_eq!(c.invalidate(a), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_page_removes_all_lines_of_page() {
        let mut c = SetAssocCache::new(64 * 1024, 4, ReplacementPolicy::Lru);
        let page = PageNum::new(7);
        for i in 0..banshee_common::addr::LINES_PER_PAGE {
            c.access(page.line_at(i), i % 2 == 0);
        }
        let removed = c.invalidate_page(page);
        assert_eq!(removed.len() as u64, banshee_common::addr::LINES_PER_PAGE);
        assert_eq!(removed.iter().filter(|(_, d)| *d).count() as u64, 32);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = small_cache(ReplacementPolicy::Lru);
        let a = LineAddr::new(5);
        assert!(!c.mark_dirty(a));
        c.access(a, false);
        assert!(c.mark_dirty(a));
        // The dirty bit must now produce a writeback on eviction.
        c.access(LineAddr::new(1), false);
        let res = c.access(LineAddr::new(9), false);
        assert_eq!(res.writeback, Some(a));
    }

    #[test]
    fn random_policy_eventually_evicts_everything() {
        let mut c = small_cache(ReplacementPolicy::Random);
        let a = LineAddr::new(0);
        c.access(a, false);
        // Hammer the same set with new lines; a must eventually be evicted.
        let mut evicted = false;
        for i in 1..200u64 {
            c.access(LineAddr::new(i * 4), false);
            if !c.probe(a) {
                evicted = true;
                break;
            }
        }
        assert!(evicted);
    }

    proptest! {
        /// Occupancy never exceeds capacity and accounting is consistent.
        #[test]
        fn prop_occupancy_bounded(lines in proptest::collection::vec(0u64..4096, 1..300)) {
            let mut c = SetAssocCache::new(4096, 4, ReplacementPolicy::Lru);
            let capacity = c.num_sets() * c.ways();
            for (i, l) in lines.iter().enumerate() {
                c.access(LineAddr::new(*l), i % 3 == 0);
                prop_assert!(c.occupancy() <= capacity);
            }
            prop_assert_eq!(c.hits() + c.misses(), lines.len() as u64);
        }

        /// After accessing a line it is always resident (allocate-on-miss).
        #[test]
        fn prop_accessed_line_is_resident(l in 0u64..100_000) {
            let mut c = SetAssocCache::new(8192, 8, ReplacementPolicy::Lru);
            c.access(LineAddr::new(l), false);
            prop_assert!(c.probe(LineAddr::new(l)));
        }

        /// A dirty line is never silently dropped: it either stays resident or
        /// appears as a writeback.
        #[test]
        fn prop_dirty_lines_never_lost(lines in proptest::collection::vec(0u64..512, 1..400)) {
            let mut c = SetAssocCache::new(2048, 2, ReplacementPolicy::Lru);
            let dirty_line = LineAddr::new(1000);
            c.access(dirty_line, true);
            let mut written_back = false;
            for l in lines {
                let res = c.access(LineAddr::new(l), false);
                if res.writeback == Some(dirty_line) {
                    written_back = true;
                }
            }
            prop_assert!(written_back || c.probe(dirty_line));
        }
    }
}
