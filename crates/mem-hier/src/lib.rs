//! SRAM cache hierarchy, TLBs, page table and reverse mapping.
//!
//! This crate models everything between the core and the memory controllers:
//!
//! * [`cache`] — a generic set-associative, tag-only cache model with
//!   pluggable replacement (LRU / FIFO / random). Used for the L1D, L2 and
//!   the shared LLC, and reused by the DRAM-cache designs for their own
//!   tag structures.
//! * [`hierarchy`] — the paper's 3-level on-chip hierarchy (32 KiB L1,
//!   128 KiB L2 private per core, 8 MiB shared 16-way LLC) with inclusive
//!   semantics and dirty-eviction propagation. LLC misses and LLC dirty
//!   evictions are what reach the memory controllers.
//! * [`tlb`] — per-core TLBs that carry Banshee/TDC's PTE extension bits
//!   (cached bit + way bits) alongside the translation. The TLB is what makes
//!   a *stale* mapping observable: after a page is remapped by the DRAM
//!   cache, TLB entries keep returning the old mapping until a shootdown.
//! * [`page_table`] — the OS page table with first-touch physical frame
//!   allocation, the PTE extension bits, large-page support and the
//!   **reverse mapping** (physical page → all virtual pages that map to it),
//!   which Banshee's lazy-coherence software routine uses to find the PTEs
//!   for a tag-buffer entry (Section 3.4).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod hierarchy;
pub mod page_table;
pub mod tlb;

pub use cache::{AccessResult, ReplacementPolicy, SetAssocCache};
pub use hierarchy::{CacheHierarchy, HierarchyConfig, HierarchyOutcome, HitLevel};
pub use page_table::{PageSize, PageTable, PteMapInfo};
pub use tlb::{Tlb, TlbEntry};
