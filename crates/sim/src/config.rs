//! Simulation configuration (the paper's Tables 2 and 3, plus scaling knobs
//! for laptop-sized runs).

use banshee::BansheeConfig;
use banshee_common::{Cycle, FrequencyBackendKind, MemSize};
use banshee_dcache::{DCacheConfig, DramCacheDesign};
use banshee_dram::DramConfig;
use banshee_memhier::HierarchyConfig;
use std::fmt;

/// Everything needed to run one simulation.
#[derive(Clone)]
pub struct SimConfig {
    /// Number of cores (16 in Table 2).
    pub cores: usize,
    /// Which DRAM-cache design to simulate.
    pub design: DramCacheDesign,
    /// Shared DRAM-cache geometry (capacity, ways, footprint granularity).
    pub dcache: DCacheConfig,
    /// SRAM hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// In-package DRAM device configuration.
    pub in_dram: DramConfig,
    /// Off-package DRAM device configuration.
    pub off_dram: DramConfig,
    /// Outstanding LLC misses a core tolerates before stalling (MLP window).
    pub mlp_per_core: usize,
    /// Per-core TLB entries.
    pub tlb_entries: usize,
    /// TLB miss (page-walk) latency in cycles.
    pub tlb_miss_latency: Cycle,
    /// Core issue width (instructions per cycle when not memory stalled).
    pub issue_width: u32,
    /// Interval (in total instructions) between controller `epoch()` calls
    /// (used by HMA's software remapping and BATMAN's rebalancing).
    pub epoch_instructions: u64,
    /// Instructions (summed over cores) executed before measurement starts.
    /// Warm-up fills the SRAM caches and the DRAM cache so that the measured
    /// phase reflects steady-state behaviour, standing in for the paper's
    /// 100-billion-instruction runs.
    pub warmup_instructions: u64,
    /// Total *measured* instructions (summed over cores) to simulate after
    /// warm-up.
    pub total_instructions: u64,
    /// Cost charged when a batched page-table update is applied, in
    /// microseconds (Table 3 default 20 µs; Table 5 sweeps 10/20/40 µs).
    pub pte_update_cost_us: f64,
    /// TLB shootdown cost for the initiating core (µs).
    pub shootdown_initiator_us: f64,
    /// TLB shootdown cost for every other core (µs).
    pub shootdown_slave_us: f64,
    /// Wrap the selected design with BATMAN bandwidth balancing
    /// (Section 5.4.2).
    pub use_batman: bool,
    /// Run with 2 MiB large pages (Section 5.4.1): address translation and
    /// the Banshee caching unit switch to 2 MiB granularity.
    pub large_pages: bool,
    /// Optional explicit Banshee configuration (otherwise derived from
    /// `dcache`).
    pub banshee: Option<BansheeConfig>,
    /// RNG seed forwarded to stochastic components.
    pub seed: u64,
    /// How the designs track page/line access frequencies: exact hash maps
    /// (the default) or a bounded-memory CountMinSketch.
    pub frequency_backend: FrequencyBackendKind,
}

/// Hand-rolled to stay byte-identical to the historical *derived* output
/// while `frequency_backend` is at its default: the `Debug` string is
/// result-store key material (see [`SimConfig::cache_key_material`]), and
/// appending the new field unconditionally would orphan every persisted
/// result of an unchanged simulation. Off the default the field is
/// appended, so sketch cells key separately. The exhaustive destructuring
/// makes adding a field without deciding its key-material treatment a
/// compile error.
impl fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let SimConfig {
            cores,
            design,
            dcache,
            hierarchy,
            in_dram,
            off_dram,
            mlp_per_core,
            tlb_entries,
            tlb_miss_latency,
            issue_width,
            epoch_instructions,
            warmup_instructions,
            total_instructions,
            pte_update_cost_us,
            shootdown_initiator_us,
            shootdown_slave_us,
            use_batman,
            large_pages,
            banshee,
            seed,
            frequency_backend,
        } = self;
        let mut d = f.debug_struct("SimConfig");
        d.field("cores", cores)
            .field("design", design)
            .field("dcache", dcache)
            .field("hierarchy", hierarchy)
            .field("in_dram", in_dram)
            .field("off_dram", off_dram)
            .field("mlp_per_core", mlp_per_core)
            .field("tlb_entries", tlb_entries)
            .field("tlb_miss_latency", tlb_miss_latency)
            .field("issue_width", issue_width)
            .field("epoch_instructions", epoch_instructions)
            .field("warmup_instructions", warmup_instructions)
            .field("total_instructions", total_instructions)
            .field("pte_update_cost_us", pte_update_cost_us)
            .field("shootdown_initiator_us", shootdown_initiator_us)
            .field("shootdown_slave_us", shootdown_slave_us)
            .field("use_batman", use_batman)
            .field("large_pages", large_pages)
            .field("banshee", banshee)
            .field("seed", seed);
        if *frequency_backend != FrequencyBackendKind::Exact {
            d.field("frequency_backend", frequency_backend);
        }
        d.finish()
    }
}

impl SimConfig {
    /// The paper's full-scale configuration (Tables 2 and 3) for a design.
    /// Slow: 1 GB DRAM cache and billions of instructions are not laptop
    /// material; prefer [`SimConfig::scaled`] for experiments.
    pub fn paper_default(design: DramCacheDesign) -> Self {
        SimConfig {
            cores: 16,
            design,
            dcache: DCacheConfig::paper_default(),
            hierarchy: HierarchyConfig::paper_default(16),
            in_dram: DramConfig::in_package_default(),
            off_dram: DramConfig::off_package_default(),
            mlp_per_core: 10,
            tlb_entries: 64,
            tlb_miss_latency: 50,
            issue_width: 4,
            epoch_instructions: 2_000_000,
            warmup_instructions: 400_000_000,
            total_instructions: 1_600_000_000,
            pte_update_cost_us: 20.0,
            shootdown_initiator_us: 4.0,
            shootdown_slave_us: 1.0,
            use_batman: false,
            large_pages: false,
            banshee: None,
            seed: 1,
            frequency_backend: FrequencyBackendKind::Exact,
        }
    }

    /// A scaled-down configuration that keeps the paper's *shape* (relative
    /// cache sizes, bandwidth ratio, per-core MLP) while shrinking capacity
    /// and instruction counts so a full figure sweep runs in minutes.
    ///
    /// `dram_cache_capacity` is the in-package capacity to model; the LLC is
    /// scaled to 1/32 of it (the paper's 8 MiB : 1 GiB is 1/128, but a
    /// too-small LLC under-uses the scaled traces).
    pub fn scaled(design: DramCacheDesign, dram_cache_capacity: MemSize) -> Self {
        let mut cfg = Self::paper_default(design);
        cfg.dcache = DCacheConfig::scaled(dram_cache_capacity);
        let llc = MemSize::bytes((dram_cache_capacity.as_bytes() / 32).max(256 * 1024));
        cfg.hierarchy = HierarchyConfig {
            llc_size: llc,
            ..HierarchyConfig::paper_default(cfg.cores)
        };
        cfg.in_dram.capacity = dram_cache_capacity;
        cfg.warmup_instructions = 6_000_000;
        cfg.total_instructions = 10_000_000;
        cfg.epoch_instructions = 500_000;
        cfg
    }

    /// A tiny configuration for unit/integration tests (seconds, not
    /// minutes).
    pub fn test_default(design: DramCacheDesign) -> Self {
        let mut cfg = Self::scaled(design, MemSize::mib(8));
        cfg.cores = 4;
        cfg.hierarchy = HierarchyConfig {
            llc_size: MemSize::kib(256),
            ..HierarchyConfig::paper_default(4)
        };
        cfg.warmup_instructions = 150_000;
        cfg.total_instructions = 400_000;
        cfg.epoch_instructions = 100_000;
        cfg
    }

    /// Scale the in-package DRAM's bandwidth relative to off-package
    /// (Figure 8c sweeps 2×/4×/8×) by adjusting the channel count.
    pub fn with_dram_cache_bandwidth_ratio(mut self, ratio: usize) -> Self {
        self.in_dram.channels = ratio.max(1);
        self
    }

    /// Scale the in-package DRAM's access latency (Figure 8b sweeps 100%,
    /// 66%, 50% of off-package latency).
    pub fn with_dram_cache_latency_scale(mut self, scale: f64) -> Self {
        self.in_dram.latency_scale = scale;
        self
    }

    /// Behavioural revision of the simulator model. **Bump this whenever a
    /// change alters simulation *results* without changing any `SimConfig`
    /// field** (e.g. fixing a design's cost model): it is folded into
    /// [`SimConfig::cache_key_material`], so bumping it invalidates every
    /// persisted result-store entry computed by the old model.
    ///
    /// Revision history:
    /// 1. initial model;
    /// 2. FR-FCFS request-queue DRAM scheduling (write queues, bounded bank
    ///    queues, refresh, page policy) + the honest TDC cost model (in-DRAM
    ///    page map and fill charges).
    pub const MODEL_REVISION: u32 = 2;

    /// A canonical, human-readable description of every input that affects
    /// the simulation outcome, used by result stores to key cached results.
    ///
    /// Built from [`SimConfig::MODEL_REVISION`] plus the derived `Debug`
    /// representation, which covers all fields: any configuration change
    /// (including newly added fields) changes the material, so a stale
    /// cache entry can never be returned for a different configuration —
    /// and code changes that keep the config shape must bump the revision.
    pub fn cache_key_material(&self) -> String {
        format!("model-rev={}|{self:?}", Self::MODEL_REVISION)
    }

    /// Key material for *warmed-state snapshots*: like
    /// [`SimConfig::cache_key_material`] but with the measurement budget
    /// (`total_instructions`) normalised away, because the warmed state at
    /// the end of warm-up is identical for every run that differs only in
    /// how long it measures afterwards. Two configurations share a warmed
    /// image exactly when this string (plus the workload name, appended by
    /// the snapshot layer) is equal.
    pub fn warmup_key_material(&self) -> String {
        let mut normalized = self.clone();
        normalized.total_instructions = 0;
        format!("model-rev={}|warmup|{normalized:?}", Self::MODEL_REVISION)
    }

    /// Apply a scenario file's system-config overrides (see
    /// `banshee_workloads::ScenarioOverrides`) to this configuration.
    ///
    /// `dram_cache_mib` rescales the DRAM cache the same way
    /// [`SimConfig::scaled`] does (capacity, in-package DRAM size and the
    /// LLC at 1/32 of the cache), so a scenario can shrink or grow the
    /// whole machine with one knob; the other overrides set their field
    /// directly. Every overridden field is part of the derived `Debug`
    /// representation, so [`SimConfig::cache_key_material`] keys overridden
    /// cells apart from default ones automatically.
    pub fn apply_scenario_overrides(&mut self, o: &banshee_workloads::ScenarioOverrides) {
        if let Some(mib) = o.dram_cache_mib {
            let capacity = MemSize::mib(mib);
            self.dcache = banshee_dcache::DCacheConfig::scaled(capacity);
            self.in_dram.capacity = capacity;
            self.hierarchy.llc_size = MemSize::bytes((capacity.as_bytes() / 32).max(256 * 1024));
        }
        if let Some(cores) = o.cores {
            self.cores = cores;
            self.hierarchy = HierarchyConfig {
                llc_size: self.hierarchy.llc_size,
                ..HierarchyConfig::paper_default(cores)
            };
        }
        if let Some(v) = o.total_instructions {
            self.total_instructions = v;
        }
        if let Some(v) = o.warmup_instructions {
            self.warmup_instructions = v;
        }
        if let Some(v) = o.epoch_instructions {
            self.epoch_instructions = v;
        }
        if let Some(v) = o.mlp_per_core {
            self.mlp_per_core = v;
        }
        if let Some(v) = o.tlb_entries {
            self.tlb_entries = v;
        }
        if let Some(v) = o.issue_width {
            self.issue_width = v;
        }
        if let Some(v) = o.bandwidth_ratio {
            *self = self.clone().with_dram_cache_bandwidth_ratio(v);
        }
        if let Some(v) = o.latency_scale {
            *self = self.clone().with_dram_cache_latency_scale(v);
        }
        if let Some(v) = o.large_pages {
            self.large_pages = v;
        }
        if let Some(v) = o.use_batman {
            self.use_batman = v;
        }
        if let Some(v) = o.dram_scheduler {
            let kind = match v {
                banshee_workloads::DramSchedulerOverride::Fcfs => banshee_dram::SchedulerKind::Fcfs,
                banshee_workloads::DramSchedulerOverride::FrFcfs => {
                    banshee_dram::SchedulerKind::FrFcfs
                }
            };
            self.in_dram.scheduler = kind;
            self.off_dram.scheduler = kind;
        }
        if let Some(v) = o.dram_page_policy {
            let policy = match v {
                banshee_workloads::DramPagePolicyOverride::Open => banshee_dram::PagePolicy::Open,
                banshee_workloads::DramPagePolicyOverride::Closed => {
                    banshee_dram::PagePolicy::Closed
                }
            };
            self.in_dram.page_policy = policy;
            self.off_dram.page_policy = policy;
        }
        if let Some(depth) = o.dram_write_queue_depth {
            for dram in [&mut self.in_dram, &mut self.off_dram] {
                dram.write_queue_depth = depth;
                // Keep the default 3/4 – 1/4 watermark shape (a depth of 0
                // means writes are serviced immediately; watermarks unused).
                let high = (depth * 3 / 4).max(1).min(depth);
                dram.write_high_watermark = high;
                dram.write_low_watermark = (depth / 4).min(high.saturating_sub(1));
            }
        }
        if let Some(depth) = o.dram_read_queue_depth {
            self.in_dram.read_queue_depth = depth;
            self.off_dram.read_queue_depth = depth;
        }
        if let Some(enabled) = o.dram_refresh {
            for dram in [&mut self.in_dram, &mut self.off_dram] {
                dram.timing.t_refi = if enabled {
                    banshee_dram::DramTiming::paper_default().t_refi
                } else {
                    0
                };
            }
        }
        if let Some(backend) = o.frequency_backend {
            self.frequency_backend = backend;
        }
    }

    /// The Banshee configuration this run will use.
    pub fn banshee_config(&self) -> BansheeConfig {
        let base = self
            .banshee
            .clone()
            .unwrap_or_else(|| BansheeConfig::from_dcache(&self.dcache));
        if self.large_pages {
            base.for_large_pages()
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = SimConfig::paper_default(DramCacheDesign::Banshee);
        assert_eq!(c.cores, 16);
        assert_eq!(c.dcache.capacity, MemSize::gib(1));
        assert_eq!(c.in_dram.channels, 4);
        assert_eq!(c.off_dram.channels, 1);
        assert_eq!(c.issue_width, 4);
        assert!((c.pte_update_cost_us - 20.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_keeps_relative_shape() {
        let c = SimConfig::scaled(DramCacheDesign::Banshee, MemSize::mib(32));
        assert_eq!(c.dcache.capacity, MemSize::mib(32));
        assert!(c.hierarchy.llc_size.as_bytes() < c.dcache.capacity.as_bytes());
        assert_eq!(c.dcache.ways, 4);
        assert!(c.total_instructions < 100_000_000);
    }

    #[test]
    fn figure8_knobs() {
        let c = SimConfig::test_default(DramCacheDesign::Banshee)
            .with_dram_cache_bandwidth_ratio(8)
            .with_dram_cache_latency_scale(0.5);
        assert_eq!(c.in_dram.channels, 8);
        assert!((c.in_dram.latency_scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_key_material_tracks_every_field() {
        let base = SimConfig::test_default(DramCacheDesign::Banshee);
        let mut other_seed = base.clone();
        other_seed.seed += 1;
        let mut other_knob = base.clone();
        other_knob.pte_update_cost_us += 1.0;
        assert_eq!(base.cache_key_material(), base.clone().cache_key_material());
        assert_ne!(base.cache_key_material(), other_seed.cache_key_material());
        assert_ne!(base.cache_key_material(), other_knob.cache_key_material());
        assert_ne!(
            base.cache_key_material(),
            SimConfig::test_default(DramCacheDesign::Tdc).cache_key_material()
        );
    }

    #[test]
    fn warmup_key_material_normalises_only_the_budget() {
        let base = SimConfig::test_default(DramCacheDesign::Banshee);
        let mut longer = base.clone();
        longer.total_instructions *= 2;
        // Different budgets are different result-store cells but share a
        // warmed image.
        assert_ne!(base.cache_key_material(), longer.cache_key_material());
        assert_eq!(base.warmup_key_material(), longer.warmup_key_material());
        // Everything else re-keys the snapshot too.
        let mut other_warmup = base.clone();
        other_warmup.warmup_instructions += 1;
        assert_ne!(
            base.warmup_key_material(),
            other_warmup.warmup_key_material()
        );
        let mut other_seed = base.clone();
        other_seed.seed += 1;
        assert_ne!(base.warmup_key_material(), other_seed.warmup_key_material());
    }

    #[test]
    fn frequency_backend_is_key_material_only_off_the_default() {
        let base = SimConfig::test_default(DramCacheDesign::Banshee);
        // The exact default must not surface in the Debug-derived key at all:
        // every result persisted before the knob existed stays addressable.
        assert!(!base.cache_key_material().contains("frequency_backend"));
        assert!(base.cache_key_material().ends_with(&format!("seed: {} }}", base.seed)));

        let mut sketch = base.clone();
        sketch.frequency_backend = FrequencyBackendKind::Cms {
            width: 4096,
            depth: 4,
        };
        assert!(sketch.cache_key_material().contains("frequency_backend"));
        assert_ne!(base.cache_key_material(), sketch.cache_key_material());
        assert_ne!(base.warmup_key_material(), sketch.warmup_key_material());

        // Different sketch geometries are different cells too.
        let mut narrow = sketch.clone();
        narrow.frequency_backend = FrequencyBackendKind::Cms {
            width: 1024,
            depth: 4,
        };
        assert_ne!(sketch.cache_key_material(), narrow.cache_key_material());
    }

    #[test]
    fn scenario_overrides_apply_and_rekey() {
        use banshee_workloads::ScenarioOverrides;
        let base = SimConfig::test_default(DramCacheDesign::Banshee);
        let mut cfg = base.clone();
        cfg.apply_scenario_overrides(&ScenarioOverrides::default());
        assert_eq!(cfg.cache_key_material(), base.cache_key_material());

        let overrides = ScenarioOverrides {
            cores: Some(8),
            dram_cache_mib: Some(16),
            total_instructions: Some(123_000),
            bandwidth_ratio: Some(8),
            large_pages: Some(true),
            ..ScenarioOverrides::default()
        };
        cfg.apply_scenario_overrides(&overrides);
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.dcache.capacity, MemSize::mib(16));
        assert_eq!(cfg.in_dram.capacity, MemSize::mib(16));
        assert_eq!(cfg.total_instructions, 123_000);
        assert_eq!(cfg.in_dram.channels, 8);
        assert!(cfg.large_pages);
        // Overridden cells must never collide with default ones in the
        // result store.
        assert_ne!(cfg.cache_key_material(), base.cache_key_material());
    }

    #[test]
    fn dram_scenario_overrides_reach_both_devices() {
        use banshee_dram::{PagePolicy, SchedulerKind};
        use banshee_workloads::{DramPagePolicyOverride, DramSchedulerOverride, ScenarioOverrides};
        let base = SimConfig::test_default(DramCacheDesign::Banshee);
        let mut cfg = base.clone();
        cfg.apply_scenario_overrides(&ScenarioOverrides {
            dram_scheduler: Some(DramSchedulerOverride::Fcfs),
            dram_page_policy: Some(DramPagePolicyOverride::Closed),
            dram_write_queue_depth: Some(8),
            dram_read_queue_depth: Some(2),
            dram_refresh: Some(false),
            ..ScenarioOverrides::default()
        });
        for dram in [&cfg.in_dram, &cfg.off_dram] {
            assert_eq!(dram.scheduler, SchedulerKind::Fcfs);
            assert_eq!(dram.page_policy, PagePolicy::Closed);
            assert_eq!(dram.write_queue_depth, 8);
            assert_eq!(dram.write_high_watermark, 6);
            assert_eq!(dram.write_low_watermark, 2);
            assert_eq!(dram.read_queue_depth, 2);
            assert_eq!(dram.timing.t_refi, 0);
        }
        // Every DRAM knob re-keys the result store.
        assert_ne!(cfg.cache_key_material(), base.cache_key_material());

        // Degenerate depths keep the watermark invariant (low < high <= depth
        // for buffered queues).
        for depth in [0usize, 1, 2, 3] {
            let mut c = base.clone();
            c.apply_scenario_overrides(&ScenarioOverrides {
                dram_write_queue_depth: Some(depth),
                ..ScenarioOverrides::default()
            });
            if depth > 0 {
                assert!(c.in_dram.write_low_watermark < c.in_dram.write_high_watermark);
                assert!(c.in_dram.write_high_watermark <= depth);
            }
        }
        // Refresh can be turned back on.
        let mut c = cfg.clone();
        c.apply_scenario_overrides(&ScenarioOverrides {
            dram_refresh: Some(true),
            ..ScenarioOverrides::default()
        });
        assert_eq!(
            c.in_dram.timing.t_refi,
            banshee_dram::DramTiming::paper_default().t_refi
        );
    }

    #[test]
    fn banshee_config_derivation() {
        let mut c = SimConfig::test_default(DramCacheDesign::Banshee);
        assert_eq!(c.banshee_config().capacity, c.dcache.capacity);
        c.large_pages = true;
        assert_eq!(c.banshee_config().page_bytes, 2 * 1024 * 1024);
    }
}
