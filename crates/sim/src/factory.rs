//! Construction of a [`DramCacheController`] from a [`SimConfig`].

use crate::config::SimConfig;
use banshee::{BansheeController, BansheeVariant};
use banshee_dcache::{
    alloy::AlloyCache, batman::Batman, cacheonly::CacheOnly, hma::Hma, nocache::NoCache, tdc::Tdc,
    unison::UnisonCache, DramCacheController, DramCacheDesign,
};

/// Build the controller the configuration asks for, including the optional
/// BATMAN bandwidth-balancing wrapper.
pub fn build_controller(config: &SimConfig) -> Box<dyn DramCacheController> {
    let inner: Box<dyn DramCacheController> = match config.design {
        DramCacheDesign::NoCache => Box::new(NoCache::new()),
        DramCacheDesign::CacheOnly => Box::new(CacheOnly::new()),
        DramCacheDesign::Alloy { fill_probability } => {
            Box::new(AlloyCache::new(&config.dcache, fill_probability))
        }
        DramCacheDesign::Unison => Box::new(UnisonCache::new(&config.dcache)),
        DramCacheDesign::Tdc => Box::new(Tdc::new(&config.dcache)),
        DramCacheDesign::Hma => Box::new(Hma::new(&config.dcache)),
        DramCacheDesign::Banshee => Box::new(BansheeController::with_variant(
            config.banshee_config(),
            BansheeVariant::Standard,
        )),
        DramCacheDesign::BansheeLru => Box::new(BansheeController::with_variant(
            config.banshee_config(),
            BansheeVariant::Lru,
        )),
        DramCacheDesign::BansheeFbrNoSample => Box::new(BansheeController::with_variant(
            config.banshee_config(),
            BansheeVariant::FbrNoSample,
        )),
    };
    if config.use_batman {
        Box::new(Batman::with_default_config(inner))
    } else {
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_constructs() {
        let designs = [
            DramCacheDesign::NoCache,
            DramCacheDesign::CacheOnly,
            DramCacheDesign::Alloy {
                fill_probability: 1.0,
            },
            DramCacheDesign::Alloy {
                fill_probability: 0.1,
            },
            DramCacheDesign::Unison,
            DramCacheDesign::Tdc,
            DramCacheDesign::Hma,
            DramCacheDesign::Banshee,
            DramCacheDesign::BansheeLru,
            DramCacheDesign::BansheeFbrNoSample,
        ];
        for d in designs {
            let cfg = SimConfig::test_default(d);
            let c = build_controller(&cfg);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn batman_wrapper_applies() {
        let mut cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        cfg.use_batman = true;
        let c = build_controller(&cfg);
        assert!(c.name().contains("BATMAN"));
    }

    #[test]
    fn design_label_matches_controller_name() {
        for d in DramCacheDesign::figure4_lineup() {
            let cfg = SimConfig::test_default(d);
            let c = build_controller(&cfg);
            assert_eq!(c.name(), d.label());
        }
    }
}
