//! Construction of a [`DramCacheController`] from a [`SimConfig`].

use crate::config::SimConfig;
use banshee::{BansheeController, BansheeVariant};
use banshee_dcache::{
    alloy::AlloyCache, batman::Batman, cacheonly::CacheOnly, hma::Hma, nocache::NoCache, tdc::Tdc,
    unison::UnisonCache, DramCacheController, DramCacheDesign,
};

/// Build the controller the configuration asks for, including the optional
/// BATMAN bandwidth-balancing wrapper.
pub fn build_controller(config: &SimConfig) -> Box<dyn DramCacheController> {
    let backend = config.frequency_backend;
    let inner: Box<dyn DramCacheController> = match config.design {
        DramCacheDesign::NoCache => Box::new(NoCache::new()),
        DramCacheDesign::CacheOnly => Box::new(CacheOnly::new()),
        DramCacheDesign::Alloy { fill_probability } => {
            Box::new(AlloyCache::new(&config.dcache, fill_probability))
        }
        DramCacheDesign::Unison => Box::new(UnisonCache::with_backend(&config.dcache, backend)),
        DramCacheDesign::Tdc => Box::new(Tdc::with_backend(&config.dcache, backend)),
        DramCacheDesign::Hma => Box::new(Hma::with_backend(&config.dcache, backend)),
        DramCacheDesign::Banshee => Box::new(BansheeController::with_variant_backend(
            config.banshee_config(),
            BansheeVariant::Standard,
            backend,
        )),
        DramCacheDesign::BansheeLru => Box::new(BansheeController::with_variant_backend(
            config.banshee_config(),
            BansheeVariant::Lru,
            backend,
        )),
        DramCacheDesign::BansheeFbrNoSample => Box::new(BansheeController::with_variant_backend(
            config.banshee_config(),
            BansheeVariant::FbrNoSample,
            backend,
        )),
    };
    if config.use_batman {
        Box::new(Batman::with_default_config(inner))
    } else {
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_constructs() {
        let designs = [
            DramCacheDesign::NoCache,
            DramCacheDesign::CacheOnly,
            DramCacheDesign::Alloy {
                fill_probability: 1.0,
            },
            DramCacheDesign::Alloy {
                fill_probability: 0.1,
            },
            DramCacheDesign::Unison,
            DramCacheDesign::Tdc,
            DramCacheDesign::Hma,
            DramCacheDesign::Banshee,
            DramCacheDesign::BansheeLru,
            DramCacheDesign::BansheeFbrNoSample,
        ];
        for d in designs {
            let cfg = SimConfig::test_default(d);
            let c = build_controller(&cfg);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn every_design_constructs_with_a_sketch_backend() {
        for d in DramCacheDesign::figure4_lineup() {
            let mut cfg = SimConfig::test_default(d);
            cfg.frequency_backend = banshee_common::FrequencyBackendKind::Cms {
                width: 1024,
                depth: 4,
            };
            let c = build_controller(&cfg);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn batman_wrapper_applies() {
        let mut cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        cfg.use_batman = true;
        let c = build_controller(&cfg);
        assert!(c.name().contains("BATMAN"));
    }

    #[test]
    fn design_label_matches_controller_name() {
        for d in DramCacheDesign::figure4_lineup() {
            let cfg = SimConfig::test_default(d);
            let c = build_controller(&cfg);
            assert_eq!(c.name(), d.label());
        }
    }
}
