//! The per-core model: clock, instruction accounting, TLB and the MLP
//! (memory-level-parallelism) window.
//!
//! The cores of Table 2 are 4-issue out-of-order machines running
//! throughput workloads, which the paper characterizes as latency-tolerant
//! but bandwidth-hungry. The model captures exactly that: a core retires
//! non-memory instructions at the issue width, overlaps up to
//! `mlp` outstanding LLC misses, and stalls only when the window is full.

use banshee_common::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use banshee_common::{Addr, Cycle};
use banshee_memhier::{PageSize, PteMapInfo, Tlb, TlbEntry};
use banshee_workloads::{TraceCursor, TraceGenerator};
use std::collections::VecDeque;

/// One core's architectural state.
pub struct CoreModel {
    /// Core identifier.
    pub id: usize,
    /// Current cycle of this core.
    pub clock: Cycle,
    /// Instructions retired so far.
    pub instructions: u64,
    /// Completion times of in-flight LLC misses.
    outstanding: VecDeque<Cycle>,
    mlp: usize,
    issue_width: u32,
    /// The core's TLB.
    pub tlb: Tlb,
    /// The workload trace this core executes, wrapped in a position-tracking
    /// cursor so snapshots can record and replay the trace position.
    pub trace: TraceCursor,
    /// Cycles lost waiting on a full MLP window (reported as a statistic).
    pub stall_cycles: Cycle,
}

/// Result of a virtual-to-physical translation.
#[derive(Debug, Clone, Copy)]
pub struct Translation {
    /// The physical address of the access.
    pub paddr: Addr,
    /// The (possibly stale) DRAM-cache mapping bits the TLB carried.
    pub info: PteMapInfo,
    /// Whether the translation came from a TLB hit.
    pub tlb_hit: bool,
}

impl CoreModel {
    /// Build a core with the given window sizes and trace.
    pub fn new(
        id: usize,
        trace: Box<dyn TraceGenerator>,
        tlb_entries: usize,
        mlp: usize,
        issue_width: u32,
    ) -> Self {
        CoreModel {
            id,
            clock: 0,
            instructions: 0,
            outstanding: VecDeque::with_capacity(mlp + 1),
            mlp: mlp.max(1),
            issue_width: issue_width.max(1),
            tlb: Tlb::new(tlb_entries.max(1)),
            trace: TraceCursor::new(trace),
            stall_cycles: 0,
        }
    }

    /// Serialize the core's mutable state. The trace generator itself is
    /// opaque; only its cursor position is written — the restoring side
    /// rebuilds the generator from the workload factory and fast-forwards.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.clock);
        w.u64(self.instructions);
        w.u64(self.stall_cycles);
        // The MLP window drains front-to-back — order is semantic.
        w.seq(self.outstanding.iter());
        self.tlb.save(w);
        w.u64(self.trace.consumed());
    }

    /// Restore state saved by [`CoreModel::save_state`] into a freshly built
    /// core (same id, geometry and workload trace at position zero).
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.clock = r.u64()?;
        self.instructions = r.u64()?;
        self.stall_cycles = r.u64()?;
        let outstanding: Vec<Cycle> = r.seq(8)?;
        if outstanding.len() > self.mlp {
            return Err(SnapshotError::Corrupt(format!(
                "core image has {} outstanding misses, MLP window is {}",
                outstanding.len(),
                self.mlp
            )));
        }
        self.outstanding.clear();
        self.outstanding.extend(outstanding);
        let tlb = Tlb::restore(r)?;
        if tlb.capacity() != self.tlb.capacity() {
            return Err(SnapshotError::Corrupt(format!(
                "core image TLB holds {} entries, configuration has {}",
                tlb.capacity(),
                self.tlb.capacity()
            )));
        }
        self.tlb = tlb;
        let consumed = r.u64()?;
        self.trace
            .fast_forward(consumed)
            .map_err(SnapshotError::Corrupt)?;
        Ok(())
    }

    /// Account for the instructions preceding (and including) a memory
    /// access: the core retires them at its issue width.
    pub fn retire_instructions(&mut self, count: u64) {
        self.instructions += count;
        self.clock += count / self.issue_width as u64;
    }

    /// Translate a virtual address through the TLB. On a miss the caller
    /// must walk the page table, call [`CoreModel::fill_tlb`], and charge the
    /// walk latency.
    pub fn translate(&mut self, vaddr: Addr, large_pages: bool) -> Option<Translation> {
        let vpage = Self::vpage_of(vaddr, large_pages);
        self.tlb.lookup(vpage).map(|entry| Translation {
            paddr: Self::compose_paddr(&entry, vaddr),
            info: entry.info,
            tlb_hit: true,
        })
    }

    /// Install a translation after a page walk and return it.
    pub fn fill_tlb(&mut self, vaddr: Addr, entry: TlbEntry) -> Translation {
        self.tlb.fill(entry);
        Translation {
            paddr: Self::compose_paddr(&entry, vaddr),
            info: entry.info,
            tlb_hit: false,
        }
    }

    /// The virtual page key used for TLB/page-table indexing.
    pub fn vpage_of(vaddr: Addr, large_pages: bool) -> u64 {
        if large_pages {
            vaddr.large_page()
        } else {
            vaddr.page().raw()
        }
    }

    fn compose_paddr(entry: &TlbEntry, vaddr: Addr) -> Addr {
        let offset_mask = match entry.size {
            PageSize::Base4K => banshee_common::PAGE_SIZE - 1,
            PageSize::Large2M => banshee_common::LARGE_PAGE_SIZE - 1,
        };
        Addr::new(entry.ppage.base_addr().raw() + (vaddr.raw() & offset_mask))
    }

    /// Record an LLC miss completing at `completion`. If the MLP window is
    /// full the core stalls until the oldest outstanding miss completes.
    pub fn issue_miss(&mut self, completion: Cycle) {
        // Retire misses that already completed.
        while let Some(&front) = self.outstanding.front() {
            if front <= self.clock {
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
        self.outstanding.push_back(completion);
        if self.outstanding.len() > self.mlp {
            let oldest = self.outstanding.pop_front().expect("window non-empty");
            if oldest > self.clock {
                self.stall_cycles += oldest - self.clock;
                self.clock = oldest;
            }
        }
    }

    /// Advance the clock by a fixed amount (SRAM latency, OS work, ...).
    pub fn advance(&mut self, cycles: Cycle) {
        self.clock += cycles;
    }

    /// Number of misses currently in flight.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::PageNum;
    use banshee_workloads::{MemoryAccess, SyntheticParams, SyntheticTrace};

    fn trace() -> Box<dyn TraceGenerator> {
        Box::new(SyntheticTrace::new(
            SyntheticParams::base("t", 1 << 20),
            0,
            1,
        ))
    }

    fn core(mlp: usize) -> CoreModel {
        CoreModel::new(0, trace(), 16, mlp, 4)
    }

    #[test]
    fn instruction_retirement_at_issue_width() {
        let mut c = core(4);
        c.retire_instructions(40);
        assert_eq!(c.instructions, 40);
        assert_eq!(c.clock, 10);
    }

    #[test]
    fn mlp_window_overlaps_misses_until_full() {
        let mut c = core(2);
        // Two misses fit in the window: the core does not stall.
        c.issue_miss(1000);
        c.issue_miss(1200);
        assert_eq!(c.clock, 0);
        assert_eq!(c.in_flight(), 2);
        // The third miss forces a wait for the oldest (cycle 1000).
        c.issue_miss(1400);
        assert_eq!(c.clock, 1000);
        assert_eq!(c.stall_cycles, 1000);
    }

    #[test]
    fn completed_misses_leave_the_window() {
        let mut c = core(2);
        c.issue_miss(10);
        c.advance(50);
        // The first miss completed long ago; issuing two more must not stall.
        c.issue_miss(100);
        c.issue_miss(120);
        assert_eq!(c.clock, 50);
        assert_eq!(c.stall_cycles, 0);
    }

    #[test]
    fn bigger_windows_tolerate_more_latency() {
        let run = |mlp: usize| -> Cycle {
            let mut c = core(mlp);
            for i in 0..100u64 {
                c.issue_miss(c.clock + 200 + i);
                c.advance(10);
            }
            c.clock
        };
        assert!(run(8) < run(1), "more MLP should finish sooner");
    }

    #[test]
    fn translation_round_trip() {
        let mut c = core(4);
        let vaddr = Addr::new(5 * 4096 + 128);
        assert!(c.translate(vaddr, false).is_none());
        let entry = TlbEntry {
            vpage: CoreModel::vpage_of(vaddr, false),
            ppage: PageNum::new(9),
            info: PteMapInfo::cached_in(2),
            size: PageSize::Base4K,
        };
        let t = c.fill_tlb(vaddr, entry);
        assert_eq!(t.paddr, Addr::new(9 * 4096 + 128));
        assert!(!t.tlb_hit);
        let hit = c.translate(vaddr, false).unwrap();
        assert!(hit.tlb_hit);
        assert_eq!(hit.info, PteMapInfo::cached_in(2));
        assert_eq!(hit.paddr, t.paddr);
    }

    #[test]
    fn large_page_translation_uses_2mb_offsets() {
        let mut c = core(4);
        let vaddr = Addr::new(3 * 2 * 1024 * 1024 + 12345);
        let entry = TlbEntry {
            vpage: CoreModel::vpage_of(vaddr, true),
            ppage: PageNum::new(512), // first 4 KiB frame of the large page
            info: PteMapInfo::NOT_CACHED,
            size: PageSize::Large2M,
        };
        let t = c.fill_tlb(vaddr, entry);
        assert_eq!(t.paddr.raw(), 512 * 4096 + 12345);
        assert_eq!(CoreModel::vpage_of(vaddr, true), 3);
    }

    #[test]
    fn trace_is_pulled_through_the_core() {
        let mut c = core(4);
        let a: MemoryAccess = c.trace.next_access();
        assert!(a.vaddr.raw() < (1 << 20));
    }
}
