//! The full-system simulation loop.

use crate::config::SimConfig;
use crate::core_model::{CoreModel, Translation};
use crate::factory::build_controller;
use crate::result::SimResult;
use banshee_common::persist::Persist;
use banshee_common::telemetry::{
    CellProfile, EventKind, ProfileCollector, ProfileComponent, Recorder, SampleCumulative,
    TelemetryConfig, TelemetrySink,
};
use banshee_common::{
    fnv1a64, Addr, Cycle, LineAddr, PageNum, SnapshotError, SnapshotHeader, SnapshotReader,
    SnapshotWriter, StatSet, TrafficStats, XorShiftRng,
};
use banshee_dcache::{DramCacheController, MemRequest, PlanSink, SideEffect};
use banshee_dram::DualDram;
use banshee_memhier::{CacheHierarchy, HitLevel, PageSize, PageTable, TlbEntry};
use banshee_workloads::TraceFactory;
use std::time::{Duration, Instant};

/// Small fixed latencies of the on-chip path (partially hidden by the
/// out-of-order core, hence smaller than the raw lookup latencies).
const L2_HIT_PENALTY: Cycle = 2;
const LLC_HIT_PENALTY: Cycle = 8;
const MISS_ISSUE_PENALTY: Cycle = 2;

/// The self-profiling clock: the one place this file reads host time.
/// Every call site feeds the resulting `Duration` into the telemetry
/// recorder only — simulated state (core clocks, cache contents, DRAM
/// timing, the RNG) never observes it, so results stay a pure function of
/// `SimConfig` + workload + seed.
#[inline]
fn profiling_clock() -> Instant {
    // tidy: allow(wall-clock): self-profiling chokepoint — durations feed the telemetry recorder, never simulated state
    Instant::now()
}

/// The simulated machine: cores + SRAM hierarchy + page table + memory
/// controllers (one [`DramCacheController`]) + the two DRAM devices.
pub struct System {
    config: SimConfig,
    cores: Vec<CoreModel>,
    hierarchy: CacheHierarchy,
    page_table: PageTable,
    controller: Box<dyn DramCacheController>,
    dram: DualDram,
    rng: XorShiftRng,
    next_epoch_at: u64,
    os_stats: StatSet,
    /// Bytes of every executed plan op, accumulated per (DRAM, class) with
    /// the device's min-transfer rounding applied — the design-reported side
    /// of the traffic-conservation invariant (must equal the device-level
    /// accounting minus untimed traffic).
    planned: banshee_common::TrafficStats,
    /// Reusable plan scratch: reset before every controller call so the
    /// per-access path performs no heap allocation in steady state.
    sink: PlanSink,
    /// Reusable buffer for page-flush side effects.
    flush_scratch: Vec<LineAddr>,
    /// Time-resolved telemetry. [`Recorder::Off`] by default and *never*
    /// persisted in warmed images or reflected in key material — telemetry
    /// observes the simulation without influencing it, and results are
    /// byte-identical with the recorder on or off.
    recorder: Recorder,
    /// Where to write telemetry files at collection time (None: discard).
    telemetry_sink: Option<TelemetrySink>,
    /// Where to deposit the self-profile at collection time, with the cell
    /// label it should carry.
    profile_out: Option<(String, ProfileCollector)>,
    /// Total shards (threads) the hot loops run across: the coordinator
    /// plus `shards - 1` channel/trace workers. `1` (the default) is the
    /// plain sequential path. Results are byte-identical for every value —
    /// this is an execution knob like the runner's `--jobs`, never part of
    /// key material or snapshots.
    shards: usize,
    /// The live worker session while a hot loop is sharded; torn down (all
    /// state reclaimed) before anything reads channel state or snapshots.
    shard: Option<crate::shard::ShardSession>,
}

impl System {
    /// Build a system running `workload` under `config` (any
    /// [`TraceFactory`]: a built-in [`banshee_workloads::Workload`] or a
    /// data-driven scenario workload).
    pub fn new(config: SimConfig, workload: &dyn TraceFactory) -> Self {
        let traces = workload.build_traces(config.cores);
        let cores = traces
            .into_iter()
            .enumerate()
            .map(|(id, trace)| {
                CoreModel::new(
                    id,
                    trace,
                    config.tlb_entries,
                    config.mlp_per_core,
                    config.issue_width,
                )
            })
            .collect();
        let hierarchy = CacheHierarchy::new(config.hierarchy.clone());
        let controller = build_controller(&config);
        let dram = DualDram::new(config.in_dram.clone(), config.off_dram.clone());
        System {
            cores,
            hierarchy,
            page_table: PageTable::new(),
            controller,
            dram,
            rng: XorShiftRng::new(config.seed ^ 0x5151),
            next_epoch_at: config.epoch_instructions,
            os_stats: StatSet::new(),
            planned: banshee_common::TrafficStats::new(),
            sink: PlanSink::new(),
            flush_scratch: Vec::new(),
            recorder: Recorder::Off,
            telemetry_sink: None,
            profile_out: None,
            shards: 1,
            shard: None,
            config,
        }
    }

    /// Set how many shards (threads) the hot loops run across. `0` and `1`
    /// both select the sequential path; `n > 1` spawns `n - 1` workers that
    /// own the DRAM channel timing domains and pre-generate the traces,
    /// while this thread keeps the cores, SRAM hierarchy and design state.
    /// Results are byte-identical for every value.
    pub fn set_shards(&mut self, shards: usize) {
        assert!(
            self.shard.is_none(),
            "cannot change the shard count mid-run"
        );
        self.shards = shards.max(1);
    }

    /// The configured shard count (threads used by the hot loops).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Enter sharded execution: move DRAM channels and trace generators to
    /// worker threads. No-op when `shards <= 1` or already sharded.
    fn shard_up(&mut self) {
        if self.shards > 1 && self.shard.is_none() {
            self.shard = Some(crate::shard::ShardSession::start(
                self.shards,
                &mut self.dram,
                &mut self.cores,
            ));
        }
    }

    /// Leave sharded execution, reclaiming every channel, generator and
    /// accounting delta so the system is indistinguishable from one that
    /// ran sequentially. No-op when not sharded.
    fn shard_down(&mut self) {
        if let Some(session) = self.shard.take() {
            session.finish(&mut self.dram, &mut self.cores);
        }
    }

    /// Turn on the telemetry recorder. Must be called before the run starts
    /// (or right after [`System::resume_warmed`]); simulation results are
    /// unaffected either way.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        self.recorder = Recorder::enabled(config);
    }

    /// Set where [`System::run_measured`] writes the telemetry files. Export
    /// errors degrade to a warning on stderr, never a failed run.
    pub fn set_telemetry_sink(&mut self, sink: TelemetrySink) {
        self.telemetry_sink = Some(sink);
    }

    /// Deposit the end-of-run self-profile into `collector` under `cell`.
    pub fn set_profile_output(&mut self, cell: String, collector: ProfileCollector) {
        self.profile_out = Some((cell, collector));
    }

    /// Note (for the event trace) that this system was resumed from a
    /// warmed snapshot at `executed` instructions rather than re-warmed.
    pub fn note_snapshot_resume(&mut self, executed: u64) {
        if self.recorder.is_off() {
            return;
        }
        let cycles = self.cores.iter().map(|c| c.clock).max().unwrap_or(0);
        if let Some(rec) = self.recorder.active_mut() {
            rec.record_event(executed, cycles, EventKind::SnapshotResume, 1);
        }
    }

    /// The workload-facing label of the simulated design.
    pub fn design_name(&self) -> &str {
        self.controller.name()
    }

    /// Run warm-up plus the configured measurement budget and collect the
    /// result. Warm-up executes exactly like measurement (same workload, same
    /// controller state evolution) but its traffic, miss and cycle counts are
    /// excluded from the reported statistics.
    pub fn run(mut self, workload_name: &str) -> SimResult {
        let warmed = self.warm_up();
        self.run_measured(workload_name, warmed)
    }

    /// Execute instructions until the warm-up boundary is crossed and return
    /// the number executed (`None` only when warm-up and budget are both
    /// zero, i.e. there is nothing to run at all).
    ///
    /// The system is left exactly at the *warm point*: the step that crossed
    /// the boundary has retired but its epoch check has not yet run — that
    /// pending check belongs to the measured phase and is performed by
    /// [`System::run_measured`]. This is the state [`System::warmed_image`]
    /// captures and [`System::resume_warmed`] reconstructs.
    pub fn warm_up(&mut self) -> Option<u64> {
        let warmup = self.config.warmup_instructions;
        let budget = self.config.total_instructions;
        if warmup + budget > 0 {
            self.shard_up();
        }
        let mut executed: u64 = 0;
        while executed < warmup + budget {
            executed += self.step_laggard();
            if !self.recorder.is_off() {
                self.telemetry_tick(executed, true);
            }
            if executed >= warmup {
                // Reclaim worker state so the warm point is an ordinary
                // sequential system: snapshots, baselines and resumes are
                // shard-count-agnostic by construction.
                self.shard_down();
                return Some(executed);
            }
            // Periodic controller maintenance (HMA remapping, BATMAN
            // rebalancing).
            if executed >= self.next_epoch_at {
                self.next_epoch_at += self.config.epoch_instructions;
                self.run_epoch(executed);
            }
        }
        self.shard_down();
        None
    }

    /// Run the measured phase from the warm point (`warmed` as returned by
    /// [`System::warm_up`], or the instruction count carried in a resumed
    /// image) and collect the result.
    pub fn run_measured(mut self, workload_name: &str, warmed: Option<u64>) -> SimResult {
        let Some(mut executed) = warmed else {
            return self.collect(workload_name, 0, MeasurementBaseline::default());
        };
        let baseline = self.counter_baseline();
        if !self.recorder.is_off() {
            // Flush the partial warm-up sampling window exactly at the
            // baseline, so measured-phase sample deltas telescope to the
            // final (baseline-subtracted) result.
            self.take_sample(executed, true);
            if let Some(rec) = self.recorder.active_mut() {
                rec.record_event(executed, baseline.cycles, EventKind::MeasurementStart, 1);
            }
        }
        let warmup = self.config.warmup_instructions;
        let budget = self.config.total_instructions;
        // The step that crossed the warm-up boundary still owes its epoch
        // check (in the unsplit loop it ran right after the baseline
        // capture).
        if executed >= self.next_epoch_at {
            self.next_epoch_at += self.config.epoch_instructions;
            self.run_epoch(executed);
        }
        self.shard_up();
        while executed < warmup + budget {
            executed += self.step_laggard();
            if !self.recorder.is_off() {
                self.telemetry_tick(executed, false);
            }
            if executed >= self.next_epoch_at {
                self.next_epoch_at += self.config.epoch_instructions;
                self.run_epoch(executed);
            }
        }
        self.shard_down();
        self.collect(workload_name, executed, baseline)
    }

    /// Record a time-series sample if the current instruction count crossed
    /// the sampling boundary. Only called with the recorder on; kept out of
    /// line so the hot loop pays a single branch when telemetry is off.
    #[cold]
    fn telemetry_tick(&mut self, executed: u64, warmup: bool) {
        let due = match self.recorder.active() {
            Some(rec) => rec.sample_due(executed),
            None => return,
        };
        if due {
            self.take_sample(executed, warmup);
        }
    }

    /// Gather the cumulative counters the recorder diffs between samples and
    /// push one sample. The read is pure observation: nothing in the
    /// simulation state changes.
    fn take_sample(&mut self, executed: u64, warmup: bool) {
        let t0 = profiling_clock();
        let cycles = self.cores.iter().map(|c| c.clock).max().unwrap_or(0);
        let (accesses, misses) = self.controller.demand_stats();
        // Channel-derived gauges: read locally, or — while sharded — via a
        // telemetry barrier that makes every worker report its channels
        // after servicing all previously issued operations. The merged sums
        // equal the sequential device-level sums exactly.
        let (in_dram, off_dram) = match &mut self.shard {
            Some(session) => session.sample(cycles),
            None => (
                self.dram.in_package.telemetry(cycles),
                self.dram.off_package.telemetry(cycles),
            ),
        };
        let cum = SampleCumulative {
            instructions: executed,
            cycles,
            dram_cache_accesses: accesses,
            dram_cache_misses: misses,
            llc_misses: self.hierarchy.llc_miss_count(),
            traffic: self.dram.combined_traffic(),
            in_dram,
            off_dram,
        };
        let mut gauges = Vec::new();
        self.controller.telemetry_gauges(&mut gauges);
        if let Some(rec) = self.recorder.active_mut() {
            rec.record_sample(warmup, cum, &gauges);
            rec.profiler_mut()
                .record(ProfileComponent::TelemetrySampling, t0.elapsed());
        }
    }

    /// Add `elapsed` to a self-profiling bucket (recorder on only).
    #[inline]
    fn profile(&mut self, component: ProfileComponent, elapsed: Duration) {
        if let Some(rec) = self.recorder.active_mut() {
            rec.profiler_mut().record(component, elapsed);
        }
    }

    /// Record a rare design event at the current total instruction count.
    /// Only called from cold paths (side effects, epochs).
    fn design_event(&mut self, kind: EventKind, now: Cycle, count: u64) {
        if self.recorder.is_off() {
            return;
        }
        let instructions = self.cores.iter().map(|c| c.instructions).sum();
        if let Some(rec) = self.recorder.active_mut() {
            rec.record_event(instructions, now, kind, count);
        }
    }

    /// Advance the core that is furthest behind in time by one access.
    fn step_laggard(&mut self) -> u64 {
        let core_id = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.clock)
            .map(|(i, _)| i)
            .expect("at least one core");
        self.step_core(core_id)
    }

    /// The canonical key material naming a warmed state: the configuration's
    /// warm-up key material plus a caller-chosen canonical workload identity
    /// (the display name for simple callers; the experiment harness passes
    /// its full workload key so same-named workloads with different
    /// footprints or trace seeds never share an image). Two runs share a
    /// warmed image exactly when this string matches.
    pub fn warmed_key_material(config: &SimConfig, workload_ident: &str) -> String {
        format!("{}|workload={workload_ident}", config.warmup_key_material())
    }

    /// The identity hash stored in a warmed image's header: FNV-1a over
    /// [`System::warmed_key_material`].
    pub fn warmed_key_hash(config: &SimConfig, workload_ident: &str) -> u64 {
        fnv1a64(Self::warmed_key_material(config, workload_ident).as_bytes())
    }

    /// Serialise the machine at the warm point into a self-describing image
    /// (header + one framed section per subsystem). `executed` is the value
    /// returned by [`System::warm_up`]; it rides in the header so resuming
    /// knows where the measured phase starts. `workload_ident` must be the
    /// same canonical workload identity later passed to
    /// [`System::resume_warmed`].
    pub fn warmed_image(&self, workload_ident: &str, executed: u64) -> Vec<u8> {
        debug_assert!(
            self.shard.is_none(),
            "snapshots are captured only outside shard sessions"
        );
        let header = SnapshotHeader {
            model_revision: SimConfig::MODEL_REVISION,
            key_hash: Self::warmed_key_hash(&self.config, workload_ident),
            instructions: executed,
        };
        let mut w = SnapshotWriter::with_header(header);
        w.section("cores", |w| {
            w.usize(self.cores.len());
            for core in &self.cores {
                core.save_state(w);
            }
        });
        w.section("hierarchy", |w| self.hierarchy.save(w));
        w.section("page_table", |w| self.page_table.save(w));
        w.section("controller", |w| self.controller.save_state(w));
        w.section("dram", |w| self.dram.save_state(w));
        w.section("system", |w| {
            self.rng.save(w);
            w.u64(self.next_epoch_at);
            self.os_stats.save(w);
            self.planned.save(w);
        });
        w.into_bytes()
    }

    /// Rebuild a system at the warm point from a warmed image.
    ///
    /// The image's header is validated first: a [`SnapshotError::StaleRevision`]
    /// or [`SnapshotError::KeyMismatch`] means the image was captured by a
    /// different model revision or for a different (configuration, workload)
    /// pair and must be discarded — resuming it would silently change
    /// results. On success returns the system plus the executed-instruction
    /// count to pass to [`System::run_measured`].
    pub fn resume_warmed(
        config: SimConfig,
        workload: &dyn TraceFactory,
        workload_ident: &str,
        image: &[u8],
    ) -> Result<(System, u64), SnapshotError> {
        let expected_key = Self::warmed_key_hash(&config, workload_ident);
        let mut r = SnapshotReader::new(image);
        let header = r.header()?;
        header.validate(SimConfig::MODEL_REVISION, expected_key)?;
        let mut system = System::new(config, workload);
        system.load_state(&mut r)?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(format!(
                "{} bytes of trailing data after the system image",
                r.remaining()
            )));
        }
        Ok((system, header.instructions))
    }

    /// Restore every subsystem from the sections written by
    /// [`System::warmed_image`] into this freshly built (cold) system.
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("cores", |r| {
            let n = r.usize()?;
            if n != self.cores.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "image has {n} cores, configuration has {}",
                    self.cores.len()
                )));
            }
            for core in self.cores.iter_mut() {
                core.load_state(r)?;
            }
            Ok(())
        })?;
        r.section("hierarchy", |r| {
            let restored = CacheHierarchy::restore(r)?;
            if restored.config() != self.hierarchy.config() {
                return Err(SnapshotError::Corrupt(
                    "image SRAM hierarchy geometry differs from the configuration".to_string(),
                ));
            }
            self.hierarchy = restored;
            Ok(())
        })?;
        r.section("page_table", |r| {
            self.page_table = PageTable::restore(r)?;
            Ok(())
        })?;
        r.section("controller", |r| self.controller.load_state(r))?;
        r.section("dram", |r| self.dram.load_state(r))?;
        r.section("system", |r| {
            self.rng = XorShiftRng::restore(r)?;
            self.next_epoch_at = r.u64()?;
            self.os_stats = StatSet::restore(r)?;
            self.planned = TrafficStats::restore(r)?;
            Ok(())
        })
    }

    /// Capture the counters at the end of warm-up so they can be excluded
    /// from the measured phase.
    fn counter_baseline(&self) -> MeasurementBaseline {
        let (accesses, misses) = self.controller.demand_stats();
        MeasurementBaseline {
            instructions: self.cores.iter().map(|c| c.instructions).sum(),
            cycles: self.cores.iter().map(|c| c.clock).max().unwrap_or(0),
            traffic: self.dram.combined_traffic(),
            dram_cache_accesses: accesses,
            dram_cache_misses: misses,
            llc_misses: self.hierarchy.llc_miss_count(),
        }
    }

    /// Execute one memory access (plus its leading instructions) on a core.
    /// Returns the number of instructions retired.
    fn step_core(&mut self, core_id: usize) -> u64 {
        let prof = !self.recorder.is_off();
        let access = self.cores[core_id].trace.next_access();
        let retired = access.instructions();
        self.cores[core_id].retire_instructions(retired);

        // ---- Address translation ------------------------------------------------
        let t0 = prof.then(profiling_clock);
        let translation = self.translate(core_id, access.vaddr);
        let paddr = translation.paddr;
        if let Some(t0) = t0 {
            self.profile(ProfileComponent::Translate, t0.elapsed());
        }

        // ---- SRAM hierarchy ------------------------------------------------------
        let t0 = prof.then(profiling_clock);
        let outcome = self.hierarchy.access(core_id, paddr.line(), access.write);
        if let Some(t0) = t0 {
            self.profile(ProfileComponent::SramHierarchy, t0.elapsed());
        }
        match outcome.hit {
            Some(HitLevel::L1) => {}
            Some(HitLevel::L2) => self.cores[core_id].advance(L2_HIT_PENALTY),
            Some(HitLevel::Llc) => self.cores[core_id].advance(LLC_HIT_PENALTY),
            None => {}
        }

        // LLC dirty evictions go to the memory controller as hint-less
        // writeback requests.
        let now = self.cores[core_id].clock;
        for line in &outcome.memory_writebacks {
            let mut req = MemRequest::writeback(line.base_addr(), core_id);
            if self.config.large_pages {
                req = req.on_large_page();
            }
            self.sink.reset();
            let t0 = prof.then(profiling_clock);
            self.controller.access(&req, now, &mut self.sink);
            if let Some(t0) = t0 {
                self.profile(ProfileComponent::DesignController, t0.elapsed());
            }
            self.execute_plan(core_id, now);
        }

        // ---- Memory access -------------------------------------------------------
        if outcome.is_llc_miss() {
            let mut req = MemRequest::demand(paddr, core_id).with_hint(translation.info);
            if access.write {
                req = req.as_store();
            }
            if self.config.large_pages {
                req = req.on_large_page();
            }
            let now = self.cores[core_id].clock;
            self.sink.reset();
            let t0 = prof.then(profiling_clock);
            self.controller.access(&req, now, &mut self.sink);
            if let Some(t0) = t0 {
                self.profile(ProfileComponent::DesignController, t0.elapsed());
            }
            let completion = self.execute_plan(core_id, now);
            self.cores[core_id].advance(MISS_ISSUE_PENALTY);
            self.cores[core_id].issue_miss(completion);
        }

        retired
    }

    /// Walk the TLB / page table for a virtual address.
    fn translate(&mut self, core_id: usize, vaddr: Addr) -> Translation {
        let large = self.config.large_pages;
        if let Some(t) = self.cores[core_id].translate(vaddr, large) {
            return t;
        }
        // TLB miss: charge the walk and install the PTE (with its current
        // mapping-info extension bits).
        self.cores[core_id].advance(self.config.tlb_miss_latency);
        let vpage = CoreModel::vpage_of(vaddr, large);
        let size = if large {
            PageSize::Large2M
        } else {
            PageSize::Base4K
        };
        let pte = self.page_table.translate_or_map(vpage, size);
        self.cores[core_id].fill_tlb(
            vaddr,
            TlbEntry {
                vpage,
                ppage: pte.ppage,
                info: pte.info,
                size,
            },
        )
    }

    /// Issue the sink's DRAM operations and apply its side effects. Returns
    /// the completion cycle of the critical path (or `now` if it is empty).
    ///
    /// The sink's op lists are read in place (no move, no allocation); only
    /// the rare side-effect list is detached, because applying it can
    /// re-enter the controller and reuse the sink for nested requests.
    fn execute_plan(&mut self, core_id: usize, now: Cycle) -> Cycle {
        let prof = !self.recorder.is_off();
        let t0 = prof.then(profiling_clock);
        let mut t = now + self.sink.extra_latency;
        let System {
            sink,
            dram,
            planned,
            shard,
            ..
        } = self;
        match shard {
            Some(session) => {
                // Sharded path: identical issue order and issue-side
                // accounting; channel service happens on the worker owning
                // the channel. Critical ops block for their finish cycle
                // (the timing chain must be bit-equal), background ops are
                // fire-and-forget but stay in per-channel issue order.
                for op in &sink.critical {
                    let dev = dram.device_mut(op.dram);
                    let rounded = dev.config().round_to_min_transfer(op.bytes);
                    planned.add(op.dram, op.class, rounded);
                    dev.note_issued(op.class, rounded);
                    t = session.access(op.dram, op.addr, op.bytes, op.class, op.write, t, true);
                }
                for op in &sink.background {
                    let dev = dram.device_mut(op.dram);
                    let rounded = dev.config().round_to_min_transfer(op.bytes);
                    planned.add(op.dram, op.class, rounded);
                    dev.note_issued(op.class, rounded);
                    session.access(op.dram, op.addr, op.bytes, op.class, op.write, t, false);
                }
            }
            None => {
                for op in &sink.critical {
                    let dev = dram.device_mut(op.dram);
                    planned.add(
                        op.dram,
                        op.class,
                        dev.config().round_to_min_transfer(op.bytes),
                    );
                    let outcome = dev.access(t, op.addr, op.bytes, op.class, op.write);
                    t = outcome.finish;
                }
                // Background work starts once the critical path has
                // resolved (e.g. a fill begins after the demand data
                // arrived) and only consumes bandwidth.
                for op in &sink.background {
                    let dev = dram.device_mut(op.dram);
                    planned.add(
                        op.dram,
                        op.class,
                        dev.config().round_to_min_transfer(op.bytes),
                    );
                    dev.access(t, op.addr, op.bytes, op.class, op.write);
                }
            }
        }
        if let Some(t0) = t0 {
            self.profile(ProfileComponent::DramExecute, t0.elapsed());
        }
        if !self.sink.side_effects.is_empty() {
            let effects = std::mem::take(&mut self.sink.side_effects);
            let t0 = prof.then(profiling_clock);
            self.apply_side_effects(effects, core_id, t);
            if let Some(t0) = t0 {
                self.profile(ProfileComponent::SideEffects, t0.elapsed());
            }
        }
        t
    }

    /// Apply OS-level side effects requested by the controller.
    fn apply_side_effects(&mut self, effects: Vec<SideEffect>, core_id: usize, now: Cycle) {
        let cpu = banshee_common::CyclesPerSec::ghz(2.7);
        if !self.recorder.is_off() {
            // One batched event per application: an HMA epoch flushes
            // thousands of pages in a single effects vector, and per-page
            // events would flood the ring.
            let flushes = effects
                .iter()
                .filter(|e| matches!(e, SideEffect::FlushPage { .. }))
                .count() as u64;
            if flushes > 0 {
                self.design_event(EventKind::PageFlush, now, flushes);
            }
        }
        for effect in effects {
            match effect {
                SideEffect::OsWork { cycles } => {
                    self.os_stats.add("os_work_cycles", cycles);
                    self.cores[core_id].advance(cycles);
                }
                SideEffect::StallAllCores { cycles } => {
                    self.os_stats.add("stall_all_cycles", cycles);
                    for c in self.cores.iter_mut() {
                        c.advance(cycles);
                    }
                }
                SideEffect::UpdatePageTable { updates } => {
                    self.os_stats.inc("pte_batch_updates");
                    self.os_stats
                        .add("pte_entries_updated", updates.len() as u64);
                    self.design_event(EventKind::PteUpdateBatch, now, updates.len() as u64);
                    for (unit, info) in updates {
                        let ppage = self.unit_to_ppage(unit);
                        self.page_table.update_mapping(ppage, info);
                    }
                    // The software routine runs on one randomly chosen core
                    // (Section 3.4); Table 5 sweeps this cost.
                    let victim = self.rng.next_below(self.cores.len() as u64) as usize;
                    let cost = cpu.cycles_in_us(self.config.pte_update_cost_us);
                    self.cores[victim].advance(cost);
                }
                SideEffect::TlbShootdown => {
                    self.os_stats.inc("tlb_shootdowns");
                    self.design_event(EventKind::TlbShootdown, now, 1);
                    let initiator = self.rng.next_below(self.cores.len() as u64) as usize;
                    let init_cost = cpu.cycles_in_us(self.config.shootdown_initiator_us);
                    let slave_cost = cpu.cycles_in_us(self.config.shootdown_slave_us);
                    for (i, core) in self.cores.iter_mut().enumerate() {
                        core.tlb.shootdown();
                        core.advance(if i == initiator {
                            init_cost
                        } else {
                            slave_cost
                        });
                    }
                }
                SideEffect::FlushPage { page } => {
                    self.os_stats.inc("page_flushes");
                    let ppage = self.unit_to_ppage(page);
                    let mut dirty_lines = std::mem::take(&mut self.flush_scratch);
                    dirty_lines.clear();
                    self.hierarchy.flush_page_into(ppage, &mut dirty_lines);
                    for line in &dirty_lines {
                        let req = MemRequest::writeback(line.base_addr(), core_id);
                        self.sink.reset();
                        self.controller.access(&req, now, &mut self.sink);
                        // Flush-triggered writebacks are plain background
                        // traffic; nested side effects (there are none in
                        // practice) are applied recursively.
                        self.execute_plan(core_id, now);
                    }
                    self.flush_scratch = dirty_lines;
                }
            }
        }
    }

    /// Convert the caching-unit numbers carried in side effects to 4 KiB
    /// physical page numbers (identical for 4 KiB runs; the first frame of
    /// the large page for 2 MiB runs).
    fn unit_to_ppage(&self, unit: PageNum) -> PageNum {
        if self.config.large_pages {
            PageNum::new(unit.raw() * (banshee_common::LARGE_PAGE_SIZE / banshee_common::PAGE_SIZE))
        } else {
            unit
        }
    }

    /// Run the periodic controller hook. `executed` is the total instruction
    /// count that triggered this epoch (event-trace timestamp only).
    fn run_epoch(&mut self, executed: u64) {
        let prof = !self.recorder.is_off();
        let t0 = prof.then(profiling_clock);
        let now = self.cores.iter().map(|c| c.clock).max().unwrap_or(0);
        self.sink.reset();
        if self.controller.epoch(now, &mut self.sink) {
            if let Some(rec) = self.recorder.active_mut() {
                rec.record_event(executed, now, EventKind::EpochPlan, 1);
            }
            // Charge epoch work to a random core (the OS picks one).
            let core = self.rng.next_below(self.cores.len() as u64) as usize;
            self.execute_plan(core, now);
        }
        if let Some(t0) = t0 {
            self.profile(ProfileComponent::EpochMaintenance, t0.elapsed());
        }
    }

    /// Gather the final statistics for the measured (post-warm-up) phase.
    fn collect(
        mut self,
        workload_name: &str,
        executed_instructions: u64,
        baseline: MeasurementBaseline,
    ) -> SimResult {
        debug_assert!(
            self.shard.is_none(),
            "results are collected only outside shard sessions"
        );
        if !self.recorder.is_off() && executed_instructions > 0 {
            // Flush the trailing partial window so measured samples cover
            // the full phase (the recorder skips this if the last sample
            // already landed exactly here).
            self.take_sample(executed_instructions, false);
        }
        let cycles = self.cores.iter().map(|c| c.clock).max().unwrap_or(0);
        let (accesses, misses) = self.controller.demand_stats();
        let mut stats = self.controller.stats();
        stats.merge(&self.os_stats);
        let stall: u64 = self.cores.iter().map(|c| c.stall_cycles).sum();
        stats.add("core_stall_cycles", stall);
        let tlb_misses: u64 = self.cores.iter().map(|c| c.tlb.misses()).sum();
        stats.add("tlb_misses", tlb_misses);
        stats.add("pte_updates_applied", self.page_table.pte_update_count());
        stats.add(
            "in_dram_row_hit_pct",
            (self.dram.in_package.row_hit_rate() * 100.0) as u64,
        );
        stats.add("in_dram_refreshes", self.dram.in_package.refresh_count());
        stats.add("off_dram_refreshes", self.dram.off_package.refresh_count());
        stats.add(
            "in_dram_write_drains",
            self.dram.in_package.write_drain_count(),
        );
        stats.add(
            "off_dram_write_drains",
            self.dram.off_package.write_drain_count(),
        );
        // Traffic-conservation counters (cumulative over warm-up + measured
        // phase): what the designs planned, what the devices logged at issue,
        // what the channels transferred, and what is still queued/untimed.
        // Invariants (asserted by the cross-design conservation test):
        //   planned == device - untimed,
        //   device  == transferred + pending + untimed.
        {
            use banshee_common::DramKind::{InPackage, OffPackage};
            let inp = self.dram.device(InPackage);
            let off = self.dram.device(OffPackage);
            stats.add("plan_bytes_in_package", self.planned.total(InPackage));
            stats.add("plan_bytes_off_package", self.planned.total(OffPackage));
            stats.add("device_bytes_in_package", inp.traffic().total(InPackage));
            stats.add("device_bytes_off_package", off.traffic().total(OffPackage));
            stats.add(
                "transferred_bytes_in_package",
                inp.transferred_traffic().total(InPackage),
            );
            stats.add(
                "transferred_bytes_off_package",
                off.transferred_traffic().total(OffPackage),
            );
            stats.add(
                "pending_write_bytes_in_package",
                inp.pending_write_traffic().total(InPackage),
            );
            stats.add(
                "pending_write_bytes_off_package",
                off.pending_write_traffic().total(OffPackage),
            );
            stats.add(
                "untimed_bytes_in_package",
                inp.untimed_traffic().total(InPackage),
            );
            stats.add(
                "untimed_bytes_off_package",
                off.untimed_traffic().total(OffPackage),
            );
        }

        let result = SimResult {
            design: self.controller.name().to_string(),
            workload: workload_name.to_string(),
            cores: self.config.cores,
            instructions: executed_instructions.saturating_sub(baseline.instructions),
            cycles: cycles.saturating_sub(baseline.cycles),
            dram_cache_accesses: accesses.saturating_sub(baseline.dram_cache_accesses),
            dram_cache_misses: misses.saturating_sub(baseline.dram_cache_misses),
            traffic: self.dram.combined_traffic().since(&baseline.traffic),
            llc_misses: self
                .hierarchy
                .llc_miss_count()
                .saturating_sub(baseline.llc_misses),
            stats,
        };
        self.finish_telemetry(&result, cycles);
        result
    }

    /// Turn the recorder into a report and hand it to the configured
    /// outputs. I/O failures degrade to a stderr warning — telemetry never
    /// fails a run.
    fn finish_telemetry(&mut self, result: &SimResult, final_cycles: Cycle) {
        let Recorder::On(rec) = std::mem::take(&mut self.recorder) else {
            return;
        };
        let report = rec.into_report(
            &result.design,
            &result.workload,
            self.config.warmup_instructions,
            result.instructions,
            final_cycles,
            &result.traffic,
        );
        if let Some((cell, collector)) = self.profile_out.take() {
            if let Ok(mut cells) = collector.lock() {
                cells.push(CellProfile {
                    cell,
                    profile: report.profile.clone(),
                });
            }
        }
        if let Some(sink) = self.telemetry_sink.take() {
            if let Err(err) = sink.export(&report) {
                eprintln!("[telemetry] warning: {err} (run results are unaffected)");
            }
        }
    }
}

/// Counter values at the end of warm-up, subtracted from the end-of-run
/// values so the result covers only the measured phase.
#[derive(Debug, Clone, Default)]
struct MeasurementBaseline {
    instructions: u64,
    cycles: Cycle,
    traffic: banshee_common::TrafficStats,
    dram_cache_accesses: u64,
    dram_cache_misses: u64,
    llc_misses: u64,
}

/// Convenience: run one (design, workload) pair under a configuration.
pub fn run_one(config: SimConfig, workload: &dyn TraceFactory) -> SimResult {
    let name = workload.name();
    System::new(config, workload).run(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use banshee_common::{DramKind, MemSize, TrafficClass};
    use banshee_dcache::DramCacheDesign;
    use banshee_workloads::{SpecProgram, Workload, WorkloadKind};

    fn workload() -> Workload {
        Workload::new(WorkloadKind::Spec(SpecProgram::Mcf), 16 << 20, 3)
    }

    fn run(design: DramCacheDesign) -> SimResult {
        run_one(SimConfig::test_default(design), &workload())
    }

    #[test]
    fn nocache_uses_only_off_package_dram() {
        let r = run(DramCacheDesign::NoCache);
        // The measured phase covers the 400 k budget up to per-core boundary
        // slack: the warm-up snapshot and the run cut-off both land mid
        // trace access, and which core crosses the line depends on DRAM
        // timing.
        assert!(r.instructions >= 399_000, "{}", r.instructions);
        assert!(r.cycles > 0);
        assert_eq!(r.traffic.total(DramKind::InPackage), 0);
        assert!(r.traffic.total(DramKind::OffPackage) > 0);
    }

    #[test]
    fn cacheonly_uses_only_in_package_dram() {
        let r = run(DramCacheDesign::CacheOnly);
        assert_eq!(r.traffic.total(DramKind::OffPackage), 0);
        assert!(r.traffic.total(DramKind::InPackage) > 0);
        assert_eq!(r.dram_cache_misses, 0);
    }

    #[test]
    fn cacheonly_outperforms_nocache() {
        let no = run(DramCacheDesign::NoCache);
        let only = run(DramCacheDesign::CacheOnly);
        assert!(
            only.speedup_over(&no) > 1.2,
            "CacheOnly should comfortably beat NoCache: {}",
            only.speedup_over(&no)
        );
    }

    #[test]
    fn banshee_runs_and_produces_hits() {
        let r = run(DramCacheDesign::Banshee);
        assert!(r.dram_cache_accesses > 0);
        assert!(r.traffic.total(DramKind::InPackage) > 0);
        assert!(r.dram_cache_miss_rate() < 1.0, "some accesses should hit");
        assert!(r.stats.get("banshee_replacements") > 0);
    }

    #[test]
    fn alloy_pays_tag_traffic_banshee_does_not() {
        let alloy = run(DramCacheDesign::Alloy {
            fill_probability: 0.1,
        });
        let banshee = run(DramCacheDesign::Banshee);
        let alloy_tag = alloy.bytes_per_instr(DramKind::InPackage, TrafficClass::Tag);
        let banshee_tag = banshee.bytes_per_instr(DramKind::InPackage, TrafficClass::Tag);
        assert!(alloy_tag > 0.0);
        assert!(
            banshee_tag < alloy_tag * 0.2,
            "Banshee tag traffic {banshee_tag} should be far below Alloy {alloy_tag}"
        );
    }

    #[test]
    fn unison_replacement_traffic_exceeds_banshee() {
        let unison = run(DramCacheDesign::Unison);
        let banshee = run(DramCacheDesign::Banshee);
        let u = unison.bytes_per_instr(DramKind::InPackage, TrafficClass::Replacement)
            + unison.bytes_per_instr(DramKind::OffPackage, TrafficClass::Replacement);
        let b = banshee.bytes_per_instr(DramKind::InPackage, TrafficClass::Replacement)
            + banshee.bytes_per_instr(DramKind::OffPackage, TrafficClass::Replacement);
        assert!(
            b < u,
            "Banshee replacement bytes/instr ({b:.3}) should be below Unison ({u:.3})"
        );
    }

    #[test]
    fn banshee_triggers_lazy_coherence() {
        // A workload with enough hot pages to cause replacements will
        // eventually fill the tag buffer and trigger PTE updates.
        let mut cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        cfg.total_instructions = 1_500_000;
        let r = run_one(cfg, &workload());
        assert!(
            r.stats.get("banshee_tag_buffer_flushes") > 0,
            "expected at least one tag-buffer flush; stats: {:?}",
            r.stats
        );
        assert!(r.stats.get("tlb_shootdowns") > 0);
        assert!(r.stats.get("pte_entries_updated") > 0);
    }

    #[test]
    fn hma_epochs_migrate_pages() {
        let r = run(DramCacheDesign::Hma);
        assert!(r.stats.get("hma_intervals") > 0);
        // Migration requires stalls of all cores.
        if r.stats.get("hma_migrations_in") > 0 {
            assert!(r.stats.get("stall_all_cycles") > 0);
        }
    }

    #[test]
    fn resumed_run_is_byte_identical_to_cold() {
        // The acceptance bar of the snapshot subsystem: resuming from a
        // warmed image must reproduce the cold run's SimResult *byte for
        // byte*. HMA is included because its residency set survives via a
        // mutation journal, the subtlest of the persisted structures.
        for design in [DramCacheDesign::Banshee, DramCacheDesign::Hma] {
            let w = workload();
            let cfg = SimConfig::test_default(design);
            let cold = run_one(cfg.clone(), &w);
            let cold_json = serde_json::to_string_pretty(&cold).unwrap();

            let mut sys = System::new(cfg.clone(), &w);
            let warmed = sys.warm_up().expect("non-empty run");
            let image = sys.warmed_image(&w.name(), warmed);

            let (resumed, executed) = System::resume_warmed(cfg, &w, &w.name(), &image).unwrap();
            assert_eq!(executed, warmed);
            // save → restore → save is byte-identical.
            assert_eq!(resumed.warmed_image(&w.name(), executed), image);
            let result = resumed.run_measured(&w.name(), Some(executed));
            assert_eq!(serde_json::to_string_pretty(&result).unwrap(), cold_json);
        }
    }

    #[test]
    fn warmed_image_is_shared_across_measurement_budgets() {
        // total_instructions is the only post-warm-up knob: an image captured
        // under one budget must resume — and reproduce the cold result —
        // under another.
        let w = workload();
        let cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        let mut sys = System::new(cfg.clone(), &w);
        let warmed = sys.warm_up().unwrap();
        let image = sys.warmed_image(&w.name(), warmed);

        let mut shorter = cfg.clone();
        shorter.total_instructions /= 2;
        let (resumed, executed) =
            System::resume_warmed(shorter.clone(), &w, &w.name(), &image).unwrap();
        let resumed_result = resumed.run_measured(&w.name(), Some(executed));
        let cold = run_one(shorter, &w);
        assert_eq!(
            serde_json::to_string_pretty(&resumed_result).unwrap(),
            serde_json::to_string_pretty(&cold).unwrap()
        );
    }

    #[test]
    fn stale_or_foreign_images_are_typed_errors() {
        let w = workload();
        let cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        let mut sys = System::new(cfg.clone(), &w);
        let warmed = sys.warm_up().unwrap();
        let image = sys.warmed_image(&w.name(), warmed);

        // An image captured by an older model revision is stale, never
        // silently resumed. Bytes 12..16 hold the header's revision field
        // (after the 8-byte magic and 4-byte format version).
        let mut stale = image.clone();
        stale[12..16].copy_from_slice(&(SimConfig::MODEL_REVISION + 1).to_le_bytes());
        match System::resume_warmed(cfg.clone(), &w, &w.name(), &stale) {
            Err(SnapshotError::StaleRevision { found, expected }) => {
                assert_eq!(found, SimConfig::MODEL_REVISION + 1);
                assert_eq!(expected, SimConfig::MODEL_REVISION);
            }
            Err(other) => panic!("expected StaleRevision, got {other:?}"),
            Ok(_) => panic!("expected StaleRevision, got Ok"),
        }

        // A different seed is a different warmed state.
        let mut other = cfg.clone();
        other.seed += 1;
        assert!(matches!(
            System::resume_warmed(other, &w, &w.name(), &image),
            Err(SnapshotError::KeyMismatch { .. })
        ));

        // Truncation is a typed error, not a panic.
        assert!(System::resume_warmed(cfg, &w, &w.name(), &image[..image.len() - 9]).is_err());
    }

    #[test]
    fn empty_run_yields_empty_result() {
        let mut cfg = SimConfig::test_default(DramCacheDesign::NoCache);
        cfg.warmup_instructions = 0;
        cfg.total_instructions = 0;
        let r = run_one(cfg, &workload());
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = run(DramCacheDesign::Banshee);
        let b = run(DramCacheDesign::Banshee);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram_cache_misses, b.dram_cache_misses);
        assert_eq!(a.traffic, b.traffic);
    }

    /// The sharded-execution acceptance bar: any shard count produces a
    /// `SimResult` byte-identical to the sequential path, across designs
    /// with very different plan shapes (NoCache: pure off-package; Banshee:
    /// background fills + side effects; HMA: epoch migrations + flushes).
    #[test]
    fn sharded_run_is_byte_identical_to_sequential() {
        for design in [
            DramCacheDesign::NoCache,
            DramCacheDesign::Banshee,
            DramCacheDesign::Hma,
        ] {
            let w = workload();
            let cfg = SimConfig::test_default(design);
            let sequential = run_one(cfg.clone(), &w);
            let reference = serde_json::to_string_pretty(&sequential).unwrap();
            for shards in [2, 4] {
                let mut sys = System::new(cfg.clone(), &w);
                sys.set_shards(shards);
                let result = sys.run(&w.name());
                assert_eq!(
                    serde_json::to_string_pretty(&result).unwrap(),
                    reference,
                    "{design:?} diverged at {shards} shards"
                );
            }
        }
    }

    /// A warmed image captured by a sharded run equals the sequential one
    /// (snapshots are shard-count-agnostic), and resuming it sequentially
    /// or sharded reproduces the same result.
    #[test]
    fn sharded_snapshots_are_shard_count_agnostic() {
        let w = workload();
        let cfg = SimConfig::test_default(DramCacheDesign::Banshee);

        let mut seq = System::new(cfg.clone(), &w);
        let warmed = seq.warm_up().expect("non-empty run");
        let image = seq.warmed_image(&w.name(), warmed);
        let reference =
            serde_json::to_string_pretty(&seq.run_measured(&w.name(), Some(warmed))).unwrap();

        // Sharded warm-up captures the identical image.
        let mut sharded = System::new(cfg.clone(), &w);
        sharded.set_shards(3);
        let warmed_sharded = sharded.warm_up().expect("non-empty run");
        assert_eq!(warmed_sharded, warmed);
        assert_eq!(sharded.warmed_image(&w.name(), warmed_sharded), image);

        // A sequentially captured image resumed under sharding reproduces
        // the sequential result byte for byte.
        let (mut resumed, executed) = System::resume_warmed(cfg, &w, &w.name(), &image).unwrap();
        resumed.set_shards(2);
        let result = resumed.run_measured(&w.name(), Some(executed));
        assert_eq!(serde_json::to_string_pretty(&result).unwrap(), reference);
    }

    /// Telemetry stays pure under sharding: recorder on + shards on changes
    /// nothing about the result.
    #[test]
    fn sharded_run_with_telemetry_matches_sequential_without() {
        let w = workload();
        let cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        let plain = run_one(cfg.clone(), &w);
        let mut sys = System::new(cfg, &w);
        sys.set_shards(2);
        sys.enable_telemetry(TelemetryConfig::default());
        let sharded = sys.run(&w.name());
        assert_eq!(
            serde_json::to_string_pretty(&sharded).unwrap(),
            serde_json::to_string_pretty(&plain).unwrap()
        );
    }

    #[test]
    fn large_page_mode_runs() {
        let mut cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        cfg.large_pages = true;
        cfg.dcache.capacity = MemSize::mib(8);
        let r = run_one(cfg, &workload());
        assert!(r.instructions > 0);
        assert!(r.traffic.grand_total() > 0);
    }

    #[test]
    fn batman_wrapper_runs() {
        let mut cfg = SimConfig::test_default(DramCacheDesign::Banshee);
        cfg.use_batman = true;
        let r = run_one(cfg, &workload());
        assert!(r.design.contains("BATMAN"));
        assert!(r.instructions > 0);
    }
}
