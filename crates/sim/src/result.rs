//! Results of one simulation run.

use banshee_common::{Cycle, DramKind, StatSet, TrafficClass, TrafficStats};
use serde::{Deserialize, Serialize};

/// Everything the experiment harness needs from one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Design label ("Banshee", "Alloy 0.1", ...).
    pub design: String,
    /// Workload label ("pagerank", "mcf", ...).
    pub workload: String,
    /// Number of cores simulated.
    pub cores: usize,
    /// Total instructions executed across all cores.
    pub instructions: u64,
    /// Cycles elapsed (maximum core clock at the end of the run).
    pub cycles: Cycle,
    /// DRAM-cache demand accesses (LLC misses routed through the design).
    pub dram_cache_accesses: u64,
    /// DRAM-cache demand misses.
    pub dram_cache_misses: u64,
    /// Raw DRAM traffic by (device, class).
    pub traffic: TrafficStats,
    /// LLC misses (all of which become DRAM-cache accesses).
    pub llc_misses: u64,
    /// Design-specific named counters.
    pub stats: StatSet,
}

impl SimResult {
    /// Aggregate instructions per cycle (all cores together).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to a baseline run of the *same workload*
    /// (the paper normalizes to NoCache).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / baseline.ipc()
        }
    }

    /// DRAM-cache miss rate (misses / demand accesses).
    pub fn dram_cache_miss_rate(&self) -> f64 {
        if self.dram_cache_accesses == 0 {
            0.0
        } else {
            self.dram_cache_misses as f64 / self.dram_cache_accesses as f64
        }
    }

    /// DRAM-cache misses per kilo-instruction (the red dots of Figure 4).
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.dram_cache_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Bytes per instruction on one DRAM for one traffic class
    /// (Figures 5, 6 and 9).
    pub fn bytes_per_instr(&self, dram: DramKind, class: TrafficClass) -> f64 {
        self.traffic.bytes_per_instr(dram, class, self.instructions)
    }

    /// Total bytes per instruction on one DRAM.
    pub fn total_bytes_per_instr(&self, dram: DramKind) -> f64 {
        self.traffic.total_bytes_per_instr(dram, self.instructions)
    }

    /// Full per-class breakdown for one DRAM in display order.
    pub fn breakdown(&self, dram: DramKind) -> Vec<(TrafficClass, f64)> {
        TrafficClass::ALL
            .iter()
            .map(|&c| (c, self.bytes_per_instr(dram, c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(instructions: u64, cycles: Cycle) -> SimResult {
        SimResult {
            design: "test".into(),
            workload: "wl".into(),
            cores: 4,
            instructions,
            cycles,
            dram_cache_accesses: 100,
            dram_cache_misses: 25,
            traffic: TrafficStats::new(),
            llc_misses: 100,
            stats: StatSet::new(),
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let fast = result(1000, 500);
        let slow = result(1000, 1000);
        assert!((fast.ipc() - 2.0).abs() < 1e-12);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_and_mpki() {
        let r = result(10_000, 1);
        assert!((r.dram_cache_miss_rate() - 0.25).abs() < 1e-12);
        assert!((r.mpki() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_breakdown_shapes() {
        let mut r = result(100, 100);
        r.traffic
            .add(DramKind::InPackage, TrafficClass::HitData, 6_400);
        assert!(
            (r.bytes_per_instr(DramKind::InPackage, TrafficClass::HitData) - 64.0).abs() < 1e-9
        );
        assert_eq!(
            r.breakdown(DramKind::InPackage).len(),
            TrafficClass::ALL.len()
        );
        assert!((r.total_bytes_per_instr(DramKind::InPackage) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = result(123_456, 78_910);
        r.traffic
            .add(DramKind::InPackage, TrafficClass::HitData, 4096);
        r.traffic
            .add(DramKind::OffPackage, TrafficClass::Writeback, 64);
        r.stats.add("tag_buffer_flushes", 3);
        r.stats.add("tlb_shootdowns", 17);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: SimResult = serde_json::from_str(&json).unwrap();
        // Byte-identical re-serialization is what lets the result store
        // return cached cells indistinguishable from fresh runs.
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
        assert_eq!(back.instructions, r.instructions);
        assert_eq!(back.traffic, r.traffic);
        assert_eq!(back.stats.get("tlb_shootdowns"), 17);
    }

    #[test]
    fn zero_division_guards() {
        let r = result(0, 0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.mpki(), 0.0);
        let z = result(10, 10);
        assert_eq!(z.speedup_over(&r), 0.0);
    }
}
