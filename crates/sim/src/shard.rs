//! Deterministic intra-cell parallelism: shard workers for one simulation.
//!
//! A [`ShardSession`] splits one running [`crate::System`] across OS
//! threads without changing a single byte of its results. The seams are
//! the two places where the sequential hot loop spends time on state that
//! nothing else reads mid-stream:
//!
//! * **DRAM channel timing domains.** Each [`banshee_dram::Channel`] is a
//!   self-contained state machine (banks, row buffers, write queue,
//!   refresh phase) whose evolution depends only on the sequence of
//!   operations issued *to that channel*, in issue order — not on global
//!   time or on any other channel. The coordinator therefore routes each
//!   DRAM operation to the worker owning its channel over a bounded SPSC
//!   command ring; per-ring FIFO order preserves per-channel issue order,
//!   which is the only order that matters.
//! * **Trace pre-generation.** A [`banshee_workloads::TraceGenerator`] is
//!   a pure function of the workload definition — zero feedback from
//!   simulation state — so workers run the generators ahead of demand and
//!   stream accesses back through per-core rings.
//!
//! Everything with cross-cutting order sensitivity — the laggard scan,
//! address translation and the shared page table, the SRAM hierarchy with
//! its back-invalidations, the DRAM-cache design state, the OS side
//! effects and the RNG that places them — stays in the coordinator, which
//! is exactly the sequential code path.
//!
//! **Determinism argument.** Results are byte-identical to `--shards 1`
//! because (a) the coordinator issues operations in the sequential order
//! and tags each with its issue cycle, (b) each channel sees its exact
//! sequential op sequence via ring FIFO, (c) critical-path operations
//! block the coordinator for their finish cycle (a strict round trip, so
//! timing-dependent control flow is bit-equal), and (d) every aggregate
//! the workers accumulate (access counts, latency sums, telemetry gauges)
//! is a commutative u64 sum merged in a fixed worker order at barriers.
//! Barriers are needed only where channel state is *read* (telemetry
//! samples) or reclaimed (session end); epoch maintenance reads no DRAM
//! state and needs none.

use banshee_common::spsc::{self, Consumer, Producer};
use banshee_common::telemetry::DramTelemetry;
use banshee_common::{Addr, Cycle, DramKind, FastDivMod, TrafficClass, PAGE_SIZE};
use banshee_dram::{Channel, DualDram};
use banshee_workloads::{MemoryAccess, TraceGenerator};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::core_model::CoreModel;

/// Command-ring capacity per worker. Large enough that background
/// (fire-and-forget) bursts rarely stall the coordinator, small enough to
/// stay cache-resident.
const COMMAND_RING_CAPACITY: usize = 2048;
/// Pre-generated accesses buffered per core.
const TRACE_RING_CAPACITY: usize = 512;
/// Trace accesses a worker generates per scheduling quantum, so a long
/// pre-generation burst never starves the command ring.
const TRACE_BATCH: usize = 64;

fn kind_index(kind: DramKind) -> usize {
    match kind {
        DramKind::InPackage => 0,
        DramKind::OffPackage => 1,
    }
}

/// One fixed-size message on a worker's command ring.
#[derive(Debug, Clone, Copy)]
enum Command {
    /// Service a DRAM operation on worker-local channel `slot`.
    /// `seq != 0` marks a critical-path operation: publish the finish
    /// cycle under sequence number `seq` in the response slot.
    Access {
        slot: u32,
        kind: DramKind,
        addr: Addr,
        bytes: u64,
        class: TrafficClass,
        write: bool,
        now: Cycle,
        seq: u64,
    },
    /// Telemetry barrier: report partial DRAM gauges at cycle `now` over
    /// the control channel. Ring order guarantees every prior operation
    /// has been serviced first.
    Telemetry { now: Cycle },
    /// Drain, return all owned state over the control channel, and exit.
    Shutdown,
}

/// Single-entry response slot for critical-path operations. The
/// coordinator never has more than one outstanding critical op per worker,
/// so a sequence-stamped pair of atomics is enough: the worker publishes
/// `finish` first, then releases `seq`; the coordinator acquires `seq` and
/// the finish value becomes visible with it.
struct RespSlot {
    seq: AtomicU64,
    finish: AtomicU64,
}

/// Control-plane message (rare path; allocation is fine here).
enum Control {
    Telemetry([DramTelemetry; 2]),
    Done(Box<WorkerReturn>),
}

/// Everything a worker owns, handed back at session end.
struct WorkerReturn {
    /// `(global channel index, channel)` in this worker's slot order.
    channels: Vec<(usize, Channel)>,
    /// Per device kind: `(access_count, total_latency)` deltas.
    serviced: [(u64, u64); 2],
    /// `(core id, generator)` for every trace feed this worker ran.
    generators: Vec<(usize, Box<dyn TraceGenerator>)>,
}

/// One trace feed: a core's generator plus the ring it streams into.
struct Feed {
    core: usize,
    gen: Box<dyn TraceGenerator>,
    ring: Producer<MemoryAccess>,
}

/// Worker-thread state: a subset of DRAM channels and a subset of trace
/// generators.
struct Worker {
    commands: Consumer<Command>,
    resp: Arc<RespSlot>,
    ctrl: mpsc::Sender<Control>,
    stop: Arc<AtomicBool>,
    /// `(global index, channel)` indexed by worker-local slot.
    channels: Vec<(usize, Channel)>,
    feeds: Vec<Feed>,
    serviced: [(u64, u64); 2],
    /// Global channel indices below this belong to the in-package device.
    in_package_channels: usize,
}

impl Worker {
    fn run(mut self) {
        let mut spins = 0u32;
        loop {
            let mut did_work = false;
            while let Some(cmd) = self.commands.try_pop() {
                did_work = true;
                match cmd {
                    Command::Access {
                        slot,
                        kind,
                        addr,
                        bytes,
                        class,
                        write,
                        now,
                        seq,
                    } => {
                        let ch = &mut self.channels[slot as usize].1;
                        let out = if write {
                            ch.write(now, addr, bytes, class)
                        } else {
                            ch.read(now, addr, bytes, class)
                        };
                        let k = kind_index(kind);
                        self.serviced[k].0 += 1;
                        self.serviced[k].1 += out.finish.saturating_sub(now);
                        if seq != 0 {
                            self.resp.finish.store(out.finish, Ordering::Relaxed);
                            self.resp.seq.store(seq, Ordering::Release);
                        }
                    }
                    Command::Telemetry { now } => {
                        let mut partial = [DramTelemetry::default(); 2];
                        for (global, ch) in &self.channels {
                            let k = kind_index(self.channel_kind(*global));
                            let p = &mut partial[k];
                            p.read_queue += ch.read_queue_occupancy(now) as u64;
                            p.write_queue += ch.pending_writes() as u64;
                            p.accesses += ch.access_count();
                            p.row_hits += ch.row_hit_count();
                            p.refreshes += ch.refresh_count();
                            p.write_drains += ch.write_drain_count();
                        }
                        let _ = self.ctrl.send(Control::Telemetry(partial));
                    }
                    Command::Shutdown => {
                        let ret = WorkerReturn {
                            channels: std::mem::take(&mut self.channels),
                            serviced: self.serviced,
                            generators: self.feeds.drain(..).map(|f| (f.core, f.gen)).collect(),
                        };
                        let _ = self.ctrl.send(Control::Done(Box::new(ret)));
                        return;
                    }
                }
            }
            // Pre-generate trace accesses while the command ring is idle.
            let mut generated = 0usize;
            for feed in &mut self.feeds {
                while generated < TRACE_BATCH && feed.ring.len() < feed.ring.capacity() {
                    feed.ring
                        .try_push(feed.gen.next_access())
                        .expect("sole producer checked for space");
                    generated += 1;
                }
            }
            if generated > 0 {
                did_work = true;
            }
            if did_work {
                spins = 0;
            } else {
                if self.stop.load(Ordering::Acquire) {
                    // Abnormal teardown (coordinator panicked): exit without
                    // returning state — the session is already lost.
                    return;
                }
                spsc::backoff(&mut spins);
            }
        }
    }

    /// Device kind of a global channel index (set at session start).
    fn channel_kind(&self, global: usize) -> DramKind {
        if global < self.in_package_channels {
            DramKind::InPackage
        } else {
            DramKind::OffPackage
        }
    }
}

/// Coordinator-side handle for one worker.
struct WorkerHandle {
    commands: Producer<Command>,
    resp: Arc<RespSlot>,
    ctrl: mpsc::Receiver<Control>,
    join: Option<JoinHandle<()>>,
    next_seq: u64,
}

/// A live sharded-execution session over one [`crate::System`]'s DRAM
/// channels and trace generators. Created by the system when it enters a
/// hot loop with `shards > 1`, torn down (state reclaimed) before anything
/// reads DRAM channel state or captures a snapshot.
pub(crate) struct ShardSession {
    workers: Vec<WorkerHandle>,
    /// `(worker, slot)` for every global channel index.
    routes: Vec<(u32, u32)>,
    /// Global channel indices 0..in_package_channels belong to the
    /// in-package device, the rest to the off-package device.
    in_package_channels: usize,
    /// Page-interleaved channel routing, mirroring
    /// [`banshee_dram::DramDevice::channel_for`] per device.
    in_div: FastDivMod,
    off_div: FastDivMod,
    poison: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    finished: bool,
}

impl std::fmt::Debug for ShardSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSession")
            .field("workers", &self.workers.len())
            .field("channels", &self.routes.len())
            .finish()
    }
}

impl ShardSession {
    /// Detach DRAM channels and trace generators from `dram` / `cores` and
    /// spawn `shards - 1` worker threads (the coordinator is the final
    /// shard). `shards` must be at least 2.
    pub(crate) fn start(shards: usize, dram: &mut DualDram, cores: &mut [CoreModel]) -> Self {
        assert!(shards >= 2, "a shard session needs at least one worker");
        let nworkers = shards - 1;
        let poison = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));

        let in_channels = dram.in_package.detach_channels();
        let off_channels = dram.off_package.detach_channels();
        let in_package_channels = in_channels.len();
        let in_div = FastDivMod::new(in_channels.len() as u64);
        let off_div = FastDivMod::new(off_channels.len() as u64);

        // Global channel order: in-package channels first, then
        // off-package; round-robin over workers so both devices spread.
        let mut routes = Vec::new();
        let mut per_worker_channels: Vec<Vec<(usize, Channel)>> =
            (0..nworkers).map(|_| Vec::new()).collect();
        for (global, ch) in in_channels.into_iter().chain(off_channels).enumerate() {
            let worker = global % nworkers;
            let slot = per_worker_channels[worker].len() as u32;
            routes.push((worker as u32, slot));
            per_worker_channels[worker].push((global, ch));
        }

        // Trace feeds: core `c` is generated by worker `c % nworkers`.
        let mut per_worker_feeds: Vec<Vec<Feed>> = (0..nworkers).map(|_| Vec::new()).collect();
        for (core_id, core) in cores.iter_mut().enumerate() {
            let (tx, rx) = spsc::ring::<MemoryAccess>(TRACE_RING_CAPACITY);
            let gen = core.trace.begin_sharded(rx, Arc::clone(&poison));
            per_worker_feeds[core_id % nworkers].push(Feed {
                core: core_id,
                gen,
                ring: tx,
            });
        }

        let mut workers = Vec::with_capacity(nworkers);
        for (index, (channels, feeds)) in per_worker_channels
            .into_iter()
            .zip(per_worker_feeds)
            .enumerate()
        {
            let (cmd_tx, cmd_rx) = spsc::ring::<Command>(COMMAND_RING_CAPACITY);
            let resp = Arc::new(RespSlot {
                seq: AtomicU64::new(0),
                finish: AtomicU64::new(0),
            });
            let (ctrl_tx, ctrl_rx) = mpsc::channel();
            let worker = Worker {
                commands: cmd_rx,
                resp: Arc::clone(&resp),
                ctrl: ctrl_tx,
                stop: Arc::clone(&stop),
                channels,
                feeds,
                serviced: [(0, 0); 2],
                in_package_channels,
            };
            let poison_flag = Arc::clone(&poison);
            let join = std::thread::Builder::new()
                .name(format!("banshee-shard-{index}"))
                .spawn(move || {
                    if catch_unwind(AssertUnwindSafe(|| worker.run())).is_err() {
                        poison_flag.store(true, Ordering::Release);
                    }
                })
                .expect("spawn shard worker");
            workers.push(WorkerHandle {
                commands: cmd_tx,
                resp,
                ctrl: ctrl_rx,
                join: Some(join),
                next_seq: 0,
            });
        }

        ShardSession {
            workers,
            routes,
            in_package_channels,
            in_div,
            off_div,
            poison,
            stop,
            finished: false,
        }
    }

    /// Issue one DRAM operation to the worker owning its channel.
    /// `rounded_bytes` is pre-rounded by the coordinator (also used for
    /// issue-side traffic accounting). For critical-path operations this
    /// blocks for the finish cycle; background operations return `now`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn access(
        &mut self,
        kind: DramKind,
        addr: Addr,
        bytes: u64,
        class: TrafficClass,
        write: bool,
        now: Cycle,
        critical: bool,
    ) -> Cycle {
        let page = addr.raw() / PAGE_SIZE;
        let global = match kind {
            DramKind::InPackage => self.in_div.rem(page) as usize,
            DramKind::OffPackage => self.in_package_channels + self.off_div.rem(page) as usize,
        };
        let (worker, slot) = self.routes[global];
        let wk = &mut self.workers[worker as usize];
        let seq = if critical {
            wk.next_seq += 1;
            wk.next_seq
        } else {
            0
        };
        let cmd = Command::Access {
            slot,
            kind,
            addr,
            bytes,
            class,
            write,
            now,
            seq,
        };
        let poison = &self.poison;
        if !wk.commands.push(cmd, || poison.load(Ordering::Acquire)) {
            panic!("shard worker {worker} panicked (command ring stalled)");
        }
        if !critical {
            return now;
        }
        let mut spins = 0u32;
        loop {
            if wk.resp.seq.load(Ordering::Acquire) == seq {
                return wk.resp.finish.load(Ordering::Relaxed);
            }
            if poison.load(Ordering::Acquire) {
                panic!("shard worker {worker} panicked");
            }
            spsc::backoff(&mut spins);
        }
    }

    /// Telemetry barrier: every worker reports its channels' gauges at
    /// cycle `now` after servicing everything issued before this call.
    /// Partials are merged in fixed worker order (commutative sums, so the
    /// totals equal the sequential device-level sums). Returns
    /// `(in_package, off_package)` telemetry.
    pub(crate) fn sample(&mut self, now: Cycle) -> (DramTelemetry, DramTelemetry) {
        for wk in &mut self.workers {
            let poison = &self.poison;
            if !wk.commands.push(Command::Telemetry { now }, || {
                poison.load(Ordering::Acquire)
            }) {
                panic!("shard worker panicked (telemetry barrier)");
            }
        }
        let mut total = [DramTelemetry::default(); 2];
        for (index, wk) in self.workers.iter().enumerate() {
            match recv_ctrl(wk, &self.poison, index) {
                Control::Telemetry(partial) => {
                    for (t, p) in total.iter_mut().zip(partial) {
                        t.read_queue += p.read_queue;
                        t.write_queue += p.write_queue;
                        t.accesses += p.accesses;
                        t.row_hits += p.row_hits;
                        t.refreshes += p.refreshes;
                        t.write_drains += p.write_drains;
                    }
                }
                Control::Done(_) => unreachable!("worker returned state at a telemetry barrier"),
            }
        }
        (total[0], total[1])
    }

    /// Tear the session down: drain every ring, reclaim channels (in their
    /// original device positions), merge per-worker service accounting in
    /// fixed worker order, and hand each trace generator back to its core's
    /// cursor. Afterwards `dram` and `cores` are indistinguishable from a
    /// sequential run.
    pub(crate) fn finish(mut self, dram: &mut DualDram, cores: &mut [CoreModel]) {
        let in_count = self.in_package_channels;
        let off_count = self.routes.len() - in_count;
        let mut in_slots: Vec<Option<Channel>> = (0..in_count).map(|_| None).collect();
        let mut off_slots: Vec<Option<Channel>> = (0..off_count).map(|_| None).collect();
        for index in 0..self.workers.len() {
            {
                let wk = &mut self.workers[index];
                let poison = &self.poison;
                if !wk
                    .commands
                    .push(Command::Shutdown, || poison.load(Ordering::Acquire))
                {
                    panic!("shard worker {index} panicked (shutdown)");
                }
            }
            let ret = loop {
                match recv_ctrl(&self.workers[index], &self.poison, index) {
                    Control::Done(ret) => break ret,
                    // A telemetry response can still be in flight only if
                    // the protocol was violated; there is no such path, but
                    // draining is harmless.
                    Control::Telemetry(_) => continue,
                }
            };
            for (global, ch) in ret.channels {
                if global < in_count {
                    in_slots[global] = Some(ch);
                } else {
                    off_slots[global - in_count] = Some(ch);
                }
            }
            let (in_serviced, off_serviced) = (ret.serviced[0], ret.serviced[1]);
            dram.in_package.merge_serviced(in_serviced.0, in_serviced.1);
            dram.off_package
                .merge_serviced(off_serviced.0, off_serviced.1);
            for (core, gen) in ret.generators {
                cores[core].trace.end_sharded(gen);
            }
            if let Some(join) = self.workers[index].join.take() {
                let _ = join.join();
            }
        }
        dram.in_package.attach_channels(
            in_slots
                .into_iter()
                .map(|c| c.expect("every in-package channel returned"))
                .collect(),
        );
        dram.off_package.attach_channels(
            off_slots
                .into_iter()
                .map(|c| c.expect("every off-package channel returned"))
                .collect(),
        );
        self.finished = true;
    }
}

impl Drop for ShardSession {
    fn drop(&mut self) {
        if !self.finished {
            // Abnormal teardown (a coordinator panic unwound past the
            // session): tell workers to exit so they do not spin forever.
            // Channel and generator state is lost, but the run is already
            // dead.
            self.stop.store(true, Ordering::Release);
        }
    }
}

/// Receive one control message from a worker, converting a dead worker
/// into a panic instead of a hang.
fn recv_ctrl(wk: &WorkerHandle, poison: &AtomicBool, index: usize) -> Control {
    loop {
        match wk.ctrl.recv_timeout(Duration::from_millis(20)) {
            Ok(msg) => return msg,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if poison.load(Ordering::Acquire) {
                    panic!("shard worker {index} panicked");
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("shard worker {index} exited unexpectedly");
            }
        }
    }
}
