//! The multi-core system simulator that hosts the DRAM-cache designs.
//!
//! This is the reproduction's stand-in for ZSim (Section 5.1): a
//! trace-driven, timing-approximate model of the Table 2 machine —
//! 16 four-issue cores with private L1/L2 caches, a shared LLC, per-core
//! TLBs backed by one OS page table, and two DRAM devices (in-package and
//! off-package) with channel/bank/bus timing.
//!
//! The design focus is the one the paper's conclusions rest on: **DRAM
//! bandwidth**. Cores tolerate memory latency up to a bounded number of
//! outstanding LLC misses (an MLP window); past that they stall, so designs
//! that burn bandwidth on tags, speculative loads and page replacement slow
//! the machine down exactly the way the paper describes. See `DESIGN.md` for
//! the full substitution argument.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod core_model;
pub mod factory;
pub mod result;
mod shard;
pub mod system;

pub use config::SimConfig;
pub use factory::build_controller;
pub use result::SimResult;
pub use system::{run_one, System};
