//! Telemetry is pure observation: for every design, a run with the
//! recorder on must produce a `SimResult` byte-identical to the same run
//! with the recorder off, and the exported report must reconcile with the
//! final aggregates (measured sample deltas telescope to the result's
//! traffic and instruction counts).

use banshee_common::telemetry::{
    profile_collector, slug, EventKind, TelemetryConfig, TelemetryReport, TelemetrySink,
};
use banshee_common::TrafficClass;
use banshee_dcache::DramCacheDesign;
use banshee_sim::{run_one, SimConfig, SimResult, System};
use banshee_workloads::{SpecProgram, Workload, WorkloadKind};
use std::path::{Path, PathBuf};

fn workload() -> Workload {
    Workload::new(WorkloadKind::Spec(SpecProgram::Mcf), 16 << 20, 3)
}

fn test_config() -> TelemetryConfig {
    TelemetryConfig {
        interval_instructions: 50_000,
        ..TelemetryConfig::default()
    }
}

/// Run one design with telemetry enabled, exporting under `dir`.
fn run_with_telemetry(design: DramCacheDesign, dir: &Path) -> (SimResult, PathBuf) {
    let config = SimConfig::test_default(design);
    let w = workload();
    let name = w.name();
    let cell = slug(&config.design.label());
    let mut system = System::new(config, &w);
    system.enable_telemetry(test_config());
    let sink = TelemetrySink::new(dir, &cell);
    let json_path = sink.json_path();
    system.set_telemetry_sink(sink);
    let warmed = system.warm_up();
    (system.run_measured(&name, warmed), json_path)
}

fn read_report(path: &Path) -> TelemetryReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&text).expect("telemetry JSON parses back into a report")
}

fn traffic_total(t: &banshee_common::TrafficStats) -> u64 {
    t.grand_total()
}

#[test]
fn telemetry_on_results_are_byte_identical_for_every_design() {
    let dir = std::env::temp_dir().join(format!("banshee_tel_equiv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for design in DramCacheDesign::figure4_lineup() {
        let off = run_one(SimConfig::test_default(design), &workload());
        let (on, json_path) = run_with_telemetry(design, &dir);
        assert_eq!(
            serde_json::to_string_pretty(&off).unwrap(),
            serde_json::to_string_pretty(&on).unwrap(),
            "telemetry changed the {} result",
            off.design
        );

        // The exported report must be present, parse back, and reconcile
        // with the final (baseline-subtracted) aggregates.
        let report = read_report(&json_path);
        assert_eq!(report.design, on.design);
        assert!(!report.samples.is_empty(), "{}: no samples", on.design);
        assert!(
            report.samples.iter().any(|s| s.warmup),
            "{}: no warm-up samples",
            on.design
        );
        let measured: Vec<_> = report.samples.iter().filter(|s| !s.warmup).collect();
        assert!(!measured.is_empty(), "{}: no measured samples", on.design);
        let delta_instr: u64 = measured.iter().map(|s| s.delta_instructions).sum();
        assert_eq!(
            delta_instr, on.instructions,
            "{}: measured sample windows do not cover the measured phase",
            on.design
        );
        let delta_traffic: u64 = measured.iter().map(|s| traffic_total(&s.traffic)).sum();
        assert_eq!(
            delta_traffic,
            traffic_total(&on.traffic),
            "{}: measured sample traffic does not telescope to the result",
            on.design
        );
        // Per-class reconciliation, not just grand totals.
        for kind in banshee_common::DramKind::ALL {
            for class in TrafficClass::ALL {
                let sum: u64 = measured.iter().map(|s| s.traffic.bytes(kind, class)).sum();
                assert_eq!(
                    sum,
                    on.traffic.bytes(kind, class),
                    "{}: {kind:?}/{class:?} does not reconcile",
                    on.design
                );
            }
        }
        assert!(
            report
                .events
                .iter()
                .any(|e| e.kind == EventKind::MeasurementStart),
            "{}: missing the MeasurementStart boundary event",
            on.design
        );
        assert!(report.profile.total_seconds > 0.0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn model_revision_is_unchanged_by_telemetry() {
    // Telemetry must never perturb simulation semantics; the revision only
    // moves when results change.
    assert_eq!(SimConfig::MODEL_REVISION, 2);
}

#[test]
fn telemetry_config_is_not_key_material() {
    // The recorder is runtime state, not configuration: two identical
    // configs must share key material whether or not telemetry runs.
    let a = SimConfig::test_default(DramCacheDesign::Banshee);
    let b = SimConfig::test_default(DramCacheDesign::Banshee);
    assert_eq!(a.cache_key_material(), b.cache_key_material());
    assert!(
        !a.cache_key_material().to_lowercase().contains("telemetry"),
        "telemetry leaked into key material"
    );
}

#[test]
fn unwritable_sink_degrades_to_a_warning() {
    // Export failures must never fail the run: pointing the sink at a path
    // that cannot be created still yields the byte-identical result.
    let off = run_one(
        SimConfig::test_default(DramCacheDesign::NoCache),
        &workload(),
    );
    let config = SimConfig::test_default(DramCacheDesign::NoCache);
    let w = workload();
    let name = w.name();
    let mut system = System::new(config, &w);
    system.enable_telemetry(test_config());
    system.set_telemetry_sink(TelemetrySink::new(
        "/proc/banshee-no-such-dir/telemetry",
        "x",
    ));
    let warmed = system.warm_up();
    let on = system.run_measured(&name, warmed);
    assert_eq!(
        serde_json::to_string_pretty(&off).unwrap(),
        serde_json::to_string_pretty(&on).unwrap()
    );
}

#[test]
fn profile_collector_receives_one_profile_per_cell() {
    let collector = profile_collector();
    for design in [DramCacheDesign::NoCache, DramCacheDesign::Banshee] {
        let config = SimConfig::test_default(design);
        let w = workload();
        let name = w.name();
        let cell = slug(&config.design.label());
        let mut system = System::new(config, &w);
        system.enable_telemetry(test_config());
        system.set_profile_output(cell, collector.clone());
        let warmed = system.warm_up();
        system.run_measured(&name, warmed);
    }
    let profiles = collector.lock().unwrap();
    assert_eq!(profiles.len(), 2);
    assert_eq!(profiles[0].cell, "nocache");
    assert_eq!(profiles[1].cell, "banshee");
    for p in profiles.iter() {
        assert!(p.profile.total_seconds > 0.0, "{}: empty profile", p.cell);
        assert!(p.profile.entries.iter().any(|e| e.calls > 0));
    }
}
