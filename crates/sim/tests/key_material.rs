//! Snapshot of `SimConfig::cache_key_material` for a canonical config.
//!
//! The key material is what the persistent result store uses to decide
//! whether a cached cell may be reused, and PR 2 left a footgun: nothing
//! mechanically forces a `MODEL_REVISION` bump when behaviour changes. This
//! snapshot makes any key-shape change (renamed/added fields, revision
//! bumps, Debug-format drift) fail loudly, so it always happens as a
//! deliberate fixture update:
//!
//! ```text
//! BANSHEE_UPDATE_KEY_SNAPSHOT=1 cargo test -p banshee_sim --test key_material
//! ```

use banshee_dcache::DramCacheDesign;
use banshee_sim::SimConfig;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/cache_key_material.txt"
);

#[test]
fn canonical_cache_key_material_is_stable() {
    let material = SimConfig::test_default(DramCacheDesign::Banshee).cache_key_material();

    if std::env::var("BANSHEE_UPDATE_KEY_SNAPSHOT").is_ok() {
        std::fs::write(FIXTURE, format!("{material}\n")).expect("write key-material fixture");
        eprintln!("key-material fixture regenerated at {FIXTURE}");
        return;
    }

    let expected = std::fs::read_to_string(FIXTURE).expect(
        "key-material fixture missing — regenerate with \
         BANSHEE_UPDATE_KEY_SNAPSHOT=1 cargo test -p banshee_sim --test key_material",
    );
    assert_eq!(
        material,
        expected.trim_end(),
        "cache_key_material changed: persisted store entries keyed by the \
         old material will be recomputed. If the underlying model changed, \
         bump SimConfig::MODEL_REVISION too, then regenerate this fixture \
         (and the golden fixture in crates/bench/tests/fixtures/)"
    );
}

/// The fixture's embedded `model-rev=` must agree with the compiled
/// `MODEL_REVISION` — a hand-edited fixture (or a revision bump without a
/// regenerated fixture) fails here instead of silently serving stale store
/// entries. CI additionally has a `model-revision-guard` step that rejects
/// diffs touching either fixture without a `MODEL_REVISION` change.
#[test]
fn fixture_revision_matches_compiled_revision() {
    if std::env::var("BANSHEE_UPDATE_KEY_SNAPSHOT").is_ok() {
        return; // the snapshot test above is rewriting the fixture
    }
    let fixture = std::fs::read_to_string(FIXTURE).expect("key-material fixture exists");
    let prefix = format!("model-rev={}|", SimConfig::MODEL_REVISION);
    assert!(
        fixture.starts_with(&prefix),
        "fixture starts with {:?} but the compiled revision is {} — \
         regenerate the fixture with BANSHEE_UPDATE_KEY_SNAPSHOT=1 after \
         bumping SimConfig::MODEL_REVISION",
        fixture
            .lines()
            .next()
            .unwrap_or("")
            .split('|')
            .next()
            .unwrap_or(""),
        SimConfig::MODEL_REVISION
    );
}
