//! Cross-design traffic conservation: for every `DramCacheDesign`, the
//! bytes the design *reports* through its access plans must equal the bytes
//! the DRAM devices *account for* — at operation issue (logical), on the
//! buses (transferred), in the write queues (pending) and as explicitly
//! untimed traffic.
//!
//! This is the invariant that pins a design's cost model to the device
//! model: a design that moves data without emitting plan ops (the
//! pre-revision-2 TDC kept its page map in a free SRAM structure), or a
//! device change that drops queued bytes, breaks one of the two equalities:
//!
//! ```text
//! plan   == device - untimed          (every reported byte came from a plan)
//! device == transferred + pending + untimed   (no byte vanished en route)
//! ```

use banshee_dcache::DramCacheDesign;
use banshee_sim::{run_one, SimConfig, SimResult};
use banshee_workloads::{SpecProgram, Workload, WorkloadKind};

fn workload() -> Workload {
    Workload::new(WorkloadKind::Spec(SpecProgram::Mcf), 16 << 20, 3)
}

fn assert_conserved(r: &SimResult) {
    let label = &r.design;
    for side in ["in_package", "off_package"] {
        let (plan, device, transferred, pending, untimed) = match side {
            "in_package" => (
                r.stats.get("plan_bytes_in_package"),
                r.stats.get("device_bytes_in_package"),
                r.stats.get("transferred_bytes_in_package"),
                r.stats.get("pending_write_bytes_in_package"),
                r.stats.get("untimed_bytes_in_package"),
            ),
            _ => (
                r.stats.get("plan_bytes_off_package"),
                r.stats.get("device_bytes_off_package"),
                r.stats.get("transferred_bytes_off_package"),
                r.stats.get("pending_write_bytes_off_package"),
                r.stats.get("untimed_bytes_off_package"),
            ),
        };
        assert_eq!(
            plan,
            device - untimed,
            "{label} {side}: planned bytes diverge from device-logged bytes"
        );
        assert_eq!(
            device,
            transferred + pending + untimed,
            "{label} {side}: logical bytes not covered by transferred + queued + untimed"
        );
    }
}

#[test]
fn every_design_conserves_traffic() {
    for design in DramCacheDesign::named_catalogue() {
        let cfg = SimConfig::test_default(design);
        let r = run_one(cfg, &workload());
        assert!(r.instructions > 0, "{} ran no instructions", r.design);
        assert!(
            r.stats.get("device_bytes_in_package") + r.stats.get("device_bytes_off_package") > 0,
            "{} moved no bytes at all",
            r.design
        );
        assert_conserved(&r);
    }
}

#[test]
fn batman_wrapper_conserves_traffic() {
    let mut cfg = SimConfig::test_default(DramCacheDesign::Banshee);
    cfg.use_batman = true;
    assert_conserved(&run_one(cfg, &workload()));
}

#[test]
fn large_pages_conserve_traffic() {
    let mut cfg = SimConfig::test_default(DramCacheDesign::Banshee);
    cfg.large_pages = true;
    assert_conserved(&run_one(cfg, &workload()));
}
