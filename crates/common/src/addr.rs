//! Address newtypes and cache-geometry arithmetic.
//!
//! The simulator operates on *physical* addresses most of the time. The paper
//! (Section 3.2) is explicit that Banshee does **not** change a page's
//! physical address when the page is remapped into the in-package DRAM cache;
//! a single physical address space covers both DRAMs. We therefore use one
//! [`Addr`] type for physical addresses and derive line/page identifiers from
//! it.
//!
//! Geometry constants follow the paper's Table 2: 64-byte cache lines, 4 KiB
//! regular pages, 2 MiB large pages.

use serde::{Deserialize, Serialize};

/// Size of a cache line in bytes (64 B, Table 2).
pub const CACHE_LINE_SIZE: u64 = 64;
/// Size of a regular page in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 4096;
/// Size of a large page in bytes (2 MiB, Section 4.3).
pub const LARGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;

/// Number of cache lines in a regular page.
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / CACHE_LINE_SIZE;
/// Number of cache lines in a large page.
pub const LINES_PER_LARGE_PAGE: u64 = LARGE_PAGE_SIZE / CACHE_LINE_SIZE;

/// log2(cache line size).
pub const LINE_SHIFT: u32 = CACHE_LINE_SIZE.trailing_zeros();
/// log2(page size).
pub const PAGE_SHIFT: u32 = PAGE_SIZE.trailing_zeros();
/// log2(large page size).
pub const LARGE_PAGE_SHIFT: u32 = LARGE_PAGE_SIZE.trailing_zeros();

/// A byte-granularity physical (or virtual) address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

/// A cache-line identifier: the address shifted right by [`LINE_SHIFT`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

/// A (4 KiB) page frame number: the address shifted right by [`PAGE_SHIFT`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PageNum(pub u64);

impl Addr {
    /// Construct an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// The 4 KiB page containing this address.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> PAGE_SHIFT)
    }

    /// The 2 MiB large page containing this address (expressed as the number
    /// of the large page, i.e. address >> 21).
    #[inline]
    pub const fn large_page(self) -> u64 {
        self.0 >> LARGE_PAGE_SHIFT
    }

    /// Byte offset within the 4 KiB page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Byte offset within the cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 & (CACHE_LINE_SIZE - 1)
    }
}

impl LineAddr {
    /// Construct from a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    #[inline]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The page this line belongs to.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }

    /// Index of this line within its page (0..64 for 4 KiB pages).
    #[inline]
    pub const fn index_in_page(self) -> u64 {
        self.0 & (LINES_PER_PAGE - 1)
    }
}

impl PageNum {
    /// Construct from a raw page frame number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PageNum(raw)
    }

    /// The raw page frame number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this page.
    #[inline]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }

    /// The first line of this page.
    #[inline]
    pub const fn first_line(self) -> LineAddr {
        LineAddr(self.0 << (PAGE_SHIFT - LINE_SHIFT))
    }

    /// The line at `index` (0..64) within this page.
    #[inline]
    pub const fn line_at(self, index: u64) -> LineAddr {
        LineAddr((self.0 << (PAGE_SHIFT - LINE_SHIFT)) | (index & (LINES_PER_PAGE - 1)))
    }

    /// The 2 MiB large page containing this 4 KiB page.
    #[inline]
    pub const fn large_page(self) -> u64 {
        self.0 >> (LARGE_PAGE_SHIFT - PAGE_SHIFT)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl core::fmt::Display for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl core::fmt::Display for PageNum {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

impl core::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(CACHE_LINE_SIZE, 64);
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(LARGE_PAGE_SIZE, 2 * 1024 * 1024);
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(LINES_PER_LARGE_PAGE, 32768);
        assert_eq!(1u64 << LINE_SHIFT, CACHE_LINE_SIZE);
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_SIZE);
        assert_eq!(1u64 << LARGE_PAGE_SHIFT, LARGE_PAGE_SIZE);
    }

    #[test]
    fn addr_decomposition() {
        let a = Addr::new(0x1234_5678);
        assert_eq!(a.line().raw(), 0x1234_5678 >> 6);
        assert_eq!(a.page().raw(), 0x1234_5678 >> 12);
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.line_offset(), 0x38);
    }

    #[test]
    fn line_page_round_trip() {
        let page = PageNum::new(42);
        for idx in 0..LINES_PER_PAGE {
            let line = page.line_at(idx);
            assert_eq!(line.page(), page);
            assert_eq!(line.index_in_page(), idx);
            assert_eq!(line.base_addr().page(), page);
        }
    }

    #[test]
    fn page_base_addr_round_trip() {
        let page = PageNum::new(0xabcd);
        assert_eq!(page.base_addr().page(), page);
        assert_eq!(page.first_line(), page.line_at(0));
    }

    #[test]
    fn large_page_contains_512_regular_pages() {
        let lp = Addr::new(3 * LARGE_PAGE_SIZE).large_page();
        assert_eq!(lp, 3);
        let pages_per_large = LARGE_PAGE_SIZE / PAGE_SIZE;
        assert_eq!(pages_per_large, 512);
        let first = PageNum::new(3 * pages_per_large);
        let last = PageNum::new(4 * pages_per_large - 1);
        assert_eq!(first.large_page(), 3);
        assert_eq!(last.large_page(), 3);
        assert_eq!(PageNum::new(4 * pages_per_large).large_page(), 4);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Addr::new(0x10)), "0x10");
        assert_eq!(format!("{}", PageNum::new(0x2)), "pfn:0x2");
        assert_eq!(format!("{}", LineAddr::new(0x3)), "line:0x3");
    }
}
