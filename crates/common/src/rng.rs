//! Deterministic pseudo-random number generation.
//!
//! Both the workload generators and the cache-replacement policies need
//! randomness:
//!
//! * Banshee's sampling-based counter update (Algorithm 1, line 3) samples an
//!   access with probability `recent_miss_rate × sampling_coefficient`.
//! * The candidate-insertion path (Algorithm 1, lines 18–22) replaces a random
//!   candidate with probability `1 / victim.count`.
//! * Alloy Cache with BEAR uses stochastic replacement (fill with probability
//!   0.1).
//! * The synthetic workloads draw page/line addresses from Zipf and uniform
//!   distributions.
//!
//! All of these must be *deterministic and reproducible* so that experiment
//! tables are stable across runs. We use a small xorshift* generator seeded
//! explicitly, plus SplitMix64 for seed expansion, instead of depending on a
//! system RNG.

/// SplitMix64 — used to expand a single user seed into many stream seeds.
///
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014). This is the conventional seed-expansion
/// generator for xorshift-family PRNGs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A xorshift64* PRNG: small, fast, deterministic, good enough statistical
/// quality for workload generation and stochastic replacement decisions.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Create a generator from a seed. A zero seed is remapped to a non-zero
    /// constant because the all-zero state is a fixed point of xorshift.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut state = sm.next_u64();
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        XorShiftRng { state }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        // Multiplication-based range reduction (Lemire). Bias is negligible
        // for the bounds used in this workspace.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to [0,1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// A uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }
}

/// A sampler for the Zipf (power-law) distribution over `{0, 1, ..., n-1}`,
/// with rank-frequency exponent `s`.
///
/// The workload generators use this to model hot/cold page skew: most
/// accesses concentrate on a small set of hot pages, with a long tail — the
/// behaviour that makes frequency-based replacement attractive in the paper.
///
/// Sampling uses the classic inverse-CDF-by-binary-search over precomputed
/// cumulative weights. Construction is `O(n)`, sampling is `O(log n)`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` items with exponent `s` (s = 0 is uniform,
    /// larger `s` is more skewed; s ≈ 0.8–1.2 is typical for memory traces).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize to [0, 1].
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        // Guard against floating point droop on the last element.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cumulative }
    }

    /// Number of items in the distribution's support.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the support is a single item.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one item index (rank order: index 0 is the most popular item).
    pub fn sample(&self, rng: &mut XorShiftRng) -> usize {
        let u = rng.next_f64();
        // partition_point returns the first index whose cumulative weight is
        // >= u, i.e. the sampled rank.
        self.cumulative.partition_point(|&c| c < u)
    }
}

impl crate::persist::Persist for SplitMix64 {
    fn save(&self, w: &mut crate::persist::SnapshotWriter) {
        w.u64(self.state);
    }
    fn restore(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::SnapshotError> {
        Ok(SplitMix64 { state: r.u64()? })
    }
}

impl crate::persist::Persist for XorShiftRng {
    fn save(&self, w: &mut crate::persist::SnapshotWriter) {
        w.u64(self.state);
    }
    fn restore(
        r: &mut crate::persist::SnapshotReader<'_>,
    ) -> Result<Self, crate::persist::SnapshotError> {
        let state = r.u64()?;
        if state == 0 {
            // The all-zero state is a fixed point of xorshift and can never
            // be reached from a seeded generator, so it marks corruption.
            return Err(crate::persist::SnapshotError::Corrupt(
                "xorshift state is zero".to_string(),
            ));
        }
        Ok(XorShiftRng { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_persist_round_trip_preserves_the_stream() {
        use crate::persist::{Persist, SnapshotReader, SnapshotWriter};
        let mut original = XorShiftRng::new(99);
        for _ in 0..17 {
            original.next_u64();
        }
        let mut w = SnapshotWriter::new();
        original.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = XorShiftRng::restore(&mut SnapshotReader::new(&bytes)).unwrap();
        for _ in 0..100 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
        // Zero state is rejected as corruption.
        let mut w = SnapshotWriter::new();
        w.u64(0);
        let bytes = w.into_bytes();
        assert!(XorShiftRng::restore(&mut SnapshotReader::new(&bytes)).is_err());
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShiftRng::new(7);
        let mut b = XorShiftRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShiftRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = XorShiftRng::new(11);
        for bound in [1u64, 2, 3, 10, 63, 64, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = XorShiftRng::new(5);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = XorShiftRng::new(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_probability_roughly_respected() {
        let mut r = XorShiftRng::new(17);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.1)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.08..0.12).contains(&frac), "observed {frac}");
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = XorShiftRng::new(23);
        for _ in 0..500 {
            let v = r.range_inclusive(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(r.range_inclusive(5, 5), 5);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut r = XorShiftRng::new(3);
        let n = 50_000;
        let mut top10 = 0usize;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                top10 += 1;
            }
        }
        // With s=1.0 and n=1000, the top-10 ranks carry ~39% of the mass.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.3, "top-10 fraction too small: {frac}");
    }

    #[test]
    fn zipf_uniform_when_s_is_zero() {
        let z = ZipfSampler::new(100, 0.0);
        let mut r = XorShiftRng::new(9);
        let n = 100_000;
        let mut counts = vec![0usize; 100];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max / min < 1.5,
            "uniform sampling too skewed: {min} vs {max}"
        );
    }

    #[test]
    fn zipf_sample_in_range() {
        let z = ZipfSampler::new(7, 1.2);
        let mut r = XorShiftRng::new(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 7);
        }
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_empty_support() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
