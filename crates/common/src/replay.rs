//! A hash set whose exact iteration order survives a snapshot round trip.
//!
//! [`FnvHashSet`](crate::FnvHashSet) iterates in table-layout order, which
//! depends on the full insert/remove *history*, not just the final contents
//! — rebuilding an equal set from its elements generally iterates
//! differently. Components whose behaviour depends on set iteration order
//! (HMA's eviction scan) would therefore diverge between a cold run and a
//! snapshot-resumed run, while switching them to an order-defined container
//! would change cold-run results and invalidate the golden fixtures.
//!
//! [`ReplaySet`] squares that circle: it *is* an `FnvHashSet` on the hot
//! path (same hasher, same growth policy, same iteration order as the
//! pre-snapshot code), but it journals every successful insert and remove.
//! [`Persist`] writes the journal; restore replays it into a fresh set.
//! Because the FNV hasher is deterministic and hashbrown's layout is a pure
//! function of the operation sequence, the replayed set reproduces the
//! original's internal layout — and therefore its iteration order — exactly.

use crate::hash::FnvHashSet;
use crate::persist::{Persist, SnapshotError, SnapshotReader, SnapshotWriter};
use std::hash::Hash;

/// A journaling wrapper around [`FnvHashSet`](crate::FnvHashSet) whose
/// iteration order is reproduced exactly by a [`Persist`] round trip.
///
/// The journal grows by one entry per successful mutation, so this is meant
/// for sets mutated by rare, batched events (page-migration epochs), not
/// per-access bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct ReplaySet<T> {
    set: FnvHashSet<T>,
    /// `(inserted, value)` for every mutation that changed the set, in order.
    journal: Vec<(bool, T)>,
}

impl<T: Copy + Eq + Hash> ReplaySet<T> {
    /// An empty set.
    pub fn new() -> Self {
        ReplaySet {
            set: FnvHashSet::default(),
            journal: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if no elements are present.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// True if `value` is in the set.
    pub fn contains(&self, value: &T) -> bool {
        self.set.contains(value)
    }

    /// Insert `value`; returns true if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        let inserted = self.set.insert(value);
        if inserted {
            self.journal.push((true, value));
        }
        inserted
    }

    /// Remove `value`; returns true if it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        let removed = self.set.remove(value);
        if removed {
            self.journal.push((false, *value));
        }
        removed
    }

    /// Iterate in the underlying hash table's layout order — identical to
    /// iterating a plain `FnvHashSet` that saw the same operation sequence.
    pub fn iter(&self) -> std::collections::hash_set::Iter<'_, T> {
        self.set.iter()
    }

    /// Number of journaled mutations since construction.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }
}

impl<T: Copy + Eq + Hash + Persist> Persist for ReplaySet<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        // The journal is the canonical state: replaying it reconstructs both
        // the contents and the table layout. Never write the set itself.
        w.seq_with(&self.journal, |w, (inserted, value)| {
            w.bool(*inserted);
            value.save(w);
        });
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.seq_len(2)?;
        let mut out = ReplaySet::new();
        for _ in 0..len {
            let inserted = r.bool()?;
            let value = T::restore(r)?;
            let changed = if inserted {
                out.insert(value)
            } else {
                out.remove(&value)
            };
            if !changed {
                return Err(SnapshotError::Corrupt(
                    "ReplaySet journal entry had no effect (inconsistent image)".to_string(),
                ));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn insert_remove_contains() {
        let mut s = ReplaySet::new();
        assert!(s.insert(3u64));
        assert!(s.insert(1));
        assert!(!s.insert(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&1));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert!(!s.contains(&3));
        assert_eq!(s.journal_len(), 3);
    }

    #[test]
    fn iteration_matches_plain_fnv_set() {
        let mut replay = ReplaySet::new();
        let mut plain = FnvHashSet::default();
        let mut rng = SplitMix64::new(7);
        for _ in 0..2000 {
            let v = rng.next_u64() % 512;
            if rng.next_u64().is_multiple_of(3) {
                replay.remove(&v);
                plain.remove(&v);
            } else {
                replay.insert(v);
                plain.insert(v);
            }
        }
        assert_eq!(
            replay.iter().copied().collect::<Vec<_>>(),
            plain.iter().copied().collect::<Vec<_>>()
        );
    }

    /// The property the whole module exists for: a restored set iterates in
    /// exactly the same order as the original, across many histories.
    #[test]
    fn round_trip_reproduces_iteration_order() {
        for seed in 0..50u64 {
            let mut rng = SplitMix64::new(seed + 1);
            let mut s = ReplaySet::new();
            let ops = 100 + (seed as usize * 37) % 2400;
            for _ in 0..ops {
                let v = rng.next_u64() % 1024;
                if rng.next_u64().is_multiple_of(3) {
                    s.remove(&v);
                } else {
                    s.insert(v);
                }
            }
            let mut w = SnapshotWriter::new();
            s.save(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapshotReader::new(&bytes);
            let back = ReplaySet::<u64>::restore(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(
                s.iter().copied().collect::<Vec<_>>(),
                back.iter().copied().collect::<Vec<_>>(),
                "iteration order diverged for seed {seed}"
            );
            let mut w2 = SnapshotWriter::new();
            back.save(&mut w2);
            assert_eq!(w2.into_bytes(), bytes, "save/restore/save drifted");
        }
    }

    #[test]
    fn restore_rejects_inconsistent_journal() {
        // A remove of an element that was never inserted cannot come from a
        // real journal.
        let mut w = SnapshotWriter::new();
        w.usize(1);
        w.bool(false);
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            ReplaySet::<u64>::restore(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
        // So does a double insert.
        let mut w = SnapshotWriter::new();
        w.usize(2);
        w.bool(true);
        w.u64(7);
        w.bool(true);
        w.u64(7);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            ReplaySet::<u64>::restore(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
