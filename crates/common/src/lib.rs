//! Shared building blocks for the Banshee DRAM-cache reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`addr`] — physical/virtual address newtypes and cache-geometry helpers
//!   (line, page and large-page arithmetic).
//! * [`hash`] — the deterministic FNV-1a hasher ([`FnvHashMap`] /
//!   [`FnvHashSet`]) used for every simulator-internal map: faster than
//!   SipHash on the small keys the hot path uses, and reproducible across
//!   processes (no random seed).
//! * [`rng`] — a small deterministic pseudo-random number generator plus a
//!   Zipf sampler, used both by the synthetic workload generators and by the
//!   stochastic pieces of the cache-replacement policies (sampling-based
//!   counter updates, stochastic fill, random candidate victims).
//! * [`stats`] — DRAM traffic accounting by [`stats::TrafficClass`] and
//!   general named counters. The per-class byte counts are what the paper's
//!   Figures 5, 6 and 9 plot.
//! * [`config`] — capacity/latency helper constructors and a few
//!   configuration structs shared between the DRAM model and the system
//!   simulator.
//! * [`freq`] — the unified frequency-tracking API: a [`FrequencyTracker`]
//!   trait over exact per-key counters and a bounded-memory 4-bit
//!   CountMinSketch, selected by [`FrequencyBackendKind`].
//! * [`spsc`] — bounded single-producer/single-consumer rings, the
//!   allocation-free data plane of the sharded simulation loop.
//! * [`telemetry`] — the time-resolved observability layer: an epoch-sampled
//!   time series, a bounded ring of rare structured events, and wall-clock
//!   self-profiling, all behind a zero-cost-when-off [`telemetry::Recorder`].
//!
//! Everything here is `no_std`-shaped in spirit (no I/O, no globals) but the
//! crate itself uses `std` for convenience.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod config;
pub mod fastdiv;
pub mod freq;
pub mod hash;
pub mod persist;
pub mod replay;
pub mod rng;
pub mod spsc;
pub mod stats;
pub mod telemetry;

pub use addr::{Addr, LineAddr, PageNum, CACHE_LINE_SIZE, LARGE_PAGE_SIZE, PAGE_SIZE};
pub use config::{CyclesPerSec, MemSize};
pub use fastdiv::FastDivMod;
pub use freq::{
    restore_tracker, save_tracker, CountMinSketch, ExactTracker, FrequencyBackendKind,
    FrequencyTracker,
};
pub use hash::{fnv1a64, FnvHashMap, FnvHashSet, FnvHasher};
pub use persist::{
    Persist, SnapshotError, SnapshotHeader, SnapshotReader, SnapshotWriter, SNAPSHOT_FORMAT,
    SNAPSHOT_MAGIC,
};
pub use replay::ReplaySet;
pub use rng::{SplitMix64, XorShiftRng, ZipfSampler};
pub use stats::{Counter, DramKind, StatSet, TrafficClass, TrafficStats};
pub use telemetry::{Recorder, TelemetryConfig, TelemetryError};

/// A timestamp or duration measured in CPU cycles (2.7 GHz by default).
///
/// All timing in the workspace — DRAM bank occupancy, core stall accounting,
/// OS cost charging — is expressed in CPU cycles to avoid unit confusion.
pub type Cycle = u64;
