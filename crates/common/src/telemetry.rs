//! Time-resolved telemetry: epoch-sampled time series, a bounded ring of
//! rare structured events, and wall-clock self-profiling of the simulator.
//!
//! Everything the harness reported before this module existed was an
//! end-of-run aggregate; the paper's story, however, is about *dynamics* —
//! lazy remaps, counter halvings, write-queue drains and warmup convergence
//! all happen over time. The [`Recorder`] threads through the system
//! simulator and captures three kinds of data:
//!
//! 1. **Time series** ([`Sample`] / [`TimeSeries`]) — every
//!    `interval_instructions` retired instructions the simulator snapshots
//!    cumulative counters into a [`SampleCumulative`], and the recorder
//!    turns consecutive snapshots into *windowed deltas*: IPC, MPKI,
//!    per-class traffic bytes, DRAM queue occupancy and row-hit rate, plus
//!    free-form per-design gauges (tag-buffer occupancy, FBR state, ...).
//!    Consecutive measured-phase sample deltas telescope: summing them
//!    reproduces the final aggregate `TrafficStats` exactly, which the test
//!    suite asserts.
//! 2. **Event trace** ([`Event`] / [`EventRing`]) — rare discrete events
//!    (epoch remap plans, FBR halvings, write-queue drains, refreshes,
//!    TLB shootdowns, snapshot resume) in a bounded ring that overwrites
//!    the oldest entries, exportable as Chrome `trace.json` for timeline
//!    viewing (chrome://tracing, Perfetto).
//! 3. **Self-profile** ([`Profiler`]) — scoped wall-clock attribution of
//!    simulation time to components (address translation, SRAM hierarchy,
//!    design controller, DRAM timing, ...), surfaced per cell in
//!    `run_summary.json`.
//!
//! The recorder is **zero-cost when off**: [`Recorder::Off`] is a fieldless
//! variant, every hot-path call site guards on the single-discriminant test
//! [`Recorder::is_off`], and `SimResult`s are byte-identical with telemetry
//! on or off (asserted by `crates/sim/tests/telemetry_equivalence.rs`).
//!
//! Sink I/O failures are *typed* ([`TelemetryError`]) and callers degrade
//! them to warnings — telemetry must never fail a run that would otherwise
//! have produced results.

use crate::stats::{DramKind, TrafficClass, TrafficStats};
use crate::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Core clock in GHz, used only to convert cycle timestamps into the
/// microseconds Chrome trace viewers expect. Matches
/// `CyclesPerSec::ghz(2.7)` used by the simulator configs.
const CORE_GHZ: f64 = 2.7;

// ---------------------------------------------------------------------------
// Configuration

/// Knobs for the recorder. Deliberately *not* part of `SimConfig`: telemetry
/// must never influence cache keys, snapshots or simulation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Retired instructions between time-series samples.
    pub interval_instructions: u64,
    /// Time-series capacity; once full, *new* samples are dropped (and
    /// counted) so the early warmup-convergence window is always retained.
    pub max_samples: usize,
    /// Event-ring capacity; once full, the *oldest* events are overwritten
    /// so the trace always covers the most recent window.
    pub max_events: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval_instructions: 100_000,
            max_samples: 8192,
            max_events: 4096,
        }
    }
}

// ---------------------------------------------------------------------------
// Cumulative snapshots and windowed samples

/// Per-DRAM-device cumulative telemetry counters plus point-in-time queue
/// gauges, gathered by `banshee_dram` at each sample boundary.
///
/// `read_queue` / `write_queue` are occupancy *at the sample instant*; the
/// remaining fields are cumulative since the device was built.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramTelemetry {
    /// In-flight reads across all banks at the sample instant.
    pub read_queue: u64,
    /// Buffered writes across all channels at the sample instant.
    pub write_queue: u64,
    /// Cumulative timed accesses.
    pub accesses: u64,
    /// Cumulative row-buffer hits.
    pub row_hits: u64,
    /// Cumulative refresh operations.
    pub refreshes: u64,
    /// Cumulative write-queue watermark drains.
    pub write_drains: u64,
}

/// A snapshot of the simulator's cumulative counters at one sample boundary.
/// The recorder differences consecutive snapshots to produce a [`Sample`].
#[derive(Debug, Clone, Default)]
pub struct SampleCumulative {
    /// Instructions retired so far (warmup + measured).
    pub instructions: u64,
    /// Max core clock, in cycles.
    pub cycles: Cycle,
    /// DRAM-cache demand accesses so far.
    pub dram_cache_accesses: u64,
    /// DRAM-cache demand misses so far.
    pub dram_cache_misses: u64,
    /// LLC misses so far.
    pub llc_misses: u64,
    /// Combined DRAM traffic so far.
    pub traffic: TrafficStats,
    /// In-package DRAM device counters.
    pub in_dram: DramTelemetry,
    /// Off-package DRAM device counters.
    pub off_dram: DramTelemetry,
}

/// Windowed per-DRAM metrics inside one [`Sample`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DramSample {
    /// Read-queue occupancy at the sample instant.
    pub read_queue: u64,
    /// Write-queue occupancy at the sample instant.
    pub write_queue: u64,
    /// Timed accesses in this window.
    pub accesses: u64,
    /// Row-buffer hits in this window.
    pub row_hits: u64,
    /// Row-hit rate over this window (0 when the window had no accesses).
    pub row_hit_rate: f64,
    /// Refresh operations in this window.
    pub refreshes: u64,
    /// Write-queue drains in this window.
    pub write_drains: u64,
}

/// One time-series point: cumulative position plus windowed deltas since the
/// previous sample.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Instructions retired at this sample (cumulative, warmup included).
    pub instructions: u64,
    /// Max core clock at this sample (cumulative cycles).
    pub cycles: u64,
    /// True if this sample's window lies (at least partly) in warmup.
    pub warmup: bool,
    /// Instructions retired in this window.
    pub delta_instructions: u64,
    /// Cycles elapsed in this window.
    pub delta_cycles: u64,
    /// Instructions per cycle over this window.
    pub ipc: f64,
    /// DRAM-cache misses per kilo-instruction over this window.
    pub mpki: f64,
    /// DRAM-cache demand accesses in this window.
    pub dram_cache_accesses: u64,
    /// DRAM-cache demand misses in this window.
    pub dram_cache_misses: u64,
    /// LLC misses in this window.
    pub llc_misses: u64,
    /// Traffic moved in this window, by (DRAM kind, class).
    pub traffic: TrafficStats,
    /// In-package DRAM window metrics.
    pub in_dram: DramSample,
    /// Off-package DRAM window metrics.
    pub off_dram: DramSample,
    /// Design-specific gauges (tag-buffer occupancy, FBR threshold, resident
    /// pages, ...) by name; cumulative or point-in-time per the name's
    /// convention, as pushed by the controller.
    pub gauges: Vec<(String, f64)>,
}

/// Fixed-capacity sample buffer. Once full, new samples are *dropped* (and
/// counted) rather than evicting old ones: warmup-convergence analysis needs
/// the beginning of the run, and a correctly sized capacity never drops.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<Sample>,
    capacity: usize,
    dropped: u64,
}

impl TimeSeries {
    /// An empty series that will hold at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            samples: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Append a sample, or count it as dropped if the series is full.
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Structured events

/// The kinds of rare discrete events the trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A controller epoch produced a remap/maintenance plan.
    EpochPlan,
    /// Banshee flushed tag buffers (lazy-coherence round or set-full flush).
    TagBufferFlush,
    /// The FBR sampler halved its frequency counters.
    FbrHalving,
    /// A DRAM channel drained its write queue past the watermark.
    WriteDrain,
    /// A DRAM rank refresh (tREFI/tRFC) window.
    Refresh,
    /// The OS broadcast a TLB shootdown.
    TlbShootdown,
    /// A batch of page-table entries was updated.
    PteUpdateBatch,
    /// A page's dirty lines were flushed out of the DRAM cache.
    PageFlush,
    /// The cell resumed from a warmed snapshot instead of re-warming.
    SnapshotResume,
    /// Warmup ended; measurement began.
    MeasurementStart,
}

impl EventKind {
    /// All event kinds, in display order.
    pub const ALL: [EventKind; 10] = [
        EventKind::EpochPlan,
        EventKind::TagBufferFlush,
        EventKind::FbrHalving,
        EventKind::WriteDrain,
        EventKind::Refresh,
        EventKind::TlbShootdown,
        EventKind::PteUpdateBatch,
        EventKind::PageFlush,
        EventKind::SnapshotResume,
        EventKind::MeasurementStart,
    ];

    /// Stable label used in trace files.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::EpochPlan => "epoch_plan",
            EventKind::TagBufferFlush => "tag_buffer_flush",
            EventKind::FbrHalving => "fbr_halving",
            EventKind::WriteDrain => "write_drain",
            EventKind::Refresh => "refresh",
            EventKind::TlbShootdown => "tlb_shootdown",
            EventKind::PteUpdateBatch => "pte_update_batch",
            EventKind::PageFlush => "page_flush",
            EventKind::SnapshotResume => "snapshot_resume",
            EventKind::MeasurementStart => "measurement_start",
        }
    }
}

/// One recorded event occurrence (or, for polled kinds, a batch of `count`
/// occurrences detected within one sample window).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Instructions retired when the event was recorded.
    pub instructions: u64,
    /// Core clock when the event was recorded.
    pub cycles: u64,
    /// What happened.
    pub kind: EventKind,
    /// How many times (>1 for polled kinds batched per sample window).
    pub count: u64,
}

/// Bounded event ring: keeps the most recent `capacity` events, counting
/// (but discarding) older ones.
#[derive(Debug, Clone, Default)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    head: usize,
    total: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            buf: Vec::new(),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Record an event, overwriting the oldest if the ring is full.
    pub fn push(&mut self, event: Event) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Events in chronological order (oldest retained first).
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (tail, front) = self.buf.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Gauge names whose *cumulative* values, when they increase between
/// consecutive samples, generate a polled [`Event`] of the paired kind with
/// `count` = the increase. Controllers expose these via `telemetry_gauges`;
/// the recorder turns their deltas into events so rare design-internal
/// maintenance shows up on the timeline without per-occurrence hooks.
pub const EVENT_GAUGES: [(&str, EventKind); 2] = [
    ("tag_buffer_flushes", EventKind::TagBufferFlush),
    ("fbr_counter_halvings", EventKind::FbrHalving),
];

// ---------------------------------------------------------------------------
// Self-profiling

/// Simulator components wall-clock time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileComponent {
    /// Virtual-to-physical translation (TLB + page table).
    Translate,
    /// The SRAM cache hierarchy (L1/L2/LLC).
    SramHierarchy,
    /// The DRAM-cache design controller (plan construction).
    DesignController,
    /// DRAM device timing (plan execution).
    DramExecute,
    /// Controller epoch maintenance (remap planning and execution).
    EpochMaintenance,
    /// OS side effects (page moves, shootdowns, flushes).
    SideEffects,
    /// Telemetry sampling itself.
    TelemetrySampling,
}

impl ProfileComponent {
    /// All components, in display order.
    pub const ALL: [ProfileComponent; 7] = [
        ProfileComponent::Translate,
        ProfileComponent::SramHierarchy,
        ProfileComponent::DesignController,
        ProfileComponent::DramExecute,
        ProfileComponent::EpochMaintenance,
        ProfileComponent::SideEffects,
        ProfileComponent::TelemetrySampling,
    ];

    /// Stable label used in profile reports.
    pub fn label(self) -> &'static str {
        match self {
            ProfileComponent::Translate => "translate",
            ProfileComponent::SramHierarchy => "sram_hierarchy",
            ProfileComponent::DesignController => "design_controller",
            ProfileComponent::DramExecute => "dram_execute",
            ProfileComponent::EpochMaintenance => "epoch_maintenance",
            ProfileComponent::SideEffects => "side_effects",
            ProfileComponent::TelemetrySampling => "telemetry_sampling",
        }
    }

    /// Index into dense per-component arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Accumulates wall-clock time per [`ProfileComponent`].
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    nanos: [u64; ProfileComponent::ALL.len()],
    calls: [u64; ProfileComponent::ALL.len()],
}

impl Profiler {
    /// A zeroed profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Charge `elapsed` to `component`.
    #[inline]
    pub fn record(&mut self, component: ProfileComponent, elapsed: Duration) {
        let i = component.index();
        self.nanos[i] += elapsed.as_nanos() as u64;
        self.calls[i] += 1;
    }

    /// Total time attributed so far.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Summarise into a serializable breakdown, components in display order.
    pub fn breakdown(&self) -> ProfileBreakdown {
        let total_nanos: u64 = self.nanos.iter().sum();
        let entries = ProfileComponent::ALL
            .iter()
            .map(|&c| {
                let i = c.index();
                ProfileEntry {
                    component: c.label().to_string(),
                    seconds: self.nanos[i] as f64 / 1e9,
                    share: if total_nanos == 0 {
                        0.0
                    } else {
                        self.nanos[i] as f64 / total_nanos as f64
                    },
                    calls: self.calls[i],
                }
            })
            .collect();
        ProfileBreakdown {
            entries,
            total_seconds: total_nanos as f64 / 1e9,
        }
    }
}

/// One component's share of attributed simulation time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Component label (see [`ProfileComponent::label`]).
    pub component: String,
    /// Attributed wall-clock seconds.
    pub seconds: f64,
    /// Fraction of total attributed time (0 when nothing was attributed).
    pub share: f64,
    /// Number of timed scopes.
    pub calls: u64,
}

/// The full self-profile of one simulated cell.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileBreakdown {
    /// Per-component rows, in [`ProfileComponent::ALL`] order.
    pub entries: Vec<ProfileEntry>,
    /// Total attributed wall-clock seconds.
    pub total_seconds: f64,
}

/// A cell's label paired with its profile, collected across worker threads
/// into `run_summary.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellProfile {
    /// The cell label (`workload x design` with sweep coordinates).
    pub cell: String,
    /// Where its simulation time went.
    pub profile: ProfileBreakdown,
}

/// Thread-safe accumulator for per-cell profiles; the runner hands a clone
/// to every worker and drains it into the run summary.
pub type ProfileCollector = Arc<Mutex<Vec<CellProfile>>>;

/// A fresh, empty [`ProfileCollector`].
pub fn profile_collector() -> ProfileCollector {
    Arc::new(Mutex::new(Vec::new()))
}

// ---------------------------------------------------------------------------
// The recorder

/// The telemetry recorder threaded through the system simulator.
///
/// [`Recorder::Off`] is the default and costs one discriminant test per
/// guard ([`Recorder::is_off`]); everything else lives behind a box so the
/// off state adds no per-`System` memory beyond the enum word.
#[derive(Debug, Default)]
pub enum Recorder {
    /// Telemetry disabled: every hook is a no-op.
    #[default]
    Off,
    /// Telemetry enabled.
    On(Box<ActiveRecorder>),
}

impl Recorder {
    /// A recorder in the off state.
    pub fn off() -> Self {
        Recorder::Off
    }

    /// An enabled recorder with the given knobs.
    pub fn enabled(config: TelemetryConfig) -> Self {
        Recorder::On(Box::new(ActiveRecorder::new(config)))
    }

    /// True when telemetry is disabled — the hot-path guard.
    #[inline]
    pub fn is_off(&self) -> bool {
        matches!(self, Recorder::Off)
    }

    /// The active recorder, if enabled.
    #[inline]
    pub fn active_mut(&mut self) -> Option<&mut ActiveRecorder> {
        match self {
            Recorder::Off => None,
            Recorder::On(rec) => Some(rec),
        }
    }

    /// The active recorder, if enabled (shared).
    #[inline]
    pub fn active(&self) -> Option<&ActiveRecorder> {
        match self {
            Recorder::Off => None,
            Recorder::On(rec) => Some(rec),
        }
    }
}

/// State behind an enabled [`Recorder`].
#[derive(Debug)]
pub struct ActiveRecorder {
    config: TelemetryConfig,
    series: TimeSeries,
    events: EventRing,
    profile: Profiler,
    /// Instruction count at which the next sample is due.
    next_sample_at: u64,
    /// The previous sample boundary's cumulative counters (None before the
    /// first sample; the first window deltas against zero).
    prev: Option<SampleCumulative>,
    /// Previous cumulative values of [`EVENT_GAUGES`] names, aligned with
    /// that array, for polled event extraction.
    prev_event_gauges: [f64; EVENT_GAUGES.len()],
}

impl ActiveRecorder {
    /// A fresh recorder; the first sample is due after one interval.
    pub fn new(config: TelemetryConfig) -> Self {
        ActiveRecorder {
            series: TimeSeries::new(config.max_samples),
            events: EventRing::new(config.max_events),
            profile: Profiler::new(),
            next_sample_at: config.interval_instructions.max(1),
            prev: None,
            prev_event_gauges: [0.0; EVENT_GAUGES.len()],
            config,
        }
    }

    /// The recorder's knobs.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// True once `instructions` has crossed the next sample boundary.
    #[inline]
    pub fn sample_due(&self, instructions: u64) -> bool {
        instructions >= self.next_sample_at
    }

    /// Ingest one cumulative snapshot: compute the windowed delta against
    /// the previous snapshot, extract polled events, append the sample and
    /// schedule the next boundary.
    pub fn record_sample(
        &mut self,
        warmup: bool,
        cum: SampleCumulative,
        gauges: &[(&'static str, f64)],
    ) {
        let prev = self.prev.clone().unwrap_or_default();
        let prev = &prev;
        // A stale boundary (e.g. right after a forced boundary sample at
        // measurement start) would produce an empty, meaningless window.
        if cum.instructions <= prev.instructions && self.prev.is_some() {
            self.next_sample_at = cum.instructions + self.config.interval_instructions.max(1);
            return;
        }

        let delta_instructions = cum.instructions - prev.instructions;
        let delta_cycles = cum.cycles.saturating_sub(prev.cycles);
        let delta_misses = cum.dram_cache_misses - prev.dram_cache_misses;
        let sample = Sample {
            instructions: cum.instructions,
            cycles: cum.cycles,
            warmup,
            delta_instructions,
            delta_cycles,
            ipc: if delta_cycles == 0 {
                0.0
            } else {
                delta_instructions as f64 / delta_cycles as f64
            },
            mpki: if delta_instructions == 0 {
                0.0
            } else {
                delta_misses as f64 * 1000.0 / delta_instructions as f64
            },
            dram_cache_accesses: cum.dram_cache_accesses - prev.dram_cache_accesses,
            dram_cache_misses: delta_misses,
            llc_misses: cum.llc_misses - prev.llc_misses,
            traffic: cum.traffic.since(&prev.traffic),
            in_dram: dram_sample(&cum.in_dram, &prev.in_dram),
            off_dram: dram_sample(&cum.off_dram, &prev.off_dram),
            gauges: gauges.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        };

        // Polled events: DRAM maintenance counted by the devices...
        self.polled_event(
            EventKind::Refresh,
            &cum,
            (cum.in_dram.refreshes + cum.off_dram.refreshes)
                .saturating_sub(prev.in_dram.refreshes + prev.off_dram.refreshes),
        );
        self.polled_event(
            EventKind::WriteDrain,
            &cum,
            (cum.in_dram.write_drains + cum.off_dram.write_drains)
                .saturating_sub(prev.in_dram.write_drains + prev.off_dram.write_drains),
        );
        // ...and design-internal maintenance surfaced as cumulative gauges.
        // Skip the very first window: a recorder enabled on a resumed
        // (already-warmed) system would otherwise report the whole warmup's
        // worth of maintenance as one giant event burst.
        let first = self.prev.is_none();
        for (slot, (name, kind)) in EVENT_GAUGES.iter().enumerate() {
            if let Some(&(_, value)) = gauges.iter().find(|(n, _)| n == name) {
                if !first {
                    let delta = value - self.prev_event_gauges[slot];
                    if delta > 0.0 {
                        self.polled_event(*kind, &cum, delta as u64);
                    }
                }
                self.prev_event_gauges[slot] = value;
            }
        }

        self.series.push(sample);
        self.next_sample_at = cum.instructions + self.config.interval_instructions.max(1);
        self.prev = Some(cum);
    }

    fn polled_event(&mut self, kind: EventKind, cum: &SampleCumulative, count: u64) {
        if count > 0 {
            self.events.push(Event {
                instructions: cum.instructions,
                cycles: cum.cycles,
                kind,
                count,
            });
        }
    }

    /// Record one discrete event occurrence.
    #[inline]
    pub fn record_event(&mut self, instructions: u64, cycles: Cycle, kind: EventKind, count: u64) {
        self.events.push(Event {
            instructions,
            cycles,
            kind,
            count,
        });
    }

    /// The profiler, for scoped timing.
    #[inline]
    pub fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profile
    }

    /// The recorded series so far.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// The recorded events so far.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Consume the recorder into an exportable report.
    #[allow(clippy::too_many_arguments)]
    pub fn into_report(
        self,
        design: &str,
        workload: &str,
        warmup_instructions: u64,
        measured_instructions: u64,
        final_cycles: Cycle,
        final_traffic: &TrafficStats,
    ) -> TelemetryReport {
        TelemetryReport {
            design: design.to_string(),
            workload: workload.to_string(),
            interval_instructions: self.config.interval_instructions,
            warmup_instructions,
            measured_instructions,
            final_cycles,
            final_traffic: final_traffic.clone(),
            samples_dropped: self.series.dropped(),
            events_total: self.events.total(),
            events_dropped: self.events.dropped(),
            samples: self.series.samples,
            events: self.events.iter().cloned().collect(),
            profile: self.profile.breakdown(),
        }
    }
}

fn dram_sample(cum: &DramTelemetry, prev: &DramTelemetry) -> DramSample {
    let accesses = cum.accesses.saturating_sub(prev.accesses);
    let row_hits = cum.row_hits.saturating_sub(prev.row_hits);
    DramSample {
        read_queue: cum.read_queue,
        write_queue: cum.write_queue,
        accesses,
        row_hits,
        row_hit_rate: if accesses == 0 {
            0.0
        } else {
            row_hits as f64 / accesses as f64
        },
        refreshes: cum.refreshes.saturating_sub(prev.refreshes),
        write_drains: cum.write_drains.saturating_sub(prev.write_drains),
    }
}

// ---------------------------------------------------------------------------
// Errors and the export sink

/// Telemetry sink I/O failed. Mirrors `SnapshotError`'s philosophy: typed,
/// actionable, and — unlike snapshots — always degraded to a warning by
/// callers, because telemetry must never fail an otherwise good run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// The output directory could not be created.
    CreateDir {
        /// The directory that could not be created.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// A telemetry file could not be written.
    Write {
        /// The file that could not be written.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::CreateDir { path, message } => {
                write!(f, "cannot create telemetry dir {path}: {message}")
            }
            TelemetryError::Write { path, message } => {
                write!(f, "cannot write telemetry file {path}: {message}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// The exportable JSON payload of one cell's telemetry: time series, events,
/// profile, plus the final aggregates the samples must reconcile against
/// (so a report file is self-validating).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Design label of the cell.
    pub design: String,
    /// Workload label of the cell.
    pub workload: String,
    /// Instructions between samples.
    pub interval_instructions: u64,
    /// Warmup instructions the cell was configured with.
    pub warmup_instructions: u64,
    /// Measured instructions the run actually retired.
    pub measured_instructions: u64,
    /// Final max core clock, in cycles.
    pub final_cycles: u64,
    /// Final *measured-phase* traffic (what `SimResult` reports); the sum of
    /// non-warmup sample `traffic` deltas must equal this exactly.
    pub final_traffic: TrafficStats,
    /// Samples that did not fit in the configured capacity.
    pub samples_dropped: u64,
    /// Events recorded in total, including overwritten ones.
    pub events_total: u64,
    /// Events lost to ring overwriting.
    pub events_dropped: u64,
    /// The retained samples, oldest first.
    pub samples: Vec<Sample>,
    /// The retained events, oldest first.
    pub events: Vec<Event>,
    /// Wall-clock attribution of this cell's simulation time.
    pub profile: ProfileBreakdown,
}

/// Sanitise a label into a filename-safe slug: ASCII alphanumerics are
/// lowercased, everything else becomes `_`.
pub fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes one cell's telemetry files (`telemetry_<cell>.json`, `.csv` and
/// `.trace.json`) into a directory.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    dir: PathBuf,
    cell: String,
}

impl TelemetrySink {
    /// A sink for cell `cell` (pre-sanitised with [`slug`]) under `dir`.
    pub fn new(dir: impl Into<PathBuf>, cell: &str) -> Self {
        TelemetrySink {
            dir: dir.into(),
            cell: slug(cell),
        }
    }

    /// The path of the JSON report this sink writes.
    pub fn json_path(&self) -> PathBuf {
        self.dir.join(format!("telemetry_{}.json", self.cell))
    }

    /// The path of the CSV time series this sink writes.
    pub fn csv_path(&self) -> PathBuf {
        self.dir.join(format!("telemetry_{}.csv", self.cell))
    }

    /// The path of the Chrome trace this sink writes.
    pub fn trace_path(&self) -> PathBuf {
        self.dir.join(format!("telemetry_{}.trace.json", self.cell))
    }

    /// Write all three artefacts, returning the written paths.
    pub fn export(&self, report: &TelemetryReport) -> Result<Vec<PathBuf>, TelemetryError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| TelemetryError::CreateDir {
            path: self.dir.display().to_string(),
            message: e.to_string(),
        })?;
        let json = self.json_path();
        let pretty = serde_json::to_string_pretty(report).unwrap_or_else(|e| {
            // Serialization of an in-memory report cannot fail with the
            // vendored encoder; keep a defensive fallback anyway.
            format!("{{\"error\": \"{e}\"}}")
        });
        write_file(&json, &pretty)?;
        let csv = self.csv_path();
        write_file(&csv, &csv_text(report))?;
        let trace = self.trace_path();
        write_file(&trace, &chrome_trace_text(report))?;
        Ok(vec![json, csv, trace])
    }
}

fn write_file(path: &Path, text: &str) -> Result<(), TelemetryError> {
    std::fs::write(path, text).map_err(|e| TelemetryError::Write {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

/// Render a report's samples as CSV. Columns are fixed (cumulative position,
/// windowed rates, per-(DRAM, class) traffic bytes, per-DRAM queue/row-hit
/// metrics) plus one column per gauge of the first sample — gauge sets are
/// constant within a run, so the first sample's names describe them all.
pub fn csv_text(report: &TelemetryReport) -> String {
    let mut header: Vec<String> = vec![
        "instructions".into(),
        "cycles".into(),
        "warmup".into(),
        "delta_instructions".into(),
        "delta_cycles".into(),
        "ipc".into(),
        "mpki".into(),
        "dram_cache_accesses".into(),
        "dram_cache_misses".into(),
        "llc_misses".into(),
    ];
    for kind in DramKind::ALL {
        let k = kind_slug(kind);
        for class in TrafficClass::ALL {
            header.push(format!("{}_{}_bytes", k, slug(class.label())));
        }
    }
    for kind in DramKind::ALL {
        let k = kind_slug(kind);
        header.push(format!("{k}_read_queue"));
        header.push(format!("{k}_write_queue"));
        header.push(format!("{k}_row_hit_rate"));
        header.push(format!("{k}_refreshes"));
        header.push(format!("{k}_write_drains"));
    }
    let gauge_names: Vec<&str> = report
        .samples
        .first()
        .map(|s| s.gauges.iter().map(|(n, _)| n.as_str()).collect())
        .unwrap_or_default();
    for name in &gauge_names {
        header.push(format!("gauge_{}", slug(name)));
    }

    let mut out = header.join(",");
    out.push('\n');
    for s in &report.samples {
        let mut row: Vec<String> = vec![
            s.instructions.to_string(),
            s.cycles.to_string(),
            (s.warmup as u8).to_string(),
            s.delta_instructions.to_string(),
            s.delta_cycles.to_string(),
            format!("{:.6}", s.ipc),
            format!("{:.6}", s.mpki),
            s.dram_cache_accesses.to_string(),
            s.dram_cache_misses.to_string(),
            s.llc_misses.to_string(),
        ];
        for kind in DramKind::ALL {
            for class in TrafficClass::ALL {
                row.push(s.traffic.bytes(kind, class).to_string());
            }
        }
        for (kind, d) in [
            (DramKind::InPackage, &s.in_dram),
            (DramKind::OffPackage, &s.off_dram),
        ] {
            let _ = kind;
            row.push(d.read_queue.to_string());
            row.push(d.write_queue.to_string());
            row.push(format!("{:.6}", d.row_hit_rate));
            row.push(d.refreshes.to_string());
            row.push(d.write_drains.to_string());
        }
        for name in &gauge_names {
            let v = s
                .gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            row.push(format!("{v:.6}"));
        }
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn kind_slug(kind: DramKind) -> &'static str {
    match kind {
        DramKind::InPackage => "in",
        DramKind::OffPackage => "off",
    }
}

/// Render a report's events as Chrome trace-event JSON (instant events,
/// global scope), loadable in chrome://tracing or Perfetto. Timestamps are
/// microseconds derived from the 2.7 GHz core clock.
pub fn chrome_trace_text(report: &TelemetryReport) -> String {
    use serde::Value;
    let events: Vec<Value> = report
        .events
        .iter()
        .map(|e| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(e.kind.label().to_string())),
                ("ph".to_string(), Value::Str("i".to_string())),
                ("s".to_string(), Value::Str("g".to_string())),
                (
                    "ts".to_string(),
                    Value::Float(e.cycles as f64 / (CORE_GHZ * 1e3)),
                ),
                ("pid".to_string(), Value::UInt(1)),
                ("tid".to_string(), Value::UInt(1)),
                (
                    "args".to_string(),
                    Value::Object(vec![
                        ("instructions".to_string(), Value::UInt(e.instructions)),
                        ("count".to_string(), Value::UInt(e.count)),
                    ]),
                ),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Value::Object(vec![
                ("design".to_string(), Value::Str(report.design.clone())),
                ("workload".to_string(), Value::Str(report.workload.clone())),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(instructions: u64, cycles: u64) -> SampleCumulative {
        SampleCumulative {
            instructions,
            cycles,
            ..SampleCumulative::default()
        }
    }

    #[test]
    fn time_series_drops_new_when_full() {
        let mut ts = TimeSeries::new(2);
        for i in 0..5 {
            ts.push(Sample {
                instructions: i,
                ..Sample::default()
            });
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped(), 3);
        // The earliest samples are retained (warmup convergence needs them).
        assert_eq!(ts.samples()[0].instructions, 0);
        assert_eq!(ts.samples()[1].instructions, 1);
    }

    #[test]
    fn event_ring_overwrites_oldest() {
        let mut ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(Event {
                instructions: i,
                cycles: i,
                kind: EventKind::EpochPlan,
                count: 1,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.dropped(), 2);
        let order: Vec<u64> = ring.iter().map(|e| e.instructions).collect();
        assert_eq!(order, [2, 3, 4]);
    }

    #[test]
    fn recorder_sampling_boundaries() {
        let mut rec = ActiveRecorder::new(TelemetryConfig {
            interval_instructions: 100,
            ..TelemetryConfig::default()
        });
        assert!(!rec.sample_due(99));
        assert!(rec.sample_due(100));
        rec.record_sample(true, cum(120, 300), &[]);
        assert!(!rec.sample_due(219));
        assert!(rec.sample_due(220));
    }

    #[test]
    fn samples_delta_against_previous() {
        let mut rec = ActiveRecorder::new(TelemetryConfig::default());
        let mut first = cum(100, 400);
        first
            .traffic
            .add(DramKind::InPackage, TrafficClass::HitData, 64);
        first.dram_cache_misses = 10;
        rec.record_sample(true, first, &[]);
        let mut second = cum(300, 600);
        second
            .traffic
            .add(DramKind::InPackage, TrafficClass::HitData, 192);
        second.dram_cache_misses = 14;
        rec.record_sample(false, second, &[]);

        let s = rec.series().samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].delta_instructions, 100);
        assert!((s[0].ipc - 0.25).abs() < 1e-12);
        assert_eq!(s[1].delta_instructions, 200);
        assert_eq!(s[1].delta_cycles, 200);
        assert!((s[1].ipc - 1.0).abs() < 1e-12);
        assert_eq!(
            s[1].traffic
                .bytes(DramKind::InPackage, TrafficClass::HitData),
            128
        );
        assert!((s[1].mpki - 20.0).abs() < 1e-12);
        assert!(s[0].warmup && !s[1].warmup);
    }

    #[test]
    fn polled_gauge_events_skip_first_window() {
        let mut rec = ActiveRecorder::new(TelemetryConfig::default());
        // First window: cumulative flushes already at 7 (e.g. resumed from
        // a warmed snapshot) — must not produce an event burst.
        rec.record_sample(true, cum(100, 100), &[("tag_buffer_flushes", 7.0)]);
        assert!(rec.events().is_empty());
        // Second window: two more flushes and one halving.
        rec.record_sample(
            false,
            cum(200, 200),
            &[("tag_buffer_flushes", 9.0), ("fbr_counter_halvings", 1.0)],
        );
        let kinds: Vec<(EventKind, u64)> = rec.events().iter().map(|e| (e.kind, e.count)).collect();
        assert!(kinds.contains(&(EventKind::TagBufferFlush, 2)));
        // fbr gauge appeared for the first time in window 2, so its
        // baseline was 0 from construction and delta 1 fires.
        assert!(kinds.contains(&(EventKind::FbrHalving, 1)));
    }

    #[test]
    fn polled_dram_events_fire_on_deltas() {
        let mut rec = ActiveRecorder::new(TelemetryConfig::default());
        let mut a = cum(100, 100);
        a.in_dram.refreshes = 2;
        rec.record_sample(true, a, &[]);
        let mut b = cum(200, 200);
        b.in_dram.refreshes = 5;
        b.off_dram.write_drains = 1;
        rec.record_sample(false, b, &[]);
        let kinds: Vec<(EventKind, u64)> = rec.events().iter().map(|e| (e.kind, e.count)).collect();
        // First window deltas against zero, so the initial 2 refreshes fire.
        assert!(kinds.contains(&(EventKind::Refresh, 2)));
        assert!(kinds.contains(&(EventKind::Refresh, 3)));
        assert!(kinds.contains(&(EventKind::WriteDrain, 1)));
    }

    #[test]
    fn profiler_breakdown_shares() {
        let mut p = Profiler::new();
        p.record(ProfileComponent::Translate, Duration::from_nanos(300));
        p.record(ProfileComponent::DramExecute, Duration::from_nanos(700));
        let b = p.breakdown();
        assert_eq!(b.entries.len(), ProfileComponent::ALL.len());
        let total_share: f64 = b.entries.iter().map(|e| e.share).sum();
        assert!((total_share - 1.0).abs() < 1e-12);
        let translate = b
            .entries
            .iter()
            .find(|e| e.component == "translate")
            .unwrap();
        assert!((translate.share - 0.3).abs() < 1e-12);
        assert_eq!(translate.calls, 1);
        // An empty profiler yields zero shares, not NaN.
        let empty = Profiler::new().breakdown();
        assert!(empty.entries.iter().all(|e| e.share == 0.0));
    }

    #[test]
    fn slug_sanitizes_labels() {
        assert_eq!(slug("Banshee (batman)"), "banshee__batman_");
        assert_eq!(slug("kv99"), "kv99");
        assert_eq!(slug("TDC x mcf/4"), "tdc_x_mcf_4");
    }

    #[test]
    fn error_display_names_the_path() {
        let e = TelemetryError::Write {
            path: "/tmp/x.json".into(),
            message: "denied".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("/tmp/x.json") && msg.contains("denied"),
            "{msg}"
        );
    }

    fn tiny_report() -> TelemetryReport {
        let mut rec = ActiveRecorder::new(TelemetryConfig {
            interval_instructions: 100,
            ..TelemetryConfig::default()
        });
        let mut a = cum(100, 270);
        a.traffic
            .add(DramKind::InPackage, TrafficClass::HitData, 64);
        rec.record_sample(true, a, &[("resident_pages", 3.0)]);
        let mut b = cum(200, 540);
        b.traffic
            .add(DramKind::InPackage, TrafficClass::HitData, 128);
        b.in_dram.refreshes = 1;
        rec.record_sample(false, b, &[("resident_pages", 5.0)]);
        rec.record_event(150, 400, EventKind::MeasurementStart, 1);
        rec.profiler_mut()
            .record(ProfileComponent::DramExecute, Duration::from_micros(5));
        let traffic = TrafficStats::new();
        rec.into_report("Banshee", "mcf", 100, 100, 540, &traffic)
    }

    #[test]
    fn report_exports_parse_and_round_trip() {
        let report = tiny_report();
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: TelemetryReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.samples.len(), 2);
        assert_eq!(back.events.len(), 2); // polled refresh + measurement start
        assert_eq!(back.design, "Banshee");
        assert_eq!(back.samples[1].gauges[0].0, "resident_pages");

        let csv = csv_text(&report);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("instructions,cycles,warmup"));
        assert!(header.contains("in_hitdata_bytes"));
        assert!(header.contains("off_row_hit_rate"));
        assert!(header.ends_with("gauge_resident_pages"));
        assert_eq!(lines.count(), 2);
        let cols = header.split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), cols);
        }

        let trace = chrome_trace_text(&report);
        let v = serde_json::parse_value(&trace).unwrap();
        let events = v.field("traceEvents").unwrap();
        if let serde::Value::Array(items) = events {
            assert_eq!(items.len(), 2);
            let first = &items[0];
            assert!(first.field("ts").is_ok());
            assert_eq!(
                first.field("ph").unwrap(),
                &serde::Value::Str("i".to_string())
            );
        } else {
            panic!("traceEvents should be an array");
        }
    }

    #[test]
    fn sink_writes_all_three_files() {
        let dir = std::env::temp_dir().join(format!("banshee_tel_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = TelemetrySink::new(&dir, "000 mcf x Banshee");
        let written = sink.export(&tiny_report()).unwrap();
        assert_eq!(written.len(), 3);
        for path in &written {
            assert!(path.exists(), "{} missing", path.display());
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            assert!(name.starts_with("telemetry_000_mcf_x_banshee"), "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_failure_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("banshee_tel_f_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::write(&dir, b"not a dir").unwrap();
        let sink = TelemetrySink::new(dir.join("sub"), "cell");
        let err = sink.export(&tiny_report()).unwrap_err();
        assert!(matches!(err, TelemetryError::CreateDir { .. }), "{err}");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn recorder_off_is_the_default_and_cheap() {
        let rec = Recorder::default();
        assert!(rec.is_off());
        assert!(rec.active().is_none());
        let mut on = Recorder::enabled(TelemetryConfig::default());
        assert!(!on.is_off());
        assert!(on.active_mut().is_some());
    }

    #[test]
    fn measured_samples_telescope_to_final_traffic() {
        // The reconciliation invariant the sim-level tests rely on, in
        // miniature: sum of measured-window deltas == final - boundary.
        let mut rec = ActiveRecorder::new(TelemetryConfig {
            interval_instructions: 50,
            ..TelemetryConfig::default()
        });
        let mut total = TrafficStats::new();
        // Warmup window.
        total.add(DramKind::InPackage, TrafficClass::Replacement, 4096);
        let mut c = cum(50, 100);
        c.traffic = total.clone();
        rec.record_sample(true, c, &[]);
        let boundary = total.clone();
        // Three measured windows.
        for i in 1..=3u64 {
            total.add(DramKind::OffPackage, TrafficClass::MissData, 64 * i);
            let mut c = cum(50 + 50 * i, 100 + 100 * i);
            c.traffic = total.clone();
            rec.record_sample(false, c, &[]);
        }
        let mut summed = TrafficStats::new();
        for s in rec.series().samples().iter().filter(|s| !s.warmup) {
            summed.merge(&s.traffic);
        }
        let expected = total.since(&boundary);
        assert_eq!(summed, expected);
    }
}
